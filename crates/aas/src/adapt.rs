//! Adversarial adaptation: block detection and volume control.
//!
//! The central empirical finding of §6 is *how* services react to
//! countermeasures: synchronous blocking is detected almost immediately
//! (the paper found an openly available implementation of one service with
//! block-detection logic) and answered by dropping action volume below the
//! enforcement threshold and probing it thereafter, while delayed removal
//! goes unnoticed. In the epilogue (§6.4), persistent blocking drives ASN
//! migration — one service adopting "an extensive proxy network".
//!
//! This module implements that feedback loop as a genuine controller over
//! *observable* signals only (visible failure rates of the service's own
//! actions). Nothing here reads platform internals; the figures emerge from
//! the control loop meeting the enforcement policy.

use footsteps_sim::prelude::Day;
use serde::{Deserialize, Serialize};

/// Controller tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptationConfig {
    /// Visible failure rate above which the service considers itself
    /// blocked. Normal operation has near-zero failures, so 5% is a loud
    /// signal.
    pub failure_rate_trigger: f64,
    /// Days of sustained failures before the service *reacts*. Zero for the
    /// follow controllers (the reaction was immediate); Hublaagram's like
    /// controller took ~3 weeks, "perhaps because it had to implement
    /// blocked like detection" (§6.3).
    pub detection_lag_days: u32,
    /// Safety margin under the estimated threshold when backing off
    /// (cap = estimate × (1 − margin)).
    pub backoff_margin: f64,
    /// Days between upward probes while throttled.
    pub probe_interval_days: u32,
    /// Relative cap increase per probe.
    pub probe_step: f64,
    /// Days of continued blocking (post-reaction) before the service
    /// migrates its traffic to a fresh network (§6.4 epilogue). `u32::MAX`
    /// disables migration.
    pub migrate_after_days: u32,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        Self {
            failure_rate_trigger: 0.05,
            detection_lag_days: 0,
            backoff_margin: 0.08,
            probe_interval_days: 4,
            probe_step: 0.08,
            migrate_after_days: 30,
        }
    }
}

/// What the controller decided at the end of a day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControllerAction {
    /// Keep operating as-is.
    None,
    /// Blocking detected: engage a per-account daily cap.
    Throttle,
    /// Raise the cap to probe where the limit sits.
    ProbeUp,
    /// A probe hit the limit again: lower the cap back.
    BackOff,
    /// Persistent blocking: move traffic to a different network.
    Migrate,
}

/// Controller state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum State {
    /// No blocking observed.
    Normal,
    /// Operating under a self-imposed per-account daily cap.
    Throttled {
        cap: f64,
        engaged_on: Day,
        last_probe: Day,
    },
}

/// Daily observation the service feeds its controller: the outcome of its
/// *own* traffic for one action type, which is all an adversary can see.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayObservation {
    /// Day being reported.
    pub day: Day,
    /// Actions the service attempted.
    pub attempted: u64,
    /// Actions that visibly failed (blocked). Deferred removals are *not*
    /// here — the service cannot see them, which is the entire asymmetry
    /// the paper demonstrates.
    pub visible_failed: u64,
    /// Median per-account *successful* daily action count — the service's
    /// best estimate of where the enforcement threshold sits.
    pub median_success_per_account: f64,
}

impl DayObservation {
    /// Visible failure rate (zero when idle).
    pub fn failure_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.visible_failed as f64 / self.attempted as f64
        }
    }
}

/// Per-action-type feedback controller for one service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VolumeController {
    config: AdaptationConfig,
    state: State,
    /// Consecutive days with failure above trigger (drives detection lag).
    failing_streak: u32,
    /// Days with failures since throttling engaged (drives migration).
    blocked_days_since_engaged: u32,
}

impl VolumeController {
    /// New controller in the normal state.
    pub fn new(config: AdaptationConfig) -> Self {
        Self {
            config,
            state: State::Normal,
            failing_streak: 0,
            blocked_days_since_engaged: 0,
        }
    }

    /// Current per-account daily cap, if the controller is throttling.
    pub fn cap(&self) -> Option<f64> {
        match self.state {
            State::Normal => None,
            State::Throttled { cap, .. } => Some(cap),
        }
    }

    /// Whether the controller has reacted to blocking.
    pub fn is_throttled(&self) -> bool {
        matches!(self.state, State::Throttled { .. })
    }

    /// Feed the end-of-day observation; returns the decision taken.
    pub fn observe(&mut self, obs: DayObservation) -> ControllerAction {
        let failing = obs.failure_rate() > self.config.failure_rate_trigger;
        match self.state {
            State::Normal => {
                if !failing {
                    self.failing_streak = 0;
                    return ControllerAction::None;
                }
                self.failing_streak += 1;
                if self.failing_streak <= self.config.detection_lag_days {
                    // Still inside the implementation/detection lag.
                    return ControllerAction::None;
                }
                // Engage: cap just below the observed success level.
                let cap = (obs.median_success_per_account
                    * (1.0 - self.config.backoff_margin))
                    .max(1.0);
                self.state = State::Throttled {
                    cap,
                    engaged_on: obs.day,
                    last_probe: obs.day,
                };
                self.blocked_days_since_engaged = 0;
                ControllerAction::Throttle
            }
            State::Throttled {
                cap,
                engaged_on,
                last_probe,
            } => {
                if failing {
                    self.blocked_days_since_engaged += 1;
                    if self.blocked_days_since_engaged >= self.config.migrate_after_days {
                        // Give up on this network entirely.
                        self.state = State::Normal;
                        self.failing_streak = 0;
                        self.blocked_days_since_engaged = 0;
                        return ControllerAction::Migrate;
                    }
                    // A probe (or the initial cap estimate) hit the limit:
                    // step back down.
                    let new_cap = (cap / (1.0 + self.config.probe_step)
                        * (1.0 - self.config.backoff_margin / 2.0))
                        .max(1.0);
                    self.state = State::Throttled {
                        cap: new_cap,
                        engaged_on,
                        last_probe: obs.day,
                    };
                    return ControllerAction::BackOff;
                }
                if obs.day.days_since(last_probe) >= self.config.probe_interval_days {
                    let new_cap = cap * (1.0 + self.config.probe_step);
                    self.state = State::Throttled {
                        cap: new_cap,
                        engaged_on,
                        last_probe: obs.day,
                    };
                    return ControllerAction::ProbeUp;
                }
                ControllerAction::None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(day: u32, attempted: u64, failed: u64, median: f64) -> DayObservation {
        DayObservation {
            day: Day(day),
            attempted,
            visible_failed: failed,
            median_success_per_account: median,
        }
    }

    #[test]
    fn quiet_days_keep_normal_state() {
        let mut c = VolumeController::new(AdaptationConfig::default());
        for d in 0..10 {
            assert_eq!(c.observe(obs(d, 10_000, 10, 200.0)), ControllerAction::None);
        }
        assert!(!c.is_throttled());
        assert_eq!(c.cap(), None);
    }

    #[test]
    fn blocking_triggers_immediate_throttle_without_lag() {
        let mut c = VolumeController::new(AdaptationConfig::default());
        assert_eq!(
            c.observe(obs(0, 10_000, 4_000, 120.0)),
            ControllerAction::Throttle
        );
        let cap = c.cap().unwrap();
        assert!(cap < 120.0, "cap {cap} must sit below observed success");
        assert!(cap > 100.0);
    }

    #[test]
    fn detection_lag_delays_reaction() {
        let cfg = AdaptationConfig {
            detection_lag_days: 21,
            ..AdaptationConfig::default()
        };
        let mut c = VolumeController::new(cfg);
        for d in 0..21 {
            assert_eq!(
                c.observe(obs(d, 10_000, 5_000, 150.0)),
                ControllerAction::None,
                "day {d} still inside the lag"
            );
        }
        assert_eq!(
            c.observe(obs(21, 10_000, 5_000, 150.0)),
            ControllerAction::Throttle
        );
    }

    #[test]
    fn lag_counter_resets_on_quiet_day() {
        let cfg = AdaptationConfig {
            detection_lag_days: 3,
            ..AdaptationConfig::default()
        };
        let mut c = VolumeController::new(cfg);
        for d in 0..3 {
            c.observe(obs(d, 100, 50, 10.0));
        }
        // A quiet day resets the streak…
        c.observe(obs(3, 100, 0, 10.0));
        // …so three more failing days are still inside the lag.
        for d in 4..7 {
            assert_eq!(c.observe(obs(d, 100, 50, 10.0)), ControllerAction::None);
        }
        assert_eq!(c.observe(obs(7, 100, 50, 10.0)), ControllerAction::Throttle);
    }

    #[test]
    fn throttled_controller_probes_and_backs_off() {
        let cfg = AdaptationConfig {
            probe_interval_days: 4,
            ..AdaptationConfig::default()
        };
        let mut c = VolumeController::new(cfg);
        c.observe(obs(0, 1_000, 600, 100.0));
        let cap0 = c.cap().unwrap();
        // Quiet days until the probe interval elapses.
        for d in 1..4 {
            assert_eq!(c.observe(obs(d, 1_000, 0, 90.0)), ControllerAction::None);
        }
        assert_eq!(c.observe(obs(4, 1_000, 0, 90.0)), ControllerAction::ProbeUp);
        let cap1 = c.cap().unwrap();
        assert!(cap1 > cap0);
        // Probe hit the limit: failures reappear, cap steps back down.
        assert_eq!(c.observe(obs(5, 1_000, 200, 90.0)), ControllerAction::BackOff);
        let cap2 = c.cap().unwrap();
        assert!(cap2 < cap1);
    }

    #[test]
    fn persistent_blocking_drives_migration() {
        let cfg = AdaptationConfig {
            migrate_after_days: 5,
            ..AdaptationConfig::default()
        };
        let mut c = VolumeController::new(cfg);
        c.observe(obs(0, 1_000, 600, 100.0));
        let mut migrated = false;
        for d in 1..20 {
            if c.observe(obs(d, 1_000, 600, 80.0)) == ControllerAction::Migrate {
                migrated = true;
                assert!(!c.is_throttled(), "fresh network starts unthrottled");
                break;
            }
        }
        assert!(migrated);
    }

    #[test]
    fn cap_never_collapses_below_one() {
        let mut c = VolumeController::new(AdaptationConfig::default());
        c.observe(obs(0, 100, 99, 0.5));
        for d in 1..50 {
            c.observe(obs(d, 100, 99, 0.5));
        }
        if let Some(cap) = c.cap() {
            assert!(cap >= 1.0);
        }
    }
}
