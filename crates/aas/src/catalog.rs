//! Static service catalogs.
//!
//! Everything the services *advertise* — offered action types (Table 1),
//! trial lengths and subscription prices (Table 2), Hublaagram's price list
//! (Table 3), Followersgratis's packages (Table 4), and operating locations
//! (Table 7) — encoded as data. The corresponding benchmark binaries render
//! these tables directly from this module, and the engines read their
//! behaviour from it, so the advertised and implemented catalogs cannot
//! drift apart.

use footsteps_sim::prelude::{ActionType, Country, ServiceId};
use serde::{Deserialize, Serialize};

/// Money in US cents; all paper prices are dollars with at most two
/// decimals, so integer cents avoid floating-point money bugs.
pub type Cents = u64;

/// Format cents as dollars for reports ("$3.15", "$99").
pub fn fmt_dollars(cents: Cents) -> String {
    if cents.is_multiple_of(100) {
        format!("${}", cents / 100)
    } else {
        format!("${}.{:02}", cents / 100, cents % 100)
    }
}

/// Which action types a service sells (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Offerings {
    /// Offers like campaigns.
    pub like: bool,
    /// Offers follow campaigns.
    pub follow: bool,
    /// Offers comment campaigns.
    pub comment: bool,
    /// Offers automated posting.
    pub post: bool,
    /// Offers automated unfollows (reciprocity services only: shed the
    /// outbound follows while keeping reciprocated inbound ones).
    pub unfollow: bool,
}

impl Offerings {
    /// Whether `ty` is offered.
    pub fn offers(&self, ty: ActionType) -> bool {
        match ty {
            ActionType::Like => self.like,
            ActionType::Follow => self.follow,
            ActionType::Comment => self.comment,
            ActionType::Post => self.post,
            ActionType::Unfollow => self.unfollow,
        }
    }

    /// All offered action types, in [`ActionType::ALL`] order.
    pub fn offered_types(&self) -> Vec<ActionType> {
        ActionType::ALL
            .into_iter()
            .filter(|&t| self.offers(t))
            .collect()
    }
}

/// Table 1 row for a service.
pub fn offerings(service: ServiceId) -> Offerings {
    match service {
        ServiceId::Instalex => Offerings {
            like: true,
            follow: true,
            comment: false,
            post: true,
            unfollow: true,
        },
        ServiceId::Instazood => Offerings {
            like: true,
            follow: true,
            comment: true,
            post: true,
            unfollow: true,
        },
        ServiceId::Boostgram => Offerings {
            like: true,
            follow: true,
            comment: true,
            post: false,
            unfollow: true,
        },
        ServiceId::Hublaagram => Offerings {
            like: true,
            follow: true,
            comment: true,
            post: false,
            unfollow: false,
        },
        ServiceId::Followersgratis => Offerings {
            like: true,
            follow: true,
            comment: false,
            post: false,
            unfollow: false,
        },
    }
}

/// Trial and subscription terms for a reciprocity-abuse service (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReciprocityPricing {
    /// Advertised free-trial length in days.
    pub advertised_trial_days: u32,
    /// Trial length actually delivered (§4.2 found Instazood advertises 3
    /// days but delivers 7).
    pub delivered_trial_days: u32,
    /// Minimum purchasable service duration in days.
    pub min_paid_days: u32,
    /// Price of the minimum duration, in cents.
    pub min_paid_cents: Cents,
}

impl ReciprocityPricing {
    /// Price per day of service at the minimum purchase granularity.
    pub fn cents_per_day(&self) -> f64 {
        self.min_paid_cents as f64 / f64::from(self.min_paid_days)
    }
}

/// Table 2 row for a reciprocity service.
///
/// # Panics
/// Panics for collusion services, which price differently (Tables 3/4).
pub fn reciprocity_pricing(service: ServiceId) -> ReciprocityPricing {
    match service {
        ServiceId::Instalex => ReciprocityPricing {
            advertised_trial_days: 7,
            delivered_trial_days: 7,
            min_paid_days: 7,
            min_paid_cents: 315,
        },
        ServiceId::Instazood => ReciprocityPricing {
            advertised_trial_days: 3,
            delivered_trial_days: 7,
            min_paid_days: 1,
            min_paid_cents: 34,
        },
        ServiceId::Boostgram => ReciprocityPricing {
            advertised_trial_days: 3,
            delivered_trial_days: 3,
            min_paid_days: 30,
            min_paid_cents: 9_900,
        },
        other => panic!("{other} is not a reciprocity service"),
    }
}

/// One tier of Hublaagram's monthly "likes per photo" subscription
/// (Table 3, "Month" duration rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonthlyLikeTier {
    /// Lower bound of likes applied to each new photo.
    pub min_likes: u32,
    /// Upper bound of likes applied to each new photo.
    pub max_likes: u32,
    /// Monthly fee in cents.
    pub monthly_cents: Cents,
}

/// One one-time "likes now" package (Table 3, "Immediate" rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneTimeLikePackage {
    /// Likes applied to a single post as fast as possible.
    pub likes: u32,
    /// One-time fee in cents.
    pub cents: Cents,
}

/// Hublaagram's complete price list and free-tier limits (Table 3 + §3.3.2,
/// §5.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HublaagramCatalog {
    /// One-time fee exempting an account from collusion-network
    /// participation, for the lifetime of the account.
    pub no_outbound_cents: Cents,
    /// One-time like packages.
    pub one_time: Vec<OneTimeLikePackage>,
    /// Monthly likes-per-photo tiers.
    pub monthly: Vec<MonthlyLikeTier>,
    /// Likes granted per free request (≈80).
    pub free_likes_per_request: u32,
    /// Follows granted per free request (≈40).
    pub free_follows_per_request: u32,
    /// Cooldown between free requests, seconds (30 minutes).
    pub free_cooldown_secs: u64,
    /// Maximum like delivery rate for free service, likes/hour. Exceeding
    /// this is how the revenue analysis identifies paid accounts.
    pub free_likes_per_hour_cap: u32,
    /// Pop-under ads shown per free request (1–4, §5.2).
    pub ads_per_free_request: (u32, u32),
    /// Ad revenue per 1,000 impressions, low and high bounds in cents
    /// (PopAds CPM $0.60–$4.00 depending on geography).
    pub cpm_cents: (Cents, Cents),
}

/// Hublaagram's catalog as advertised in fall 2017.
pub fn hublaagram_catalog() -> HublaagramCatalog {
    HublaagramCatalog {
        no_outbound_cents: 1_500,
        one_time: vec![
            OneTimeLikePackage { likes: 2_000, cents: 1_000 },
            OneTimeLikePackage { likes: 5_000, cents: 2_000 },
            OneTimeLikePackage { likes: 10_000, cents: 2_500 },
        ],
        monthly: vec![
            MonthlyLikeTier { min_likes: 250, max_likes: 500, monthly_cents: 2_000 },
            MonthlyLikeTier { min_likes: 500, max_likes: 1_000, monthly_cents: 3_000 },
            MonthlyLikeTier { min_likes: 1_000, max_likes: 2_000, monthly_cents: 4_000 },
            MonthlyLikeTier { min_likes: 2_000, max_likes: 4_000, monthly_cents: 7_000 },
        ],
        free_likes_per_request: 80,
        free_follows_per_request: 40,
        free_cooldown_secs: 1_800,
        free_likes_per_hour_cap: 160,
        ads_per_free_request: (1, 4),
        cpm_cents: (60, 400),
    }
}

/// A Followersgratis package (Table 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FollowersgratisPackage {
    /// Human-readable description matching the site's wording.
    pub description: String,
    /// Follows delivered, if a follow package.
    pub follows: u32,
    /// Likes delivered (paid or bundled free likes).
    pub likes: u32,
    /// Price in cents.
    pub cents: Cents,
    /// Advertised delivery duration.
    pub duration: String,
}

/// Followersgratis's packages as advertised in fall 2017 (Table 4).
pub fn followersgratis_catalog() -> Vec<FollowersgratisPackage> {
    vec![
        FollowersgratisPackage {
            description: "500 Follows (300 free likes)".to_owned(),
            follows: 500,
            likes: 300,
            cents: 315,
            duration: "1 Day".to_owned(),
        },
        FollowersgratisPackage {
            description: "1,000 Follows (500 free likes)".to_owned(),
            follows: 1_000,
            likes: 500,
            cents: 525,
            duration: "1 Day".to_owned(),
        },
        FollowersgratisPackage {
            description: "500 Likes (250 free likes)".to_owned(),
            follows: 0,
            likes: 750,
            cents: 210,
            duration: "Instant".to_owned(),
        },
        FollowersgratisPackage {
            description: "500 Likes (500 free likes)".to_owned(),
            follows: 0,
            likes: 1_000,
            cents: 525,
            duration: "Fast".to_owned(),
        },
    ]
}

/// Operating location of a service (Table 7): the country its website
/// reports, and the countries of the ASNs its platform traffic originates
/// from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceLocation {
    /// Country the service claims to operate from.
    pub operating_country: Country,
    /// Countries of the ASNs its activity originates from.
    pub asn_countries: Vec<Country>,
}

/// Table 7 row for a business group.
pub fn service_location(service: ServiceId) -> ServiceLocation {
    match service {
        ServiceId::Instalex | ServiceId::Instazood => ServiceLocation {
            operating_country: Country::Ru,
            asn_countries: vec![Country::Us],
        },
        ServiceId::Boostgram => ServiceLocation {
            operating_country: Country::Us,
            asn_countries: vec![Country::Us],
        },
        ServiceId::Hublaagram => ServiceLocation {
            operating_country: Country::Id,
            asn_countries: vec![Country::Gb, Country::Us],
        },
        ServiceId::Followersgratis => ServiceLocation {
            operating_country: Country::Id,
            asn_countries: vec![Country::Id],
        },
    }
}

/// Franchise fees the Instalex/Instazood parent advertises (§3.3): monthly
/// franchising packages from $1,990 to $30,990.
pub const FRANCHISE_FEE_RANGE_CENTS: (Cents, Cents) = (199_000, 3_099_000);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_every_service_offers_likes_and_follows() {
        for s in ServiceId::ALL {
            let o = offerings(s);
            assert!(o.like, "{s} must offer likes");
            assert!(o.follow, "{s} must offer follows");
        }
    }

    #[test]
    fn table1_unfollow_is_reciprocity_only() {
        for s in ServiceId::ALL {
            let o = offerings(s);
            assert_eq!(
                o.unfollow,
                s.is_reciprocity(),
                "{s}: all and only reciprocity services offer unfollows"
            );
        }
    }

    #[test]
    fn table1_aggregate_shares() {
        // "All offer like and follow services, 60% offer comment and
        // unfollow services, and 40% offer post services."
        let all: Vec<Offerings> = ServiceId::ALL.iter().map(|&s| offerings(s)).collect();
        assert_eq!(all.iter().filter(|o| o.comment).count(), 3);
        assert_eq!(all.iter().filter(|o| o.unfollow).count(), 3);
        assert_eq!(all.iter().filter(|o| o.post).count(), 2);
    }

    #[test]
    fn table2_prices() {
        let ix = reciprocity_pricing(ServiceId::Instalex);
        assert_eq!(ix.advertised_trial_days, 7);
        assert_eq!(ix.min_paid_cents, 315);
        let iz = reciprocity_pricing(ServiceId::Instazood);
        assert_eq!(iz.advertised_trial_days, 3);
        assert_eq!(iz.delivered_trial_days, 7, "measured, §4.2");
        assert_eq!(iz.min_paid_cents, 34);
        let bg = reciprocity_pricing(ServiceId::Boostgram);
        assert_eq!(bg.min_paid_days, 30);
        assert_eq!(bg.min_paid_cents, 9_900);
        // Boostgram is by far the most expensive per day.
        assert!(bg.cents_per_day() > ix.cents_per_day());
        assert!(bg.cents_per_day() > iz.cents_per_day());
    }

    #[test]
    #[should_panic(expected = "not a reciprocity service")]
    fn table2_rejects_collusion_services() {
        reciprocity_pricing(ServiceId::Hublaagram);
    }

    #[test]
    fn table3_catalog() {
        let c = hublaagram_catalog();
        assert_eq!(c.no_outbound_cents, 1_500);
        assert_eq!(c.one_time.len(), 3);
        assert_eq!(c.one_time[0].likes, 2_000);
        assert_eq!(c.one_time[0].cents, 1_000);
        assert_eq!(c.monthly.len(), 4);
        assert_eq!(c.monthly[3].monthly_cents, 7_000);
        // Tiers are contiguous and sorted.
        for w in c.monthly.windows(2) {
            assert_eq!(w[0].max_likes, w[1].min_likes);
            assert!(w[0].monthly_cents < w[1].monthly_cents);
        }
        assert!(c.free_likes_per_hour_cap > c.free_likes_per_request);
    }

    #[test]
    fn table4_catalog() {
        let pkgs = followersgratis_catalog();
        assert_eq!(pkgs.len(), 4);
        assert_eq!(pkgs[0].follows, 500);
        assert_eq!(pkgs[0].cents, 315);
        assert_eq!(pkgs[3].cents, 525);
    }

    #[test]
    fn table7_locations() {
        assert_eq!(
            service_location(ServiceId::Instalex).operating_country,
            Country::Ru
        );
        assert_eq!(
            service_location(ServiceId::Boostgram).operating_country,
            Country::Us
        );
        let h = service_location(ServiceId::Hublaagram);
        assert_eq!(h.operating_country, Country::Id);
        assert_eq!(h.asn_countries, vec![Country::Gb, Country::Us]);
    }

    #[test]
    fn dollars_formatting() {
        assert_eq!(fmt_dollars(315), "$3.15");
        assert_eq!(fmt_dollars(9_900), "$99");
        assert_eq!(fmt_dollars(34), "$0.34");
        assert_eq!(fmt_dollars(0), "$0");
    }
}
