//! Collusion-network service engine (Hublaagram, Followersgratis).
//!
//! A collusion network (§3.2) serves every customer *from* every customer:
//! accounts enrolled in the service produce outbound actions toward other
//! members, and receive inbound actions from yet other members. The engine
//! models the full business:
//!
//! * free tier — small action grants per request, cooldown-limited, funded
//!   by pop-under ads shown on every request (§5.2);
//! * paid tiers — one-time like bursts, monthly likes-per-photo
//!   subscriptions, and the "no outbound" lifetime exemption (Table 3);
//! * Followersgratis-style paid packages (Table 4) for the variant with no
//!   subscription products;
//! * adaptation — controllers watching visible delivery failures, with the
//!   three-week like-detection lag the paper observed, ASN migration under
//!   sustained blocking, and the terminal "out of stock" state (§6.4).

use crate::adapt::{AdaptationConfig, DayObservation, VolumeController};
use crate::catalog::{FollowersgratisPackage, HublaagramCatalog};
use crate::customer::{sample_poisson, Customer, CustomerBook, LifecycleParams, PayState};
use crate::ledger::{Payment, PaymentKind, PaymentLedger};
use footsteps_sim::population::{sample_lognormal, ResidentialIndex};
use footsteps_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Composition of the paying customer base, as enrollment-time draws.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PayerProfile {
    /// Probability a new customer pays the lifetime no-outbound fee.
    pub p_no_outbound: f64,
    /// Probability a new customer subscribes to a monthly like tier.
    pub p_monthly: f64,
    /// Relative weights of the four monthly tiers (Table 9's observed mix).
    pub monthly_tier_weights: [f64; 4],
    /// Probability a new customer buys a one-time like package.
    pub p_one_time: f64,
}

impl PayerProfile {
    /// Draw a tier index from the weights.
    fn draw_tier(&self, rng: &mut impl Rng) -> usize {
        let total: f64 = self.monthly_tier_weights.iter().sum();
        if total <= 0.0 {
            return 0;
        }
        let mut t = rng.gen::<f64>() * total;
        for (i, &w) in self.monthly_tier_weights.iter().enumerate() {
            t -= w;
            if t < 0.0 {
                return i;
            }
        }
        self.monthly_tier_weights.len() - 1
    }
}

/// Collusion-specific per-customer state.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Role {
    /// Paid the lifetime fee to never be used for outbound actions.
    no_outbound: bool,
    /// Monthly like tier index, if subscribed.
    monthly_tier: Option<usize>,
    /// Next day a monthly renewal is due.
    next_renewal: Day,
}

/// Static configuration of one collusion service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollusionConfig {
    /// Which service this is.
    pub service: ServiceId,
    /// Spoofed-client fingerprint variant.
    pub fingerprint_variant: u16,
    /// Price list and free-tier limits.
    pub catalog: HublaagramCatalog,
    /// Customer arrival / long-term dynamics.
    pub lifecycle: LifecycleParams,
    /// Customer geography.
    pub customer_mix: CountryMix,
    /// Controller tuning for like deliveries (Hublaagram's had a ~3-week
    /// implementation lag).
    pub adapt_likes: crate::adapt::AdaptationConfig,
    /// Controller tuning for follow deliveries.
    pub adapt_follows: crate::adapt::AdaptationConfig,
    /// Mean free like-requests per active customer-day.
    pub free_like_requests_per_day: f64,
    /// Mean free follow-requests per active customer-day.
    pub free_follow_requests_per_day: f64,
    /// Mean free comment-requests per active customer-day.
    pub free_comment_requests_per_day: f64,
    /// Paying-customer composition.
    pub payer_profile: PayerProfile,
    /// Customers' organic posting rate (photos/day) — monthly tiers deliver
    /// per new photo.
    pub photos_per_day: f64,
    /// Number of distinct source IPs the service spreads outbound traffic
    /// over (Followersgratis: 3; Hublaagram: thousands).
    pub ip_pool_size: u32,
    /// Free requests per day made on honeypot enrollments.
    pub honeypot_free_requests_per_day: f64,
    /// Delivery rate for paid like bursts, likes/hour (exceeds the 160/h
    /// free cap — the revenue analysis keys on this).
    pub paid_delivery_rate_per_hour: u32,
    /// Probability an active customer buys a Followersgratis package today.
    pub package_purchase_prob: f64,
    /// Followersgratis package list (empty for Hublaagram).
    pub followersgratis_packages: Vec<FollowersgratisPackage>,
}

/// Daily delivery statistics per action type, for the controllers.
#[derive(Debug, Clone, Default)]
struct DayStats {
    attempted: u64,
    visible_failed: u64,
    success_per_recipient: Vec<u32>,
    /// Per-recipient daily tallies `(attempted, blocked, delivered)` feeding
    /// the per-recipient controllers.
    per_recipient: HashMap<AccountId, (u64, u64, u32)>,
}

/// Everything the decision phase resolved for one engaged member-day: free
/// requests made, purchase rolls, posting. The apply phase turns this into
/// deposits, ledger rows and stats, serially, in roster order.
#[derive(Debug, Clone, Copy)]
struct MemberPlan {
    account: AccountId,
    login: bool,
    fresh_photo: bool,
    like_requests: u32,
    /// Pop-under ads shown per free like request today.
    like_ads_each: u32,
    follow_requests: u32,
    /// Pop-under ads shown per free follow request today.
    follow_ads_each: u32,
    comment_requests: u32,
    /// Monthly-tier like quantity (drawn only when subscribed and posting
    /// a fresh photo today).
    monthly_qty: u32,
    /// Index into `followersgratis_packages` if a package is bought today.
    package: Option<usize>,
}

/// What one routed deposit op was *for*, so the post-apply stats walk can
/// attribute its outcome back to the controllers exactly as the serial
/// ladder did. Raw quantities are pre-cap (controller `attempted` counts the
/// customer's request, not what the service dared to deliver).
#[derive(Debug, Clone, Copy)]
enum OpUse {
    /// Free-tier like grant: `raw` requested, `capped` routed.
    FreeLike { raw: u32, capped: u32 },
    /// Free-tier follow grant.
    FreeFollow { raw: u32, capped: u32 },
    /// Free-tier comment grant (no controller stats).
    Comment,
    /// Monthly-subscription like delivery on a fresh photo.
    MonthlyLike { raw: u32, capped: u32 },
    /// Followersgratis package follows (aggregate stats only — the serial
    /// ladder never fed these to the per-recipient controllers).
    PackageFollow { follows: u32 },
    /// Followersgratis package like burst (outbound total only).
    PackageBurst { likes: u32 },
}

/// Output of the route phase: the day's deposit ops in serial reference
/// order, their stat attributions, and the ad-impression total (fixed at
/// plan time — free requests fund ads whether or not deliveries succeed).
#[derive(Debug, Default)]
struct RoutedDay {
    ops: Vec<DepositOp>,
    uses: Vec<OpUse>,
    ads_today: u64,
}

/// Sentinel account id used for ad-income ledger rows.
pub const ADS_ACCOUNT: AccountId = AccountId(u32::MAX);

/// A running collusion-network service.
#[derive(Debug, Serialize, Deserialize)]
pub struct CollusionService {
    config: CollusionConfig,
    customers: CustomerBook,
    roles: HashMap<AccountId, Role>,
    asn_rotation: Vec<AsnId>,
    asn_idx: usize,
    /// How many rotation entries are in simultaneous use (Hublaagram serves
    /// from two networks at once — Table 7 locates it in GBR *and* USA).
    active_asns: usize,
    like_controller: VolumeController,
    follow_controller: VolumeController,
    /// Per-recipient like-delivery controllers: the service observes *which*
    /// customers' deliveries fail and reduces volume for exactly those.
    per_recipient_like: HashMap<AccountId, VolumeController>,
    /// Per-recipient follow-delivery controllers.
    per_recipient_follow: HashMap<AccountId, VolumeController>,
    /// Whether blocked-delivery detection has been implemented per type
    /// (`[likes, follows]`). Hublaagram's like detector took ~3 weeks of
    /// sustained failures to appear (§6.3).
    capability: [bool; 2],
    /// Consecutive days with visible failures per type.
    failure_streak: [u32; 2],
    /// Consecutive days with a large share of recipients throttled (drives
    /// migration / out-of-stock).
    heavy_throttle_days: u32,
    rng: SmallRng,
    /// Seed of the per-member decision streams: each member-day's plan is
    /// drawn from `decision_rng(decision_seed, account, day)`, so planning
    /// can be sharded across worker threads without perturbing any stream
    /// (DESIGN.md §4).
    decision_seed: u64,
    out_of_stock: bool,
    out_of_stock_on: Option<Day>,
    migrations: u32,
    /// Days of continued blocking after the rotation was exhausted.
    exhausted_blocked_days: u32,
    /// Total ad impressions served, for reporting.
    ads_impressions: u64,
}

impl CollusionService {
    /// Create the service over its delivery networks. `asn_rotation[0]` is
    /// the primary (Table 7) network.
    pub fn new(config: CollusionConfig, asn_rotation: Vec<AsnId>, rng: SmallRng) -> Self {
        Self::with_active_asns(config, asn_rotation, 1, rng)
    }

    /// Like [`Self::new`], serving from `active_asns` networks at once.
    pub fn with_active_asns(
        config: CollusionConfig,
        asn_rotation: Vec<AsnId>,
        active_asns: usize,
        rng: SmallRng,
    ) -> Self {
        assert!(!asn_rotation.is_empty(), "need at least a primary ASN");
        assert!(active_asns >= 1 && active_asns <= asn_rotation.len());
        let like_controller = VolumeController::new(config.adapt_likes);
        let follow_controller = VolumeController::new(config.adapt_follows);
        let mut rng = rng;
        // First draw of the service stream seeds the per-member decision
        // streams (same derivation chain as the reciprocity engine).
        let decision_seed = rng.gen::<u64>();
        Self {
            config,
            customers: CustomerBook::new(),
            roles: HashMap::new(),
            asn_rotation,
            asn_idx: 0,
            active_asns,
            like_controller,
            follow_controller,
            per_recipient_like: HashMap::new(),
            per_recipient_follow: HashMap::new(),
            capability: [false; 2],
            failure_streak: [0; 2],
            heavy_throttle_days: 0,
            rng,
            decision_seed,
            out_of_stock: false,
            out_of_stock_on: None,
            migrations: 0,
            exhausted_blocked_days: 0,
            ads_impressions: 0,
        }
    }

    /// This service's id.
    pub fn id(&self) -> ServiceId {
        self.config.service
    }

    /// The customer roster.
    pub fn customers(&self) -> &CustomerBook {
        &self.customers
    }

    /// Current primary delivery ASN.
    pub fn current_asn(&self) -> AsnId {
        self.asn_rotation[self.asn_idx]
    }

    /// The delivery network used for one customer (customers are pinned to
    /// one of the active networks by account id).
    pub fn asn_for(&self, account: AccountId) -> AsnId {
        let span = self
            .active_asns
            .min(self.asn_rotation.len() - self.asn_idx);
        self.asn_rotation[self.asn_idx + (account.0 as usize % span)]
    }

    /// All delivery networks currently in use.
    pub fn active_asn_set(&self) -> Vec<AsnId> {
        let span = self
            .active_asns
            .min(self.asn_rotation.len() - self.asn_idx);
        self.asn_rotation[self.asn_idx..self.asn_idx + span].to_vec()
    }

    /// Whether the service has stopped selling ("out of stock", §6.4).
    pub fn is_out_of_stock(&self) -> bool {
        self.out_of_stock
    }

    /// Day the service went out of stock, if it did.
    pub fn out_of_stock_on(&self) -> Option<Day> {
        self.out_of_stock_on
    }

    /// ASN migrations performed.
    pub fn migrations(&self) -> u32 {
        self.migrations
    }

    /// Whether the like controller has engaged.
    pub fn likes_throttled(&self) -> bool {
        self.like_controller.is_throttled()
    }

    /// Total pop-under impressions served so far.
    pub fn ads_impressions(&self) -> u64 {
        self.ads_impressions
    }

    /// Whether blocked-delivery detection is live for likes.
    pub fn like_detection_active(&self) -> bool {
        self.capability[0]
    }

    /// The self-imposed like-delivery cap for one recipient, if engaged.
    pub fn recipient_like_cap(&self, account: AccountId) -> Option<f64> {
        self.per_recipient_like.get(&account).and_then(|c| c.cap())
    }

    /// Number of no-outbound (exempt) customers.
    pub fn no_outbound_count(&self) -> usize {
        // footsteps-lint: allow(nondet-iter) — order-insensitive count
        self.roles.values().filter(|r| r.no_outbound).count()
    }

    /// Enroll a honeypot account requesting `requested` actions. If
    /// `monthly_tier` is set, the honeypot pays for that tier (the paid
    /// probes behind §5.2's 160 likes/hour finding).
    pub fn enroll_honeypot(
        &mut self,
        account: AccountId,
        requested: ActionType,
        monthly_tier: Option<usize>,
        day: Day,
        ledger: &mut PaymentLedger,
    ) {
        let mut role = Role::default();
        // Services without subscription products (Followersgratis) silently
        // downgrade a paid registration to free usage — there is nothing to
        // buy monthly (Table 4 is package-based).
        let monthly_tier = monthly_tier.filter(|_| !self.config.catalog.monthly.is_empty());
        if let Some(tier) = monthly_tier {
            let t = &self.config.catalog.monthly[tier];
            ledger.record(Payment {
                day,
                account,
                service: self.config.service,
                cents: t.monthly_cents,
                kind: PaymentKind::MonthlyLikes,
            });
            role.monthly_tier = Some(tier);
            role.next_renewal = day.plus(30);
        }
        self.roles.insert(account, role);
        self.customers.enroll(Customer {
            account,
            enrolled: day,
            // Honeypots run until the framework deletes the account; give
            // them a long horizon.
            planned_end: day.plus(3_650),
            long_term: true,
            pay: PayState::Free,
            ever_paid: monthly_tier.is_some(),
            requested: vec![requested],
            volume_multiplier: 1.0,
            honeypot: true,
        });
    }

    /// Seed the pre-existing customer stock before the first `run_day`.
    pub fn seed_initial_customers(
        &mut self,
        platform: &mut Platform,
        residential: &ResidentialIndex,
        ledger: &mut PaymentLedger,
        day: Day,
    ) {
        for _ in 0..self.config.lifecycle.initial_long_term {
            let account = self.create_customer_account(platform, residential);
            let mean = self.config.lifecycle.long_term_mean_days;
            let len = crate::customer::sample_geometric_days(mean, &mut self.rng).max(10);
            self.enroll_regular(platform, ledger, account, day, true, day.plus(len));
        }
    }

    /// Run one simulated day.
    pub fn run_day(
        &mut self,
        platform: &mut Platform,
        residential: &ResidentialIndex,
        ledger: &mut PaymentLedger,
        day: Day,
    ) {
        self.admit_arrivals(platform, residential, ledger, day);
        self.process_renewals(ledger, day);
        let stats = self.deliver(platform, ledger, day);
        self.adapt(day, stats);
    }

    fn create_customer_account(
        &mut self,
        platform: &mut Platform,
        residential: &ResidentialIndex,
    ) -> AccountId {
        let country = self.config.customer_mix.sample(self.rng.gen());
        let home = residential.pick(country, self.rng.gen());
        let following = sample_lognormal(&mut self.rng, 350.0, 0.9).round().min(5e5) as u32;
        let followers = sample_lognormal(&mut self.rng, 280.0, 0.9).round().min(5e5) as u32;
        let tendency =
            footsteps_sim::behavior::followback_tendency(following, followers, self.rng.gen());
        let profile = footsteps_sim::behavior::synthesize_profile(
            &platform.config.behavior,
            tendency,
            self.rng.gen(),
        );
        let account = platform.accounts.create(
            platform.clock.now(),
            ProfileKind::Organic,
            country,
            home,
            following,
            followers,
            profile,
        );
        // Customers arrive with a small photo history; deliveries land on
        // the latest photo.
        let photos = 1 + (self.rng.gen::<f64>() * 3.0) as u32;
        let ip = platform.asns.ip_in(home, account.0);
        for _ in 0..photos {
            platform.post_media(account, home, ip);
        }
        account
    }

    fn admit_arrivals(
        &mut self,
        platform: &mut Platform,
        residential: &ResidentialIndex,
        ledger: &mut PaymentLedger,
        day: Day,
    ) {
        let n = sample_poisson(&mut self.rng, self.config.lifecycle.arrival_rate);
        for _ in 0..n {
            let account = self.create_customer_account(platform, residential);
            let (long_term, planned_end) = self.config.lifecycle.draw_span(day, &mut self.rng);
            self.enroll_regular(platform, ledger, account, day, long_term, planned_end);
        }
    }

    fn enroll_regular(
        &mut self,
        platform: &mut Platform,
        ledger: &mut PaymentLedger,
        account: AccountId,
        day: Day,
        long_term: bool,
        planned_end: Day,
    ) {
        let mut role = Role::default();
        let mut ever_paid = false;
        if !self.out_of_stock {
            let p = &self.config.payer_profile;
            let u: f64 = self.rng.gen();
            // The bands are disjoint; a draw landing in the monthly band for
            // a short-term user buys nothing (monthly tiers only make sense
            // for users who stay).
            if u < p.p_no_outbound {
                role.no_outbound = true;
                ever_paid = true;
                ledger.record(Payment {
                    day,
                    account,
                    service: self.config.service,
                    cents: self.config.catalog.no_outbound_cents,
                    kind: PaymentKind::NoOutbound,
                });
            } else if u < p.p_no_outbound + p.p_monthly && long_term {
                let tier = p.draw_tier(&mut self.rng);
                role.monthly_tier = Some(tier);
                role.next_renewal = day.plus(30);
                ever_paid = true;
                ledger.record(Payment {
                    day,
                    account,
                    service: self.config.service,
                    cents: self.config.catalog.monthly[tier].monthly_cents,
                    kind: PaymentKind::MonthlyLikes,
                });
            } else if u >= p.p_no_outbound + p.p_monthly
                && u < p.p_no_outbound + p.p_monthly + p.p_one_time
                && !self.config.catalog.one_time.is_empty()
            {
                // One-time burst: overwhelmingly the cheapest package
                // (Table 9 found ≈182 buyers of the 2,000-like package and
                // fewer than 20 of the larger ones).
                let pkg = self.config.catalog.one_time[0];
                ever_paid = true;
                ledger.record(Payment {
                    day,
                    account,
                    service: self.config.service,
                    cents: pkg.cents,
                    kind: PaymentKind::OneTimeLikes,
                });
                self.deliver_burst(platform, account, pkg.likes);
            }
        }
        self.roles.insert(account, role);
        self.customers.enroll(Customer {
            account,
            enrolled: day,
            planned_end,
            long_term,
            pay: PayState::Free,
            ever_paid,
            requested: vec![ActionType::Like, ActionType::Follow, ActionType::Comment],
            volume_multiplier: 1.0,
            honeypot: false,
        });
    }

    fn process_renewals(&mut self, ledger: &mut PaymentLedger, day: Day) {
        if self.out_of_stock {
            // No new payments accepted; subscriptions lapse back to free.
            // footsteps-lint: allow(nondet-iter) — each role lapses independently; no cross-role order dependence
            for role in self.roles.values_mut() {
                if role.monthly_tier.is_some() && day >= role.next_renewal {
                    role.monthly_tier = None;
                }
            }
            return;
        }
        let service = self.config.service;
        let mut payments = Vec::new();
        for c in self.customers.iter() {
            if !c.engaged_on(day) {
                continue;
            }
            let Some(role) = self.roles.get_mut(&c.account) else {
                continue;
            };
            if let Some(tier) = role.monthly_tier {
                if day >= role.next_renewal {
                    payments.push(Payment {
                        day,
                        account: c.account,
                        service,
                        cents: self.config.catalog.monthly[tier].monthly_cents,
                        kind: PaymentKind::MonthlyLikes,
                    });
                    role.next_renewal = day.plus(30);
                }
            }
        }
        for p in payments {
            ledger.record(p);
        }
    }

    /// Decide one member's day: every stochastic choice (logins, posting,
    /// free-tier request counts, ad impressions, purchase rolls) drawn from
    /// the member's own `(decision_seed, account, day)` stream. Reads shared
    /// service state, mutates nothing — safe to run on worker threads.
    fn plan_member(&self, day: Day, account: AccountId, honeypot: bool) -> MemberPlan {
        let mut rng = decision_rng(self.decision_seed, u64::from(account.0), u64::from(day.0));
        let role = self.roles.get(&account).copied().unwrap_or_default();
        let login = rng.gen::<f64>() < 0.7;
        // Organic posting; monthly tiers deliver on each new photo.
        let fresh_photo = rng.gen::<f64>() < self.config.photos_per_day;
        // Receive-only (no-outbound) customers paid precisely because they
        // want the inbound actions: they request several times more often
        // than casual free users.
        let engagement = if role.no_outbound { 3.0 } else { 1.0 };
        let like_rate = if honeypot {
            self.config.honeypot_free_requests_per_day
        } else {
            engagement * self.config.free_like_requests_per_day
        };
        // The 30-minute cooldown (§3.3.2) bounds how many free requests a
        // day can possibly hold, however eager the customer.
        let max_requests =
            (footsteps_sim::time::SECS_PER_DAY / self.config.catalog.free_cooldown_secs.max(1))
                as u32;
        let (ads_lo, ads_hi) = self.config.catalog.ads_per_free_request;
        let like_requests = sample_poisson(&mut rng, like_rate).min(max_requests);
        let like_ads_each = if like_requests > 0
            && self.config.catalog.free_likes_per_request > 0
            && ads_hi > 0
        {
            rng.gen_range(ads_lo..=ads_hi)
        } else {
            0
        };
        let follow_rate = if honeypot {
            self.config.honeypot_free_requests_per_day
        } else {
            engagement * self.config.free_follow_requests_per_day
        };
        let follow_requests = sample_poisson(&mut rng, follow_rate).min(max_requests);
        let follow_ads_each = if follow_requests > 0
            && self.config.catalog.free_follows_per_request > 0
            && ads_hi > 0
        {
            rng.gen_range(ads_lo..=ads_hi)
        } else {
            0
        };
        let comment_requests =
            sample_poisson(&mut rng, self.config.free_comment_requests_per_day);
        let monthly_qty = match role.monthly_tier {
            Some(tier) if fresh_photo => {
                let t = self.config.catalog.monthly[tier];
                rng.gen_range(t.min_likes..=t.max_likes)
            }
            _ => 0,
        };
        let package = if !honeypot
            && !self.out_of_stock
            && self.config.package_purchase_prob > 0.0
            && !self.config.followersgratis_packages.is_empty()
            && rng.gen::<f64>() < self.config.package_purchase_prob
        {
            Some(rng.gen_range(0..self.config.followersgratis_packages.len()))
        } else {
            None
        };
        MemberPlan {
            account,
            login,
            fresh_photo,
            like_requests,
            like_ads_each,
            follow_requests,
            follow_ads_each,
            comment_requests,
            monthly_qty,
            package,
        }
    }

    /// Deliver one day of inbound actions and generate the matching outbound
    /// participation, returning per-type stats for the controllers.
    fn deliver(
        &mut self,
        platform: &mut Platform,
        ledger: &mut PaymentLedger,
        day: Day,
    ) -> [DayStats; 2] {
        let mut like_stats = DayStats::default();
        let mut follow_stats = DayStats::default();

        let mut total_outbound_likes = 0u64;
        let mut total_outbound_follows = 0u64;
        let mut total_outbound_comments = 0u64;
        let mut ads_today = 0u64;

        let engaged: Vec<(AccountId, bool, Option<ActionType>)> = self
            .customers
            .engaged_on(day)
            .map(|c| {
                let requested = c.honeypot.then(|| c.requested[0]);
                (c.account, c.honeypot, requested)
            })
            .collect();

        // Decision phase: plan every engaged member's day in parallel. The
        // phase is an open span; each plan worker's busy interval lands as
        // a lane under `aas.<slug>.decision.worker`.
        let slug = self.config.service.slug();
        let decision_span = platform.obs.timings.start(&format!("aas.{slug}.decision"));
        let region_t0 = platform.obs.timings.now_secs();
        let (plans, decision_lanes) = crate::engine::plan_parallel_timed(
            &engaged,
            platform.config.worker_threads,
            |&(account, honeypot, _)| self.plan_member(day, account, honeypot),
        );
        platform.obs.timings.attach_workers(
            &format!("aas.{slug}.decision.worker"),
            region_t0,
            &decision_lanes,
        );
        platform.obs.timings.finish(decision_span);
        // Plan counts come from the merged (roster-order) list so the metric
        // values are independent of the decision-phase shard count.
        let planned_requests: u64 = plans
            .iter()
            .map(|p| u64::from(p.like_requests) + u64::from(p.follow_requests) + u64::from(p.comment_requests))
            .sum();
        platform
            .obs
            .metrics
            .add(&format!("aas.{slug}.engaged"), engaged.len() as u64);
        platform
            .obs
            .metrics
            .add(&format!("aas.{slug}.planned_requests"), planned_requests);

        // Route phase: walk the plans in roster order, flattening them into
        // the day's deposit-op sequence and performing the side effects that
        // must stay serial (logins, posting, payments). Deterministic by
        // construction — no draws, no thread-count dependence.
        let route_span = platform.obs.timings.start(&format!("aas.{slug}.route"));
        let routed = self.route_day(platform, ledger, day, &plans);
        platform.obs.timings.finish(route_span);
        ads_today += routed.ads_today;

        // Apply phase: execute the deposits, sharded by target account over
        // the worker threads. Results line up with `routed.ops` and are
        // byte-identical to the serial ladder for any thread count. The
        // shard workers' lanes attach under this open span inside
        // `apply_deposits_sharded`.
        let apply_span = platform.obs.timings.start(&format!("aas.{slug}.apply"));
        let results = platform.apply_deposits_sharded(
            &routed.ops,
            platform.config.worker_threads,
            &format!("aas.{slug}.apply.shard"),
        );
        platform.obs.timings.finish(apply_span);

        // Attribute the outcomes back to controller statistics, walking the
        // ops in routing order (= the serial ladder's stat-update order).
        for ((op, used), res) in routed.ops.iter().zip(&routed.uses).zip(&results) {
            let account = op.target;
            match *used {
                OpUse::FreeLike { raw, capped } | OpUse::MonthlyLike { raw, capped } => {
                    like_stats.attempted += u64::from(raw);
                    like_stats.visible_failed += u64::from(res.blocked);
                    like_stats.success_per_recipient.push(res.visible_success());
                    let tally = like_stats.per_recipient.entry(account).or_default();
                    tally.0 += u64::from(capped);
                    tally.1 += u64::from(res.blocked);
                    tally.2 += res.visible_success();
                    total_outbound_likes += u64::from(res.attempted);
                }
                OpUse::FreeFollow { raw, capped } => {
                    follow_stats.attempted += u64::from(raw);
                    follow_stats.visible_failed += u64::from(res.blocked);
                    follow_stats.success_per_recipient.push(res.visible_success());
                    let tally = follow_stats.per_recipient.entry(account).or_default();
                    tally.0 += u64::from(capped);
                    tally.1 += u64::from(res.blocked);
                    tally.2 += res.visible_success();
                    total_outbound_follows += u64::from(res.attempted);
                }
                OpUse::Comment => {
                    total_outbound_comments += u64::from(res.attempted);
                }
                OpUse::PackageFollow { follows } => {
                    follow_stats.attempted += u64::from(follows);
                    follow_stats.visible_failed += u64::from(res.blocked);
                    total_outbound_follows += u64::from(follows);
                }
                OpUse::PackageBurst { likes } => {
                    total_outbound_likes += u64::from(likes);
                }
            }
        }

        // --- outbound participation ---------------------------------------
        // Every delivered inbound action was performed by some member of the
        // network; spread the outbound volume over non-exempt participants.
        let participants: Vec<(AccountId, bool, Option<ActionType>)> = engaged
            .iter()
            .filter(|(a, _, _)| !self.roles.get(a).map(|r| r.no_outbound).unwrap_or(false))
            .copied()
            .collect();
        if !participants.is_empty() {
            let n = participants.len() as u64;
            // Even split with the remainder spread over the first accounts,
            // so small volumes (comments) are not rounded away.
            let split = |total: u64, idx: u64| -> u32 {
                (total / n + u64::from(idx < total % n)) as u32
            };
            let fingerprint = ClientFingerprint::SpoofedMobile {
                variant: self.config.fingerprint_variant,
            };
            for (idx, &(account, honeypot, requested)) in participants.iter().enumerate() {
                let idx = idx as u64;
                let asn = self.asn_for(account);
                for (ty, count) in [
                    (ActionType::Like, split(total_outbound_likes, idx)),
                    (ActionType::Follow, split(total_outbound_follows, idx)),
                    (ActionType::Comment, split(total_outbound_comments, idx)),
                ] {
                    if count == 0 {
                        continue;
                    }
                    // §4.2: "the services all perform as advertised […] no
                    // AASs used our accounts to produce visible un-requested
                    // actions" — honeypot accounts only participate with the
                    // action type their registration requested.
                    if honeypot && requested != Some(ty) {
                        continue;
                    }
                    let ip = platform
                        .asns
                        .ip_in(asn, self.rng.gen_range(0..self.config.ip_pool_size.max(1)));
                    if honeypot {
                        // Honeypot outbound goes through the event path so the
                        // framework observes each action individually. Cap
                        // the volume: the honeypot sees *that* and *how* its
                        // account is used, which does not require hundreds
                        // of events. Targets are drawn from the other
                        // honeypot members: the recipients' delivered volume
                        // is already fully accounted for by the deposit path,
                        // so routing these observational events at organic
                        // customers would double-count deliveries.
                        let peers: Vec<AccountId> = participants
                            .iter()
                            .filter(|&&(a, hp, _)| hp && a != account)
                            .map(|&(a, _, _)| a)
                            .collect();
                        if peers.is_empty() {
                            continue;
                        }
                        let n = count.min(25) as usize;
                        let targets: Vec<AccountId> = (0..n)
                            .map(|_| peers[self.rng.gen_range(0..peers.len())])
                            .collect();
                        for t in targets {
                            platform.submit_event(EventRequest {
                                actor: account,
                                action: ty,
                                target: t,
                                asn,
                                ip,
                                fingerprint,
                                service: Some(self.config.service),
                            });
                        }
                    } else {
                        platform.submit_batch(BatchRequest {
                            actor: account,
                            action: ty,
                            count,
                            asn,
                            ip,
                            fingerprint,
                            pool: PoolStats::INERT,
                            service: Some(self.config.service),
                        });
                    }
                }
            }
        }

        // --- ad income ------------------------------------------------------
        if ads_today > 0 {
            self.ads_impressions += ads_today;
            let (lo, hi) = self.config.catalog.cpm_cents;
            if hi > 0 {
                let cpm = self.rng.gen_range(lo..=hi) as f64;
                let cents = (ads_today as f64 * cpm / 1_000.0).round() as u64;
                if cents > 0 {
                    ledger.record(Payment {
                        day,
                        account: ADS_ACCOUNT,
                        service: self.config.service,
                        cents,
                        kind: PaymentKind::Ads,
                    });
                }
            }
        }

        [like_stats, follow_stats]
    }

    /// Route phase of the three-phase engine (DESIGN.md §4): turn the day's
    /// plans into a flat [`DepositOp`] sequence in serial reference order —
    /// per plan: free likes, free follows, comments, monthly delivery,
    /// package follows, package burst — alongside the serial-only side
    /// effects (logins, organic posting, package payments). Every op is
    /// tagged with an [`OpUse`] so the post-apply walk can rebuild the
    /// controller statistics. Zero-quantity ops are routed too: they still
    /// attribute ground truth and push zero rows into the stats.
    fn route_day(
        &self,
        platform: &mut Platform,
        ledger: &mut PaymentLedger,
        day: Day,
        plans: &[MemberPlan],
    ) -> RoutedDay {
        let mut routed = RoutedDay::default();
        let service = Some(self.config.service);
        for plan in plans {
            let account = plan.account;
            if plan.login {
                platform.record_login(account);
            }
            let role = self.roles.get(&account).copied().unwrap_or_default();
            let asn = self.asn_for(account);

            let mut fresh_photo = None;
            if plan.fresh_photo {
                let home = platform.accounts.get(account).home_asn;
                let ip = platform.asns.ip_in(home, account.0);
                fresh_photo = Some(platform.post_media(account, home, ip));
            }

            // --- free tier -------------------------------------------------
            if plan.like_requests > 0 && self.config.catalog.free_likes_per_request > 0 {
                let raw = plan.like_requests * self.config.catalog.free_likes_per_request;
                let capped = apply_cap(raw, self.like_cap_for(account));
                let media = platform
                    .accounts
                    .latest_media_of(account)
                    .map(|m| (m, self.config.catalog.free_likes_per_hour_cap.min(capped)));
                routed.ops.push(DepositOp {
                    target: account,
                    ty: ActionType::Like,
                    requested: capped,
                    asn,
                    service,
                    media,
                });
                routed.uses.push(OpUse::FreeLike { raw, capped });
                routed.ads_today +=
                    u64::from(plan.like_requests) * u64::from(plan.like_ads_each);
            }
            if plan.follow_requests > 0 && self.config.catalog.free_follows_per_request > 0 {
                let raw = plan.follow_requests * self.config.catalog.free_follows_per_request;
                let capped = apply_cap(raw, self.follow_cap_for(account));
                routed.ops.push(DepositOp {
                    target: account,
                    ty: ActionType::Follow,
                    requested: capped,
                    asn,
                    service,
                    media: None,
                });
                routed.uses.push(OpUse::FreeFollow { raw, capped });
                routed.ads_today +=
                    u64::from(plan.follow_requests) * u64::from(plan.follow_ads_each);
            }
            if plan.comment_requests > 0 {
                let n = plan.comment_requests * 5;
                let media = platform.accounts.latest_media_of(account).map(|m| (m, n));
                routed.ops.push(DepositOp {
                    target: account,
                    ty: ActionType::Comment,
                    requested: n,
                    asn,
                    service,
                    media,
                });
                routed.uses.push(OpUse::Comment);
            }

            // --- paid monthly tier ----------------------------------------
            if let (Some(_tier), Some(photo)) = (role.monthly_tier, fresh_photo) {
                let raw = plan.monthly_qty;
                let capped = apply_cap(raw, self.like_cap_for(account));
                let media = Some((photo, self.config.paid_delivery_rate_per_hour.min(capped)));
                routed.ops.push(DepositOp {
                    target: account,
                    ty: ActionType::Like,
                    requested: capped,
                    asn,
                    service,
                    media,
                });
                routed.uses.push(OpUse::MonthlyLike { raw, capped });
            }

            // --- Followersgratis packages ----------------------------------
            if let Some(pkg_idx) = plan.package {
                let pkg = self.config.followersgratis_packages[pkg_idx].clone();
                ledger.record(Payment {
                    day,
                    account,
                    service: self.config.service,
                    cents: pkg.cents,
                    kind: PaymentKind::Package,
                });
                if pkg.follows > 0 {
                    routed.ops.push(DepositOp {
                        target: account,
                        ty: ActionType::Follow,
                        requested: pkg.follows,
                        asn,
                        service,
                        media: None,
                    });
                    routed.uses.push(OpUse::PackageFollow {
                        follows: pkg.follows,
                    });
                }
                if pkg.likes > 0 {
                    let capped = apply_cap(pkg.likes, self.like_cap_for(account));
                    let media = platform
                        .accounts
                        .latest_media_of(account)
                        .map(|m| (m, self.config.paid_delivery_rate_per_hour.max(capped / 4)));
                    routed.ops.push(DepositOp {
                        target: account,
                        ty: ActionType::Like,
                        requested: capped,
                        asn,
                        service,
                        media,
                    });
                    routed.uses.push(OpUse::PackageBurst { likes: pkg.likes });
                }
            }
        }
        routed
    }

    /// Deliver a one-time like burst to the customer's latest photo at the
    /// paid (above-free-cap) hourly rate.
    fn deliver_burst(&mut self, platform: &mut Platform, account: AccountId, likes: u32) {
        let asn = self.asn_for(account);
        let capped = apply_cap(likes, self.like_cap_for(account));
        let media = platform
            .accounts
            .latest_media_of(account)
            .map(|m| (m, self.config.paid_delivery_rate_per_hour.max(capped / 4)));
        platform.deposit_inbound_enforced(account, ActionType::Like, capped, asn, Some(self.config.service), media);
    }

    /// Current self-imposed like-delivery cap for a recipient (only once
    /// blocked-like detection is live).
    fn like_cap_for(&self, account: AccountId) -> Option<f64> {
        if !self.capability[0] {
            return None;
        }
        self.per_recipient_like.get(&account).and_then(|c| c.cap())
    }

    /// Current self-imposed follow-delivery cap for a recipient.
    fn follow_cap_for(&self, account: AccountId) -> Option<f64> {
        if !self.capability[1] {
            return None;
        }
        self.per_recipient_follow
            .get(&account)
            .and_then(|c| c.cap())
    }

    fn adapt(&mut self, day: Day, stats: [DayStats; 2]) {
        let adapt_cfgs = [self.config.adapt_likes, self.config.adapt_follows];
        for (i, s) in stats.iter().enumerate() {
            if s.attempted == 0 {
                continue;
            }
            // Detection capability per type, behind the implementation lag.
            let failing = s.visible_failed > 0
                && (s.visible_failed as f64) > 0.002 * s.attempted as f64;
            if failing {
                self.failure_streak[i] += 1;
            } else {
                self.failure_streak[i] = 0;
            }
            if self.failure_streak[i] > adapt_cfgs[i].detection_lag_days {
                self.capability[i] = true;
            }
            // Service-level controller (aggregate visibility / reporting).
            let median = median_u32(&s.success_per_recipient);
            let controller = if i == 0 {
                &mut self.like_controller
            } else {
                &mut self.follow_controller
            };
            controller.observe(DayObservation {
                day,
                attempted: s.attempted,
                visible_failed: s.visible_failed,
                median_success_per_account: median,
            });
            // Per-recipient controllers, once detection is live.
            if self.capability[i] {
                let per = if i == 0 {
                    &mut self.per_recipient_like
                } else {
                    &mut self.per_recipient_follow
                };
                let cfg = AdaptationConfig {
                    detection_lag_days: 0,
                    migrate_after_days: u32::MAX,
                    ..adapt_cfgs[i]
                };
                // footsteps-lint: allow(nondet-iter) — per-account controllers update independently of visit order
                for (&account, &(attempted, blocked, delivered)) in &s.per_recipient {
                    if blocked == 0 && !per.contains_key(&account) {
                        continue;
                    }
                    per.entry(account)
                        .or_insert_with(|| VolumeController::new(cfg))
                        .observe(DayObservation {
                            day,
                            attempted,
                            visible_failed: blocked,
                            median_success_per_account: f64::from(delivered),
                        });
                }
            }
        }
        // Relocation pressure: most like recipients capped for a sustained
        // stretch. Hublaagram cannot deliver even its cheapest paid product
        // under those caps.
        let engaged = stats[0].per_recipient.len().max(1);
        let throttled = self
            .per_recipient_like
            // footsteps-lint: allow(nondet-iter) — order-insensitive count of throttled controllers
            .values()
            .filter(|c| c.is_throttled())
            .count();
        if self.capability[0] && throttled * 10 >= engaged * 3 {
            self.heavy_throttle_days += 1;
        } else {
            self.heavy_throttle_days = 0;
        }
        if self.heavy_throttle_days >= self.config.adapt_likes.migrate_after_days {
            // Relocating means standing up a *fresh* set of active networks.
            if self.asn_idx + 2 * self.active_asns <= self.asn_rotation.len() {
                self.asn_idx += self.active_asns;
                self.migrations += 1;
                self.per_recipient_like.clear();
                self.per_recipient_follow.clear();
                self.failure_streak = [0; 2];
                self.heavy_throttle_days = 0;
                self.exhausted_blocked_days = 0;
            } else {
                // Nowhere left to go: count the days of unsustainable
                // operation; "unable to produce sustainable unblocked
                // actions, [Hublaagram] stopped accepting customer payments
                // by listing all offered services as out of stock" (§6.4).
                self.exhausted_blocked_days += 1;
                if !self.out_of_stock && self.exhausted_blocked_days >= 14 {
                    self.out_of_stock = true;
                    self.out_of_stock_on = Some(day);
                }
            }
        }
    }
}

/// Clamp a requested per-recipient quantity to the controller's cap.
fn apply_cap(requested: u32, cap: Option<f64>) -> u32 {
    match cap {
        Some(c) => requested.min(c.max(0.0) as u32),
        None => requested,
    }
}

/// Median of a u32 slice as f64 (0 for empty).
fn median_u32(v: &[u32]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut sorted = v.to_vec();
    sorted.sort_unstable();
    f64::from(sorted[sorted.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use rand::SeedableRng;

    fn world() -> (Platform, ResidentialIndex, CollusionService, PaymentLedger) {
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 50_000);
        }
        let primary = reg.register("hg-host", Country::Gb, AsnKind::Hosting, 10_000);
        let backup = reg.register("hg-host-2", Country::Us, AsnKind::Hosting, 10_000);
        let residential = ResidentialIndex::build(&reg);
        let platform = Platform::new(
            reg,
            PlatformConfig::default(),
            SmallRng::seed_from_u64(200),
        );
        let mut cfg = presets::hublaagram_config(0.001);
        cfg.lifecycle.arrival_rate = 5.0;
        cfg.lifecycle.initial_long_term = 60;
        // Make paid roles common enough to exercise in a small test.
        cfg.payer_profile.p_no_outbound = 0.1;
        cfg.payer_profile.p_monthly = 0.15;
        let svc = CollusionService::new(cfg, vec![primary, backup], SmallRng::seed_from_u64(201));
        (platform, residential, svc, PaymentLedger::new())
    }

    #[test]
    fn members_receive_and_produce_actions() {
        let (mut platform, residential, mut svc, mut ledger) = world();
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, &mut ledger, Day(0));
        for d in 0..5u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        // Pick a non-exempt customer and check both directions.
        let member = svc
            .customers()
            .iter()
            .find(|c| !svc.roles[&c.account].no_outbound)
            .unwrap()
            .account;
        let inbound = platform.log.total_inbound(member, ActionType::Like, Day(0), Day(5))
            + platform.log.total_inbound(member, ActionType::Follow, Day(0), Day(5));
        let outbound = platform.log.total_outbound(member, ActionType::Like, Day(0), Day(5))
            + platform.log.total_outbound(member, ActionType::Follow, Day(0), Day(5));
        assert!(inbound > 0, "member received actions");
        assert!(outbound > 0, "member's account was used for outbound");
    }

    #[test]
    fn no_outbound_customers_never_produce_actions() {
        let (mut platform, residential, mut svc, mut ledger) = world();
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, &mut ledger, Day(0));
        for d in 0..10u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        let exempt: Vec<AccountId> = svc
            .roles
            .iter()
            .filter(|(_, r)| r.no_outbound)
            .map(|(&a, _)| a)
            .collect();
        assert!(!exempt.is_empty(), "some customers paid the exemption");
        for a in exempt {
            for ty in [ActionType::Like, ActionType::Follow, ActionType::Comment] {
                assert_eq!(
                    platform.log.total_outbound(a, ty, Day(0), Day(10)),
                    0,
                    "{a} must stay outbound-silent"
                );
            }
        }
        assert!(
            ledger.gross_kind_in(ServiceId::Hublaagram, PaymentKind::NoOutbound, Day(0), Day(10))
                > 0
        );
    }

    #[test]
    fn monthly_tier_photos_get_paid_rate_likes() {
        let (mut platform, residential, mut svc, mut ledger) = world();
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, &mut ledger, Day(0));
        for d in 0..15u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        // Find a day-log photo burst exceeding the 160/h free cap.
        let mut paid_rate_seen = false;
        for d in 0..15u32 {
            if let Some(log) = platform.log.day(Day(d)) {
                if log.photo_likes.values().any(|p| p.max_hourly > 160) {
                    paid_rate_seen = true;
                    break;
                }
            }
        }
        assert!(paid_rate_seen, "paid deliveries exceed the free hourly cap");
        assert!(
            ledger.gross_kind_in(
                ServiceId::Hublaagram,
                PaymentKind::MonthlyLikes,
                Day(0),
                Day(15)
            ) > 0
        );
    }

    #[test]
    fn free_deliveries_respect_hourly_cap_and_fund_ads() {
        let (mut platform, residential, mut svc, mut ledger) = world();
        // Disable paid products entirely: all likes are free-tier.
        svc.config.payer_profile = PayerProfile {
            p_no_outbound: 0.0,
            p_monthly: 0.0,
            monthly_tier_weights: [0.0; 4],
            p_one_time: 0.0,
        };
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, &mut ledger, Day(0));
        for d in 0..5u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        for d in 0..5u32 {
            if let Some(log) = platform.log.day(Day(d)) {
                for p in log.photo_likes.values() {
                    assert!(p.max_hourly <= 160, "free delivery rate {}", p.max_hourly);
                }
            }
        }
        assert!(svc.ads_impressions() > 0);
        assert!(
            ledger.gross_kind_in(ServiceId::Hublaagram, PaymentKind::Ads, Day(0), Day(5)) > 0
        );
    }

    #[test]
    fn like_blocking_is_answered_after_the_lag() {
        #[derive(Debug)]
        struct BlockInboundLikes;
        impl EnforcementPolicy for BlockInboundLikes {
            fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
                if ctx.action == ActionType::Like && ctx.direction == Direction::Inbound {
                    EnforcementDecision::threshold(
                        ctx.requested,
                        ctx.prior_today,
                        40,
                        Countermeasure::Block,
                    )
                } else {
                    EnforcementDecision::allow_all(ctx.requested)
                }
            }
        }
        let (mut platform, residential, mut svc, mut ledger) = world();
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, &mut ledger, Day(0));
        platform.set_policy(Box::new(BlockInboundLikes));
        let mut reacted_on = None;
        for d in 0..40u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
            if reacted_on.is_none() && svc.likes_throttled() {
                reacted_on = Some(d);
            }
        }
        let reacted = reacted_on.expect("Hublaagram eventually reacts");
        assert!(
            (20..=26).contains(&reacted),
            "reaction after the ~3-week implementation lag, got day {reacted}"
        );
    }

    #[test]
    fn honeypot_accounts_are_used_for_outbound_of_requested_type() {
        let (mut platform, residential, mut svc, mut ledger) = world();
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, &mut ledger, Day(0));
        let hp = platform.accounts.create(
            SimTime::EPOCH,
            ProfileKind::HoneypotEmpty,
            Country::Us,
            AsnId(0),
            0,
            0,
            ReciprocityProfile::SILENT,
        );
        platform.graph.track(hp);
        platform.log.track_events_for(hp);
        // The honeypot needs a photo for like deliveries.
        let ip = platform.asns.ip_in(AsnId(0), 1);
        platform.post_media(hp, AsnId(0), ip);
        svc.enroll_honeypot(hp, ActionType::Like, None, Day(0), &mut ledger);
        for d in 0..6u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        let inbound = platform.log.total_inbound(hp, ActionType::Like, Day(0), Day(6));
        assert!(inbound > 0, "honeypot received free likes");
        let outbound_events = platform
            .log
            .events_in(Day(0), Day(6), |e| e.actor == hp)
            .count();
        assert!(outbound_events > 0, "honeypot account used in the network");
    }

    #[test]
    fn free_requests_are_bounded_by_the_cooldown() {
        let (mut platform, residential, mut svc, mut ledger) = world();
        // An absurdly eager honeypot cannot exceed the cooldown-implied
        // daily request ceiling (48 for the 30-minute timeout).
        svc.config.honeypot_free_requests_per_day = 500.0;
        platform.begin_day(Day(0));
        let hp = platform.accounts.create(
            SimTime::EPOCH,
            ProfileKind::HoneypotEmpty,
            Country::Us,
            AsnId(0),
            0,
            0,
            ReciprocityProfile::SILENT,
        );
        let ip = platform.asns.ip_in(AsnId(0), 1);
        platform.post_media(hp, AsnId(0), ip);
        svc.enroll_honeypot(hp, ActionType::Like, None, Day(0), &mut ledger);
        svc.run_day(&mut platform, &residential, &mut ledger, Day(0));
        let inbound = platform.log.total_inbound(hp, ActionType::Like, Day(0), Day(1));
        let ceiling = u64::from(48 * svc.config.catalog.free_likes_per_request);
        assert!(inbound <= ceiling, "inbound {inbound} > ceiling {ceiling}");
        assert!(inbound >= ceiling / 2, "the eager honeypot should hit the cap");
    }

    #[test]
    fn caps_are_scoped_to_blocked_recipients() {
        // Only recipients whose deliveries visibly fail get capped; the
        // rest of the membership keeps full service (this is why the narrow
        // 10%-bin experiment still provokes adaptation for exactly that 10%).
        #[derive(Debug)]
        struct BlockOddInboundLikes;
        impl EnforcementPolicy for BlockOddInboundLikes {
            fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
                if ctx.action == ActionType::Like
                    && ctx.direction == Direction::Inbound
                    && ctx.actor.0 % 2 == 1
                {
                    EnforcementDecision::threshold(
                        ctx.requested,
                        ctx.prior_today,
                        30,
                        Countermeasure::Block,
                    )
                } else {
                    EnforcementDecision::allow_all(ctx.requested)
                }
            }
        }
        let (mut platform, residential, mut svc, mut ledger) = world();
        svc.config.adapt_likes.detection_lag_days = 0;
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, &mut ledger, Day(0));
        platform.set_policy(Box::new(BlockOddInboundLikes));
        for d in 0..12u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        assert!(svc.like_detection_active(), "failures unlocked detection");
        let mut capped_odd = 0;
        let mut capped_even = 0;
        for c in svc.customers().iter() {
            if svc.recipient_like_cap(c.account).is_some() {
                if c.account.0 % 2 == 1 {
                    capped_odd += 1;
                } else {
                    capped_even += 1;
                }
            }
        }
        assert!(capped_odd > 5, "blocked recipients adapted: {capped_odd}");
        assert_eq!(capped_even, 0, "untouched recipients keep full volume");
    }

    #[test]
    fn exhausted_rotation_under_blocking_goes_out_of_stock() {
        #[derive(Debug)]
        struct BlockAllInbound;
        impl EnforcementPolicy for BlockAllInbound {
            fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
                if ctx.direction == Direction::Inbound {
                    EnforcementDecision::threshold(
                        ctx.requested,
                        ctx.prior_today,
                        5,
                        Countermeasure::Block,
                    )
                } else {
                    EnforcementDecision::allow_all(ctx.requested)
                }
            }
        }
        let (mut platform, residential, mut svc, mut ledger) = world();
        // Aggressive tuning so the epilogue plays out in test time.
        svc.config.adapt_likes.detection_lag_days = 0;
        svc.config.adapt_likes.migrate_after_days = 5;
        svc.like_controller = VolumeController::new(svc.config.adapt_likes);
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, &mut ledger, Day(0));
        platform.set_policy(Box::new(BlockAllInbound));
        for d in 0..80u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
            if svc.is_out_of_stock() {
                break;
            }
        }
        assert!(svc.is_out_of_stock(), "service gave up selling");
        assert!(svc.migrations() >= 1, "it migrated before giving up");
        let when = svc.out_of_stock_on().unwrap();
        // No payments accepted after that day (ads excluded).
        let paid_after: u64 = ledger
            .payments()
            .iter()
            .filter(|p| p.day > when && p.kind != PaymentKind::Ads)
            .map(|p| p.cents)
            .sum();
        assert_eq!(paid_after, 0);
    }
}
