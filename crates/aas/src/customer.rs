//! Customer lifecycle shared by both service archetypes.
//!
//! The paper's business analysis (§5.1) revolves around a handful of
//! lifecycle quantities: distinct customers over a window, the long- vs
//! short-term split, the rate at which new users convert to long-term
//! customers, and birth/death dynamics of the long-term stock. This module
//! models a customer as an enrollment with a planned *engagement span*
//! (short-term users try the free tier and leave; long-term users stay for a
//! geometrically-distributed number of days) plus payment state maintained
//! by the engines.

use footsteps_sim::prelude::{AccountId, ActionType, Day};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Payment state of a customer within a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PayState {
    /// Using a free trial that ends at the start of `ends`.
    Trial {
        /// First day on which the trial is no longer active.
        ends: Day,
    },
    /// Paid through the start of `until`.
    Paid {
        /// First day no longer covered by the last payment.
        until: Day,
    },
    /// Using free service indefinitely (collusion networks).
    Free,
    /// No longer using the service.
    Lapsed,
}

/// One customer of one service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Customer {
    /// The customer's platform account.
    pub account: AccountId,
    /// Enrollment day.
    pub enrolled: Day,
    /// Planned last day of engagement (exclusive): the day the user stops
    /// requesting service. Determined at enrollment from the long/short-term
    /// draw; engines may end engagement earlier (e.g. a lapsed subscription).
    pub planned_end: Day,
    /// Whether the enrollment draw made this a long-term user.
    pub long_term: bool,
    /// Current payment state.
    pub pay: PayState,
    /// Whether the customer has ever paid.
    pub ever_paid: bool,
    /// Action types the customer requested (all honeypots request exactly
    /// one; regular customers request the service's standard mix).
    pub requested: Vec<ActionType>,
    /// Personal activity multiplier applied to the service's base volumes
    /// (log-normal around 1).
    pub volume_multiplier: f64,
    /// True for honeypot enrollments (driven through the event path).
    pub honeypot: bool,
}

impl Customer {
    /// Whether the customer is engaged (requesting service) on `day`.
    pub fn engaged_on(&self, day: Day) -> bool {
        self.pay != PayState::Lapsed && day >= self.enrolled && day < self.planned_end
    }

    /// Days of engagement so far at `day` (inclusive of enrollment day).
    pub fn tenure_at(&self, day: Day) -> u32 {
        day.days_since(self.enrolled) + 1
    }
}

/// Enrollment-time population parameters for a service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifecycleParams {
    /// Mean new enrollments per day (Poisson).
    pub arrival_rate: f64,
    /// Probability a new enrollment becomes a long-term customer.
    pub p_long_term: f64,
    /// Mean engagement length of long-term customers, days (geometric).
    pub long_term_mean_days: f64,
    /// Engagement length of short-term customers, days (they try the
    /// service briefly and leave).
    pub short_term_days: u32,
    /// Long-term customers already active when the measurement window
    /// opens (the pre-existing stock).
    pub initial_long_term: u32,
}

impl LifecycleParams {
    /// Draw an engagement span for a new enrollment starting on `day`.
    /// Returns `(long_term, planned_end)`.
    pub fn draw_span(&self, day: Day, rng: &mut impl Rng) -> (bool, Day) {
        if rng.gen::<f64>() < self.p_long_term {
            let len = sample_geometric_days(self.long_term_mean_days, rng)
                .max(self.short_term_days + 1);
            (true, day.plus(len))
        } else {
            (false, day.plus(self.short_term_days.max(1)))
        }
    }
}

/// Sample a geometric "days engaged" with the given mean (at least 1).
pub fn sample_geometric_days(mean: f64, rng: &mut impl Rng) -> u32 {
    debug_assert!(mean >= 1.0);
    let p = 1.0 / mean;
    // Inverse CDF of the geometric distribution on {1, 2, ...}.
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let k = (u.ln() / (1.0 - p).ln()).ceil();
    k.clamp(1.0, 100_000.0) as u32
}

/// Sample Poisson(λ): Knuth's method for small λ, normal approximation for
/// large λ (arrival processes reach λ≈90/day for Hublaagram at scale).
pub fn sample_poisson(rng: &mut impl Rng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (lambda + lambda.sqrt() * z).round().max(0.0) as u32
    }
}

/// The customer roster of one service.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CustomerBook {
    customers: Vec<Customer>,
    by_account: HashMap<AccountId, usize>,
}

impl CustomerBook {
    /// Empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a customer.
    ///
    /// # Panics
    /// Panics if the account is already enrolled (services key customers by
    /// credentials; one account cannot enroll twice in the same service).
    pub fn enroll(&mut self, customer: Customer) {
        let prev = self.by_account.insert(customer.account, self.customers.len());
        assert!(prev.is_none(), "{} already enrolled", customer.account);
        self.customers.push(customer);
    }

    /// Number of customers ever enrolled.
    pub fn len(&self) -> usize {
        self.customers.len()
    }

    /// True if no customers exist.
    pub fn is_empty(&self) -> bool {
        self.customers.is_empty()
    }

    /// All customers.
    pub fn iter(&self) -> impl Iterator<Item = &Customer> {
        self.customers.iter()
    }

    /// All customers, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Customer> {
        self.customers.iter_mut()
    }

    /// Look up a customer by account.
    pub fn get(&self, account: AccountId) -> Option<&Customer> {
        self.by_account.get(&account).map(|&i| &self.customers[i])
    }

    /// Look up a customer by account, mutably.
    pub fn get_mut(&mut self, account: AccountId) -> Option<&mut Customer> {
        self.by_account
            .get(&account)
            .map(|&i| &mut self.customers[i])
    }

    /// Customers engaged on `day`.
    pub fn engaged_on(&self, day: Day) -> impl Iterator<Item = &Customer> {
        self.customers.iter().filter(move |c| c.engaged_on(day))
    }

    /// Count of customers engaged on `day`.
    pub fn engaged_count(&self, day: Day) -> usize {
        self.engaged_on(day).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn customer(account: u32, enrolled: u32, end: u32) -> Customer {
        Customer {
            account: AccountId(account),
            enrolled: Day(enrolled),
            planned_end: Day(end),
            long_term: true,
            pay: PayState::Free,
            ever_paid: false,
            requested: vec![ActionType::Like],
            volume_multiplier: 1.0,
            honeypot: false,
        }
    }

    #[test]
    fn engagement_window_is_half_open() {
        let c = customer(1, 5, 10);
        assert!(!c.engaged_on(Day(4)));
        assert!(c.engaged_on(Day(5)));
        assert!(c.engaged_on(Day(9)));
        assert!(!c.engaged_on(Day(10)));
        assert_eq!(c.tenure_at(Day(9)), 5);
    }

    #[test]
    fn lapsed_customers_are_never_engaged() {
        let mut c = customer(1, 0, 100);
        c.pay = PayState::Lapsed;
        assert!(!c.engaged_on(Day(50)));
    }

    #[test]
    fn book_enrollment_and_lookup() {
        let mut b = CustomerBook::new();
        b.enroll(customer(1, 0, 10));
        b.enroll(customer(2, 3, 5));
        assert_eq!(b.len(), 2);
        assert!(b.get(AccountId(1)).is_some());
        assert!(b.get(AccountId(3)).is_none());
        assert_eq!(b.engaged_count(Day(4)), 2);
        assert_eq!(b.engaged_count(Day(7)), 1);
    }

    #[test]
    #[should_panic(expected = "already enrolled")]
    fn double_enrollment_rejected() {
        let mut b = CustomerBook::new();
        b.enroll(customer(1, 0, 10));
        b.enroll(customer(1, 2, 12));
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| u64::from(sample_geometric_days(40.0, &mut rng)))
            .sum();
        let mean = total as f64 / f64::from(n);
        assert!((mean - 40.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        let mut rng = SmallRng::seed_from_u64(4);
        for &lambda in &[2.5f64, 90.0] {
            let n = 20_000;
            let total: u64 = (0..n)
                .map(|_| u64::from(sample_poisson(&mut rng, lambda)))
                .sum();
            let mean = total as f64 / f64::from(n);
            assert!(
                (mean - lambda).abs() / lambda < 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn span_draws_respect_classes() {
        let params = LifecycleParams {
            arrival_rate: 1.0,
            p_long_term: 0.5,
            long_term_mean_days: 60.0,
            short_term_days: 7,
            initial_long_term: 0,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let mut lt_lens = Vec::new();
        let mut st_lens = Vec::new();
        for _ in 0..2_000 {
            let (lt, end) = params.draw_span(Day(10), &mut rng);
            let len = end.days_since(Day(10));
            if lt {
                assert!(len > 7, "long-term spans exceed the short-term stay");
                lt_lens.push(len);
            } else {
                assert_eq!(len, 7);
                st_lens.push(len);
            }
        }
        assert!(!lt_lens.is_empty() && !st_lens.is_empty());
        let lt_share = lt_lens.len() as f64 / 2_000.0;
        assert!((lt_share - 0.5).abs() < 0.05);
    }
}
