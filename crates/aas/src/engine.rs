//! The parallel decision phase of the three-phase daily engine.
//!
//! Each simulated service-day is split in three (DESIGN.md §4):
//!
//! 1. a **decision phase** that computes, for every engaged customer, what
//!    the service will do today (logins, batch sizes, IP draws, purchase
//!    rolls). Decisions read shared service state but mutate nothing, and
//!    every random draw comes from a per-customer stream derived from
//!    `(scenario seed, service stream label, account id, day)` via
//!    [`footsteps_sim::rng::decision_rng`]. Because no decision depends on
//!    processing order, this phase shards freely across worker threads;
//! 2. a serial **route phase** that walks the plans in roster order and
//!    performs the order-sensitive serial work: for the reciprocity engines
//!    this is the whole outbound submission ladder; for the collusion
//!    engines it flattens the plans into a deterministic sequence of
//!    [`footsteps_sim::prelude::DepositOp`]s (plus logins, posts, payments);
//! 3. an **apply phase** that executes the routed deposit ops, sharded by
//!    *target account* over dense-ID arena ranges
//!    ([`footsteps_sim::platform::Platform::apply_deposits_sharded`]). Shard
//!    workers draw no randomness and mutate only state they own; a serial
//!    merge sweep folds their deltas back in a canonical order, so results
//!    stay byte-identical for any thread count.
//!
//! [`plan_parallel`] is the decision-phase harness both service engines use:
//! it fans the roster out over scoped worker threads in contiguous shards
//! and merges the per-shard plans back **in shard index order**, so the
//! output is the roster order regardless of which worker finished first —
//! the property that makes results byte-identical for any thread count.
//!
//! Observability rides the same contract: engines record plan-count metrics
//! (`aas.<service>.engaged`, `aas.<service>.planned_*`) **from the merged
//! list only**, never per worker, so the metrics snapshot is identical for
//! any `FOOTSTEPS_THREADS`. Decision/apply wall-clock goes to the timings
//! section, which is quarantined from deterministic output by design.

use footsteps_obs::{Stopwatch, WorkerSpan};

/// Plan every item of `items`, using up to `threads` scoped worker threads.
///
/// `plan` must be a pure function of the item and shared state (it runs
/// concurrently on borrowed `&items`). The returned plans are in `items`
/// order for every `threads` value, including 1 (which plans inline without
/// spawning).
pub fn plan_parallel<T, P, F>(items: &[T], threads: usize, plan: F) -> Vec<P>
where
    T: Sync,
    P: Send,
    F: Fn(&T) -> P + Sync,
{
    plan_parallel_timed(items, threads, plan).0
}

/// [`plan_parallel`] plus per-lane wall-clock intervals for the span tree.
///
/// Each worker copies a region [`Stopwatch`] started at entry and reports
/// its busy interval as offsets against it; the serial caller grafts the
/// lanes onto the span tree with `Timings::attach_workers`. Lane index =
/// shard index, so the lane *set* is as deterministic as the shard split
/// (durations, of course, are not). The single-thread path reports one
/// inline lane 0 so traces keep the same shape at `FOOTSTEPS_THREADS=1`.
pub fn plan_parallel_timed<T, P, F>(
    items: &[T],
    threads: usize,
    plan: F,
) -> (Vec<P>, Vec<WorkerSpan>)
where
    T: Sync,
    P: Send,
    F: Fn(&T) -> P + Sync,
{
    let region = Stopwatch::start();
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        let out: Vec<P> = items.iter().map(&plan).collect();
        let lanes = if items.is_empty() {
            Vec::new()
        } else {
            vec![WorkerSpan { lane: 0, start_secs: 0.0, end_secs: region.elapsed_secs() }]
        };
        return (out, lanes);
    }
    let chunk = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    let mut lanes = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(lane, shard)| {
                let plan = &plan;
                s.spawn(move || {
                    let start_secs = region.elapsed_secs();
                    let plans = shard.iter().map(plan).collect::<Vec<P>>();
                    let span = WorkerSpan {
                        lane: lane as u32,
                        start_secs,
                        end_secs: region.elapsed_secs(),
                    };
                    (plans, span)
                })
            })
            .collect();
        // Joining in spawn order is the merge: shard k's plans land at
        // offset k * chunk no matter when its worker finishes.
        for h in handles {
            // footsteps-lint: allow(panic-in-shard) — serial join path; only re-raises a worker's own panic
            let (plans, span) = h.join().expect("decision worker panicked");
            out.extend(plans);
            lanes.push(span);
        }
    });
    (out, lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_item_order_for_any_thread_count() {
        let items: Vec<u32> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        for threads in [1, 2, 3, 7, 8, 64] {
            let got = plan_parallel(&items, threads, |&x| u64::from(x) * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn order_survives_out_of_order_completion() {
        // Make the first shard the slowest: if merge order followed
        // completion order, shard 0's plans would come last.
        let items: Vec<usize> = (0..64).collect();
        let got = plan_parallel(&items, 8, |&x| {
            if x < 8 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(got, items);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u8> = vec![0; 1000];
        let got = plan_parallel(&items, 8, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(got.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_roster_is_fine() {
        let got: Vec<u8> = plan_parallel(&[] as &[u8], 8, |&x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn timed_variant_reports_one_lane_per_shard_in_lane_order() {
        let items: Vec<u32> = (0..40).collect();
        for threads in [1usize, 2, 4, 8] {
            let (plans, lanes) = plan_parallel_timed(&items, threads, |&x| x + 1);
            assert_eq!(plans.len(), items.len(), "threads={threads}");
            assert_eq!(lanes.len(), threads, "threads={threads}");
            for (i, lane) in lanes.iter().enumerate() {
                assert_eq!(lane.lane as usize, i);
                assert!(lane.end_secs >= lane.start_secs);
                assert!(lane.start_secs >= 0.0);
            }
        }
        // Empty rosters attach no lanes (the caller records nothing).
        let (plans, lanes) = plan_parallel_timed(&[] as &[u8], 8, |&x| x);
        assert!(plans.is_empty());
        assert!(lanes.is_empty());
    }
}
