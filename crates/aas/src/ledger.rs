//! The services' ground-truth payment ledger.
//!
//! The paper could only *estimate* service revenue from observed activity
//! (§5.2). Our services actually collect payments, so the simulation keeps a
//! ground-truth ledger — which lets us do something the paper could not:
//! score the paper's estimation methodology against the truth
//! (EXPERIMENTS.md reports estimator vs. ledger side by side).

use crate::catalog::Cents;
use footsteps_sim::prelude::{AccountId, Day, ServiceId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Why a payment was made.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaymentKind {
    /// Reciprocity-service subscription for a block of days.
    Subscription,
    /// Hublaagram monthly likes-per-photo tier.
    MonthlyLikes,
    /// Hublaagram one-time like package for a single post.
    OneTimeLikes,
    /// Hublaagram lifetime no-outbound exemption.
    NoOutbound,
    /// Followersgratis package.
    Package,
    /// Advertising income (pop-unders shown to free users), recorded in
    /// aggregate per day with `account` set to the service's own sentinel.
    Ads,
}

/// One payment received by a service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Payment {
    /// Day the payment was received.
    pub day: Day,
    /// Paying customer account.
    pub account: AccountId,
    /// Service receiving the payment.
    pub service: ServiceId,
    /// Amount in cents.
    pub cents: Cents,
    /// What was purchased.
    pub kind: PaymentKind,
}

/// Append-only payment ledger shared by all services in a scenario.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PaymentLedger {
    payments: Vec<Payment>,
}

impl PaymentLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a payment.
    pub fn record(&mut self, payment: Payment) {
        self.payments.push(payment);
    }

    /// All payments, in arrival order.
    pub fn payments(&self) -> &[Payment] {
        &self.payments
    }

    /// Gross revenue of `service` over `[start, end)` days, in cents.
    pub fn gross_in(&self, service: ServiceId, start: Day, end: Day) -> Cents {
        self.payments
            .iter()
            .filter(|p| p.service == service && p.day >= start && p.day < end)
            .map(|p| p.cents)
            .sum()
    }

    /// Gross revenue of `service` restricted to one payment kind.
    pub fn gross_kind_in(
        &self,
        service: ServiceId,
        kind: PaymentKind,
        start: Day,
        end: Day,
    ) -> Cents {
        self.payments
            .iter()
            .filter(|p| {
                p.service == service && p.kind == kind && p.day >= start && p.day < end
            })
            .map(|p| p.cents)
            .sum()
    }

    /// Number of distinct paying accounts of `service` in `[start, end)`,
    /// excluding ad income sentinels.
    pub fn distinct_payers_in(&self, service: ServiceId, start: Day, end: Day) -> usize {
        self.payments
            .iter()
            .filter(|p| {
                p.service == service
                    && p.kind != PaymentKind::Ads
                    && p.day >= start
                    && p.day < end
            })
            .map(|p| p.account)
            .collect::<HashSet<_>>()
            .len()
    }

    /// Split `service`'s revenue in `[start, end)` into (new, preexisting)
    /// cents, where a payment is "new" if the account never paid this
    /// service before `start` (Table 10's breakdown). Ad income is excluded.
    pub fn new_vs_preexisting(
        &self,
        service: ServiceId,
        start: Day,
        end: Day,
    ) -> (Cents, Cents) {
        let prior: HashSet<AccountId> = self
            .payments
            .iter()
            .filter(|p| p.service == service && p.kind != PaymentKind::Ads && p.day < start)
            .map(|p| p.account)
            .collect();
        let mut new = 0;
        let mut preexisting = 0;
        for p in self
            .payments
            .iter()
            .filter(|p| p.service == service && p.kind != PaymentKind::Ads)
            .filter(|p| p.day >= start && p.day < end)
        {
            if prior.contains(&p.account) {
                preexisting += p.cents;
            } else {
                new += p.cents;
            }
        }
        (new, preexisting)
    }

    /// Accounts of `service` whose first-ever payment falls in `[start, end)`.
    pub fn first_time_payers_in(&self, service: ServiceId, start: Day, end: Day) -> usize {
        let mut seen: HashSet<AccountId> = HashSet::new();
        let mut count = 0;
        // Ledger is append-only and recorded in day order by construction of
        // the engines, but sort defensively for correctness.
        let mut sorted: Vec<&Payment> = self
            .payments
            .iter()
            .filter(|p| p.service == service && p.kind != PaymentKind::Ads)
            .collect();
        sorted.sort_by_key(|p| p.day);
        for p in sorted {
            if seen.insert(p.account) && p.day >= start && p.day < end {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pay(day: u32, account: u32, cents: Cents, kind: PaymentKind) -> Payment {
        Payment {
            day: Day(day),
            account: AccountId(account),
            service: ServiceId::Boostgram,
            cents,
            kind,
        }
    }

    #[test]
    fn gross_revenue_windows() {
        let mut l = PaymentLedger::new();
        l.record(pay(0, 1, 9_900, PaymentKind::Subscription));
        l.record(pay(29, 2, 9_900, PaymentKind::Subscription));
        l.record(pay(30, 1, 9_900, PaymentKind::Subscription));
        assert_eq!(l.gross_in(ServiceId::Boostgram, Day(0), Day(30)), 19_800);
        assert_eq!(l.gross_in(ServiceId::Boostgram, Day(30), Day(60)), 9_900);
        assert_eq!(l.gross_in(ServiceId::Hublaagram, Day(0), Day(60)), 0);
    }

    #[test]
    fn distinct_payers_dedupes_and_excludes_ads() {
        let mut l = PaymentLedger::new();
        l.record(pay(0, 1, 100, PaymentKind::Subscription));
        l.record(pay(5, 1, 100, PaymentKind::Subscription));
        l.record(pay(5, 2, 100, PaymentKind::Subscription));
        l.record(pay(5, 999, 100, PaymentKind::Ads));
        assert_eq!(l.distinct_payers_in(ServiceId::Boostgram, Day(0), Day(30)), 2);
    }

    #[test]
    fn new_vs_preexisting_split() {
        let mut l = PaymentLedger::new();
        // Account 1 paid before the window: preexisting.
        l.record(pay(0, 1, 100, PaymentKind::Subscription));
        l.record(pay(40, 1, 100, PaymentKind::Subscription));
        // Account 2's first payment is inside the window: new.
        l.record(pay(45, 2, 300, PaymentKind::Subscription));
        // Repeat payments *within* the window by a new payer still count as
        // new revenue: the split is by account history, not payment index.
        l.record(pay(50, 2, 300, PaymentKind::Subscription));
        let (new, pre) = l.new_vs_preexisting(ServiceId::Boostgram, Day(30), Day(60));
        assert_eq!(new, 600);
        assert_eq!(pre, 100);
    }

    #[test]
    fn first_time_payers_window() {
        let mut l = PaymentLedger::new();
        l.record(pay(10, 1, 100, PaymentKind::Subscription));
        l.record(pay(40, 1, 100, PaymentKind::Subscription));
        l.record(pay(45, 2, 100, PaymentKind::Subscription));
        assert_eq!(l.first_time_payers_in(ServiceId::Boostgram, Day(30), Day(60)), 1);
        assert_eq!(l.first_time_payers_in(ServiceId::Boostgram, Day(0), Day(30)), 1);
    }

    #[test]
    fn kind_filtered_gross() {
        let mut l = PaymentLedger::new();
        l.record(pay(0, 1, 1_500, PaymentKind::NoOutbound));
        l.record(pay(0, 2, 2_000, PaymentKind::MonthlyLikes));
        assert_eq!(
            l.gross_kind_in(ServiceId::Boostgram, PaymentKind::NoOutbound, Day(0), Day(30)),
            1_500
        );
    }
}
