//! # footsteps-aas
//!
//! Full implementations of the five Account Automation Services studied in
//! *Following Their Footsteps* (DeKoven et al., IMC 2018), running against
//! the `footsteps-sim` platform substrate:
//!
//! * **Reciprocity abuse** ([`reciprocity::ReciprocityService`]) — Instalex,
//!   Instazood and Boostgram drive outbound actions *from* customer accounts
//!   at curated targets, harvesting organic reciprocation (§3.1);
//! * **Collusion networks** ([`collusion::CollusionService`]) — Hublaagram
//!   and Followersgratis exchange inauthentic actions among their own
//!   membership (§3.2).
//!
//! Both engines implement the complete business (trials, subscriptions,
//! Hublaagram's tiered price list, the no-outbound exemption, pop-under ad
//! income) with a ground-truth [`ledger::PaymentLedger`], and the complete
//! adversary (block detection with backoff-and-probe volume control, the
//! three-week like-detection lag, ASN migration, the terminal "out of
//! stock" state — §6.3/§6.4). The advertised catalogs of Tables 1–4 and the
//! operating locations of Table 7 are encoded in [`catalog`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapt;
pub mod catalog;
pub mod collusion;
pub mod customer;
pub mod engine;
pub mod ledger;
pub mod presets;
pub mod reciprocity;
pub mod stats;
pub mod targeting;

pub use adapt::{AdaptationConfig, ControllerAction, DayObservation, VolumeController};
pub use catalog::{fmt_dollars, Cents};
pub use collusion::{CollusionConfig, CollusionService, PayerProfile, ADS_ACCOUNT};
pub use customer::{Customer, CustomerBook, LifecycleParams, PayState};
pub use engine::{plan_parallel, plan_parallel_timed};
pub use ledger::{Payment, PaymentKind, PaymentLedger};
pub use reciprocity::{DailyVolumes, ReciprocityConfig, ReciprocityService};
pub use targeting::{median_degrees, TargetingBias, TargetPool};
