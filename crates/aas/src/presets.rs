//! Calibrated per-service configurations.
//!
//! Each preset encodes the *paper-scale* operating parameters of one service
//! (customer arrival rates, pre-existing long-term stock, conversion rates,
//! daily action volumes, targeting bias, customer geography) and scales the
//! population-size parameters linearly by `scale` (1.0 = paper scale; the
//! default scenario runs at 0.01 per DESIGN.md's scale substitution).
//!
//! Sources for the numbers:
//! * customer totals and long-term splits — Table 6;
//! * conversion rates (Boostgram 12%, Insta* 21%, Hublaagram 37%) and
//!   growth/shrinkage — §5.1 "User Stability";
//! * action mixes driving the volume ratios — Table 11;
//! * customer geography — Figure 2 and Table 7;
//! * Hublaagram paid-tier composition — Table 9;
//! * Hublaagram like-block reaction lag (~3 weeks) — §6.3.

use crate::adapt::AdaptationConfig;
use crate::catalog::{hublaagram_catalog, reciprocity_pricing};
use crate::collusion::{CollusionConfig, PayerProfile};
use crate::customer::LifecycleParams;
use crate::reciprocity::{DailyVolumes, ReciprocityConfig};
use crate::targeting::TargetingBias;
use footsteps_sim::prelude::{Country, CountryMix, ServiceId};

/// Scale a paper-scale count, keeping at least `min`.
fn scaled(paper: f64, scale: f64, min: f64) -> f64 {
    (paper * scale).max(min)
}

/// Customer geography of the Insta* franchises: Russia-led with a very long
/// tail ("most of their users in the 'other' category", §5.1).
fn instastar_mix() -> CountryMix {
    CountryMix::new(vec![
        (Country::Ru, 0.24),
        (Country::Us, 0.07),
        (Country::Tr, 0.06),
        (Country::Br, 0.05),
        (Country::In, 0.04),
        (Country::De, 0.03),
        (Country::It, 0.03),
        (Country::Id, 0.02),
        (Country::Other, 0.46),
    ])
}

/// Boostgram's US-led customer base.
fn boostgram_mix() -> CountryMix {
    CountryMix::new(vec![
        (Country::Us, 0.38),
        (Country::Gb, 0.08),
        (Country::Br, 0.06),
        (Country::In, 0.05),
        (Country::Tr, 0.04),
        (Country::De, 0.03),
        (Country::It, 0.03),
        (Country::Other, 0.33),
    ])
}

/// Hublaagram's Indonesia-led customer base.
fn hublaagram_mix() -> CountryMix {
    CountryMix::new(vec![
        (Country::Id, 0.42),
        (Country::In, 0.09),
        (Country::Us, 0.06),
        (Country::Br, 0.05),
        (Country::Tr, 0.04),
        (Country::Ru, 0.02),
        (Country::Other, 0.32),
    ])
}

/// Instalex: RU-operated franchise, 7-day trial, $3.15/week.
///
/// The elevated `follow_for_like_strength` is the mechanistic stand-in for
/// Instalex's unexplained like→follow reciprocation anomaly (Table 5):
/// its pool curation over-selects users who follow back after a like.
pub fn instalex_config(scale: f64) -> ReciprocityConfig {
    ReciprocityConfig {
        service: ServiceId::Instalex,
        fingerprint_variant: 1,
        pricing: reciprocity_pricing(ServiceId::Instalex),
        volumes: DailyVolumes { like: 148.0, follow: 185.0, comment: 0.0, unfollow: 120.0 },
        lifecycle: LifecycleParams {
            arrival_rate: scaled(561.0, scale, 0.5),
            p_long_term: 0.21,
            long_term_mean_days: 102.0,
            short_term_days: 7,
            initial_long_term: scaled(10_338.0, scale, 4.0) as u32,
        },
        targeting: TargetingBias { tendency_strength: 2.5, follow_for_like_strength: 3.0 },
        // Smaller than the sibling services: the follow-from-like trait it
        // selects on exists in only ~12% of the population.
        pool_size: 1_500,
        adapt: AdaptationConfig::default(),
        customer_mix: instastar_mix(),
        honeypot_daily_actions: 110,
        service_login_prob: 0.03,
        follows_return_home: true,
    }
}

/// Instazood: the sibling franchise; advertises a 3-day trial but delivers 7
/// (§4.2), $0.34/day.
pub fn instazood_config(scale: f64) -> ReciprocityConfig {
    ReciprocityConfig {
        service: ServiceId::Instazood,
        fingerprint_variant: 2,
        pricing: reciprocity_pricing(ServiceId::Instazood),
        volumes: DailyVolumes { like: 148.0, follow: 185.0, comment: 54.0, unfollow: 120.0 },
        lifecycle: LifecycleParams {
            arrival_rate: scaled(561.0, scale, 0.5),
            p_long_term: 0.21,
            long_term_mean_days: 102.0,
            short_term_days: 7,
            initial_long_term: scaled(10_338.0, scale, 4.0) as u32,
        },
        targeting: TargetingBias { tendency_strength: 2.5, follow_for_like_strength: 0.0 },
        pool_size: 3_000,
        adapt: AdaptationConfig::default(),
        customer_mix: instastar_mix(),
        honeypot_daily_actions: 110,
        service_login_prob: 0.03,
        follows_return_home: true,
    }
}

/// Boostgram: US-operated, 3-day trial, $99/month — the premium offering.
pub fn boostgram_config(scale: f64) -> ReciprocityConfig {
    ReciprocityConfig {
        service: ServiceId::Boostgram,
        fingerprint_variant: 3,
        pricing: reciprocity_pricing(ServiceId::Boostgram),
        volumes: DailyVolumes { like: 320.0, follow: 96.0, comment: 0.0, unfollow: 84.0 },
        lifecycle: LifecycleParams {
            arrival_rate: scaled(100.8, scale, 0.3),
            p_long_term: 0.12,
            long_term_mean_days: 217.0,
            short_term_days: 3,
            initial_long_term: scaled(2_886.0, scale, 3.0) as u32,
        },
        targeting: TargetingBias { tendency_strength: 3.0, follow_for_like_strength: 0.0 },
        pool_size: 3_000,
        adapt: AdaptationConfig::default(),
        customer_mix: boostgram_mix(),
        honeypot_daily_actions: 110,
        service_login_prob: 0.03,
        follows_return_home: false,
    }
}

/// Hublaagram: the million-customer collusion network.
pub fn hublaagram_config(scale: f64) -> CollusionConfig {
    CollusionConfig {
        service: ServiceId::Hublaagram,
        fingerprint_variant: 4,
        catalog: hublaagram_catalog(),
        lifecycle: LifecycleParams {
            arrival_rate: scaled(8_941.0, scale, 2.0),
            p_long_term: 0.37,
            long_term_mean_days: 60.0,
            // Short-term Hublaagram users request service for ≤4 days.
            short_term_days: 3,
            initial_long_term: scaled(203_663.0, scale, 10.0) as u32,
        },
        customer_mix: hublaagram_mix(),
        // Blocking of likes took ~3 weeks to answer ("perhaps because it had
        // to implement blocked like detection", §6.3).
        adapt_likes: AdaptationConfig { detection_lag_days: 21, ..AdaptationConfig::default() },
        adapt_follows: AdaptationConfig::default(),
        // Free usage is occasional: the paper's ad-impression estimate
        // (5.77M/month over ~1M users at ~1 ad per free request) implies
        // roughly one free request per user every few days.
        free_like_requests_per_day: 0.30,
        free_follow_requests_per_day: 0.62,
        free_comment_requests_per_day: 0.18,
        payer_profile: PayerProfile {
            // Of ~1.0M active accounts: 24,420 no-outbound, ~31.9k monthly
            // tiers, 182 one-time (Table 9). `p_monthly` is conditioned on
            // the long-term draw (37%), so 0.086 × 0.37 ≈ 3.2% of actives.
            p_no_outbound: 0.0242,
            p_monthly: 0.086,
            monthly_tier_weights: [11_249.0, 18_009.0, 2_488.0, 155.0],
            p_one_time: 0.0002,
        },
        photos_per_day: 0.45,
        ip_pool_size: 4_000,
        honeypot_free_requests_per_day: 2.0,
        paid_delivery_rate_per_hour: 420,
        package_purchase_prob: 0.0,
        followersgratis_packages: Vec::new(),
    }
}

/// Followersgratis: the small collusion network already neutered by the
/// platform's IP-volume defense (it serves its traffic from a handful of
/// Indonesian addresses, §5).
pub fn followersgratis_config(scale: f64) -> CollusionConfig {
    CollusionConfig {
        service: ServiceId::Followersgratis,
        fingerprint_variant: 5,
        catalog: hublaagram_catalog_for_followersgratis(),
        lifecycle: LifecycleParams {
            arrival_rate: scaled(300.0, scale, 0.5),
            p_long_term: 0.2,
            long_term_mean_days: 30.0,
            short_term_days: 3,
            initial_long_term: scaled(2_000.0, scale, 2.0) as u32,
        },
        customer_mix: hublaagram_mix(),
        adapt_likes: AdaptationConfig::default(),
        adapt_follows: AdaptationConfig::default(),
        free_like_requests_per_day: 0.0,
        free_follow_requests_per_day: 1.0,
        free_comment_requests_per_day: 0.0,
        payer_profile: PayerProfile {
            p_no_outbound: 0.0,
            p_monthly: 0.0,
            monthly_tier_weights: [0.0; 4],
            p_one_time: 0.0,
        },
        photos_per_day: 0.3,
        // The defining handicap: a tiny static IP pool.
        ip_pool_size: 3,
        honeypot_free_requests_per_day: 2.0,
        paid_delivery_rate_per_hour: 200,
        package_purchase_prob: 0.01,
        followersgratis_packages: crate::catalog::followersgratis_catalog(),
    }
}

/// Followersgratis reuses the collusion engine; its "catalog" only needs the
/// free-tier grant sizes (500-follow-ish requests scaled down to per-request
/// grants) — the paid side is package-based (Table 4).
fn hublaagram_catalog_for_followersgratis() -> crate::catalog::HublaagramCatalog {
    crate::catalog::HublaagramCatalog {
        no_outbound_cents: 0,
        one_time: Vec::new(),
        monthly: Vec::new(),
        free_likes_per_request: 0,
        free_follows_per_request: 40,
        free_cooldown_secs: 3_600,
        free_likes_per_hour_cap: 160,
        ads_per_free_request: (0, 0),
        cpm_cents: (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_linear_on_population_params() {
        let a = hublaagram_config(0.01);
        let b = hublaagram_config(0.02);
        assert!((b.lifecycle.arrival_rate / a.lifecycle.arrival_rate - 2.0).abs() < 0.01);
        let diff = (i64::from(b.lifecycle.initial_long_term) - 2 * i64::from(a.lifecycle.initial_long_term)).abs();
        assert!(diff <= 1, "rounding tolerance, diff {diff}");
    }

    #[test]
    fn conversion_rates_match_paper() {
        assert!((instalex_config(1.0).lifecycle.p_long_term - 0.21).abs() < 1e-9);
        assert!((boostgram_config(1.0).lifecycle.p_long_term - 0.12).abs() < 1e-9);
        assert!((hublaagram_config(1.0).lifecycle.p_long_term - 0.37).abs() < 1e-9);
    }

    #[test]
    fn table11_volume_ratios() {
        // Insta*: follows > likes (ratio ≈ 1.25); Boostgram: likes ≫ follows.
        let ix = instalex_config(1.0).volumes;
        assert!(ix.follow > ix.like);
        let bg = boostgram_config(1.0).volumes;
        assert!(bg.like / bg.follow > 3.0);
        // Boostgram performs no comments (Table 11 row: 0%).
        assert_eq!(bg.comment, 0.0);
    }

    #[test]
    fn instalex_carries_the_follow_for_like_quirk() {
        assert!(instalex_config(1.0).targeting.follow_for_like_strength > 0.0);
        assert_eq!(instazood_config(1.0).targeting.follow_for_like_strength, 0.0);
        assert_eq!(boostgram_config(1.0).targeting.follow_for_like_strength, 0.0);
    }

    #[test]
    fn hublaagram_like_controller_has_three_week_lag() {
        let h = hublaagram_config(1.0);
        assert_eq!(h.adapt_likes.detection_lag_days, 21);
        assert_eq!(h.adapt_follows.detection_lag_days, 0);
    }

    #[test]
    fn followersgratis_has_a_tiny_ip_pool() {
        let f = followersgratis_config(1.0);
        assert!(f.ip_pool_size <= 5);
        let h = hublaagram_config(1.0);
        assert!(h.ip_pool_size >= 1_000);
    }

    #[test]
    fn minimum_floors_keep_tiny_scales_alive() {
        let b = boostgram_config(0.0001);
        assert!(b.lifecycle.arrival_rate >= 0.3);
        assert!(b.lifecycle.initial_long_term >= 3);
    }
}
