//! Reciprocity-abuse service engine (Instalex, Instazood, Boostgram).
//!
//! The engine implements the full operating loop of a reciprocity AAS
//! (§3.1): customers hand over credentials; every day the service drives
//! outbound likes/follows/comments/unfollows *from the customers' accounts*
//! toward a curated target pool, hoping targets reciprocate; trials convert
//! to paid subscriptions; and per-action-type feedback controllers watch for
//! visible failures and adapt (back off below the enforcement threshold,
//! probe it, eventually migrate ASNs — §6.3/§6.4).
//!
//! Honeypot enrollments are driven through the platform's event path so the
//! honeypot framework can observe individual inbound actions (§4).

use crate::adapt::{AdaptationConfig, ControllerAction, DayObservation, VolumeController};
use crate::catalog::{offerings, ReciprocityPricing};
use crate::customer::{sample_poisson, Customer, CustomerBook, LifecycleParams, PayState};
use crate::ledger::{Payment, PaymentKind, PaymentLedger};
use crate::targeting::{TargetingBias, TargetPool};
use footsteps_sim::population::{sample_lognormal, ResidentialIndex};
use footsteps_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Base per-customer daily action volumes. The per-service defaults are
/// chosen so that the aggregate action mix reproduces Table 11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DailyVolumes {
    /// Outbound likes per customer-day.
    pub like: f64,
    /// Outbound follows per customer-day.
    pub follow: f64,
    /// Outbound comments per customer-day.
    pub comment: f64,
    /// Outbound unfollows per customer-day (shedding earlier follows).
    pub unfollow: f64,
}

impl DailyVolumes {
    /// Volume for one action type (posts are not bulk-driven).
    pub fn of(&self, ty: ActionType) -> f64 {
        match ty {
            ActionType::Like => self.like,
            ActionType::Follow => self.follow,
            ActionType::Comment => self.comment,
            ActionType::Unfollow => self.unfollow,
            ActionType::Post => 0.0,
        }
    }
}

/// Static configuration of one reciprocity service instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReciprocityConfig {
    /// Which service this is.
    pub service: ServiceId,
    /// Spoofed-client fingerprint variant of this service's automation stack.
    pub fingerprint_variant: u16,
    /// Trial/pricing terms (Table 2).
    pub pricing: ReciprocityPricing,
    /// Base per-customer daily volumes.
    pub volumes: DailyVolumes,
    /// Customer arrival / long-term dynamics.
    pub lifecycle: LifecycleParams,
    /// Target-pool curation bias.
    pub targeting: TargetingBias,
    /// Curated pool size.
    pub pool_size: usize,
    /// Adaptation controller tuning.
    pub adapt: AdaptationConfig,
    /// Country mix of this service's customer base (Figure 2).
    pub customer_mix: CountryMix,
    /// Events per day driven on honeypot enrollments.
    pub honeypot_daily_actions: u32,
    /// Daily probability the service logs into a customer account from its
    /// own ASN ("they do so infrequently", §5.1 fn. 3).
    pub service_login_prob: f64,
    /// Whether follow traffic returns to the primary ASN after a migration
    /// if follows never visibly fail (the Insta* epilogue behaviour, §6.4).
    pub follows_return_home: bool,
}

/// Per-action-type accumulated daily statistics for the controllers.
#[derive(Debug, Clone, Default)]
struct DayStats {
    attempted: u64,
    visible_failed: u64,
    success_per_account: Vec<u32>,
}

/// One planned action batch of a customer-day (decision phase output).
#[derive(Debug, Clone, Copy)]
struct PlannedBatch {
    ty: ActionType,
    count: u32,
    /// Raw draw the apply phase turns into a source IP inside the ASN that
    /// carries `ty` at submission time.
    ip_key: u32,
}

/// Everything the decision phase resolved for one engaged customer-day.
/// The apply phase replays this against the platform in roster order.
#[derive(Debug, Clone)]
struct CustomerPlan {
    account: AccountId,
    honeypot: bool,
    login_home: bool,
    login_service: bool,
    batches: Vec<PlannedBatch>,
    /// The customer's decision stream, carried into the apply phase:
    /// honeypot event volumes depend on submission outcomes, so their draws
    /// continue from here.
    rng: SmallRng,
}

/// A running reciprocity-abuse service.
#[derive(Debug, Serialize, Deserialize)]
pub struct ReciprocityService {
    config: ReciprocityConfig,
    customers: CustomerBook,
    pool: TargetPool,
    /// Primary ASN plus evasion backups (fresh hosting / proxy networks).
    asn_rotation: Vec<AsnId>,
    /// Current rotation index per action type.
    asn_idx: [usize; ActionType::COUNT],
    /// Service-level controllers: aggregate blocking visibility, driving
    /// migration decisions.
    controllers: [VolumeController; ActionType::COUNT],
    /// Per-customer volume controllers, created lazily when an account's
    /// actions start visibly failing. Real automation stacks implement
    /// block detection per driven account (the paper found one openly
    /// available implementation), which is why even a 10%-of-customers
    /// intervention provokes adaptation for exactly those customers.
    per_customer: HashMap<(AccountId, usize), VolumeController>,
    /// Consecutive days with visible failures, per action type; drives the
    /// detection-capability gate below.
    failure_streak: [u32; ActionType::COUNT],
    /// Whether the service has (built and) enabled block detection for each
    /// action type. Reciprocity services ship with it (lag 0); Hublaagram
    /// took ~3 weeks to implement like-block detection (§6.3).
    capability: [bool; ActionType::COUNT],
    /// Consecutive days on which a large fraction of customers operated
    /// under self-imposed caps: the pressure that eventually drives the
    /// service to relocate ("all AASs eventually moved their like traffic
    /// to different ASNs", §6.4).
    heavy_throttle_days: [u32; ActionType::COUNT],
    rng: SmallRng,
    /// Seed of the per-customer decision streams: every customer-day plan is
    /// drawn from `decision_rng(decision_seed, account, day)`, so planning
    /// can be sharded across worker threads without perturbing any stream
    /// (DESIGN.md §4).
    decision_seed: u64,
    /// Days since follow traffic last saw a visible failure while away from
    /// the primary ASN (drives `follows_return_home`).
    follow_quiet_days: u32,
    /// Total ASN migrations performed (epilogue reporting).
    migrations: u32,
    /// Whether the service has given up selling (Hublaagram-style "out of
    /// stock"; reciprocity services never set this but the field keeps the
    /// reporting interface uniform).
    accepting_payments: bool,
}

impl ReciprocityService {
    /// Create the service: curate its target pool and stand up controllers.
    ///
    /// `asn_rotation[0]` is the primary ASN (Table 7); later entries are the
    /// fresh networks the service migrates to under sustained blocking.
    pub fn new(
        config: ReciprocityConfig,
        accounts: &footsteps_sim::account::AccountStore,
        population: &Population,
        asn_rotation: Vec<AsnId>,
        rng: SmallRng,
    ) -> Self {
        assert!(!asn_rotation.is_empty(), "need at least a primary ASN");
        let mut rng = rng;
        // First draw of the service stream: the seed all per-customer
        // decision streams derive from. Keeping it a function of the
        // service's labelled stream keeps the whole chain a pure function of
        // (scenario seed, stream label, account id, day).
        let decision_seed = rng.gen::<u64>();
        let pool = TargetPool::curate(
            accounts,
            population,
            config.targeting,
            config.pool_size,
            &mut rng,
        );
        let controllers = [VolumeController::new(config.adapt); ActionType::COUNT];
        Self {
            config,
            customers: CustomerBook::new(),
            pool,
            asn_rotation,
            asn_idx: [0; ActionType::COUNT],
            controllers,
            per_customer: HashMap::new(),
            failure_streak: [0; ActionType::COUNT],
            capability: [false; ActionType::COUNT],
            heavy_throttle_days: [0; ActionType::COUNT],
            rng,
            decision_seed,
            follow_quiet_days: 0,
            migrations: 0,
            accepting_payments: true,
        }
    }

    /// This service's id.
    pub fn id(&self) -> ServiceId {
        self.config.service
    }

    /// The customer roster.
    pub fn customers(&self) -> &CustomerBook {
        &self.customers
    }

    /// The curated target pool (Figures 3/4 sample from it).
    pub fn pool(&self) -> &TargetPool {
        &self.pool
    }

    /// The ASN currently carrying traffic of type `ty`.
    pub fn current_asn(&self, ty: ActionType) -> AsnId {
        self.asn_rotation[self.asn_idx[ty.index()]]
    }

    /// The primary (original) ASN.
    pub fn primary_asn(&self) -> AsnId {
        self.asn_rotation[0]
    }

    /// Number of ASN migrations performed so far.
    pub fn migrations(&self) -> u32 {
        self.migrations
    }

    /// Whether the controller for `ty` has reacted to blocking.
    pub fn is_throttled(&self, ty: ActionType) -> bool {
        self.controllers[ty.index()].is_throttled()
    }

    /// The current service-level cap estimate for `ty`, if any.
    pub fn cap(&self, ty: ActionType) -> Option<f64> {
        self.controllers[ty.index()].cap()
    }

    /// The self-imposed daily cap for one customer's `ty` actions, if that
    /// account's controller has engaged.
    pub fn customer_cap(&self, account: AccountId, ty: ActionType) -> Option<f64> {
        self.per_customer
            .get(&(account, ty.index()))
            .and_then(|c| c.cap())
    }

    /// Number of customers currently operating under a self-imposed cap for
    /// `ty`.
    pub fn throttled_customer_count(&self, ty: ActionType) -> usize {
        self.per_customer
            // footsteps-lint: allow(nondet-iter) — order-insensitive count of throttled customers
            .iter()
            .filter(|((_, t), c)| *t == ty.index() && c.is_throttled())
            .count()
    }

    /// Whether block detection for `ty` is active (the capability gate).
    pub fn detection_active(&self, ty: ActionType) -> bool {
        self.capability[ty.index()]
    }

    /// Enroll a honeypot account. `paid` buys the minimum subscription
    /// immediately; otherwise the account runs on the free trial. The
    /// honeypot requests exactly one action type, as in §4.1.2.
    pub fn enroll_honeypot(
        &mut self,
        account: AccountId,
        requested: ActionType,
        paid: bool,
        day: Day,
        ledger: &mut PaymentLedger,
    ) {
        assert!(
            offerings(self.config.service).offers(requested),
            "{} does not offer {requested}",
            self.config.service
        );
        let pay = if paid {
            // Paid probes purchase ~a month of service (multiple minimum
            // blocks where needed), matching the study's paid engagements.
            let blocks = 28u32.div_ceil(self.config.pricing.min_paid_days.max(1));
            ledger.record(Payment {
                day,
                account,
                service: self.config.service,
                cents: u64::from(blocks) * self.config.pricing.min_paid_cents,
                kind: PaymentKind::Subscription,
            });
            PayState::Paid {
                until: day.plus(blocks * self.config.pricing.min_paid_days.max(1)),
            }
        } else {
            PayState::Trial {
                ends: day.plus(self.config.pricing.delivered_trial_days),
            }
        };
        let end = match pay {
            PayState::Paid { until } => until,
            PayState::Trial { ends } => ends,
            _ => unreachable!(),
        };
        self.customers.enroll(Customer {
            account,
            enrolled: day,
            planned_end: end,
            long_term: false,
            pay,
            ever_paid: paid,
            requested: vec![requested],
            volume_multiplier: 1.0,
            honeypot: true,
        });
    }

    /// Run one simulated day: arrivals, payments, activity, adaptation.
    pub fn run_day(
        &mut self,
        platform: &mut Platform,
        residential: &ResidentialIndex,
        ledger: &mut PaymentLedger,
        day: Day,
    ) {
        self.admit_arrivals(platform, residential, day);
        self.process_payments(ledger, day);
        let stats = self.drive_activity(platform, day);
        self.adapt(day, stats);
    }

    /// Seed the pre-existing long-term customer stock. Call once, at the
    /// start of the measurement window, before the first `run_day`.
    pub fn seed_initial_customers(
        &mut self,
        platform: &mut Platform,
        residential: &ResidentialIndex,
        day: Day,
    ) {
        for _ in 0..self.config.lifecycle.initial_long_term {
            let account = self.create_customer_account(platform, residential);
            let mean = self.config.lifecycle.long_term_mean_days;
            let len = crate::customer::sample_geometric_days(mean, &mut self.rng).max(10);
            let until = day.plus(self.config.pricing.min_paid_days.max(1));
            self.customers.enroll(Customer {
                account,
                enrolled: day,
                planned_end: day.plus(len),
                long_term: true,
                // Already paying when the window opens; their next renewal
                // is what the revenue estimator sees.
                pay: PayState::Paid { until },
                ever_paid: true,
                requested: vec![
                    ActionType::Like,
                    ActionType::Follow,
                    ActionType::Comment,
                    ActionType::Unfollow,
                ],
                volume_multiplier: personal_multiplier(&mut self.rng),
                honeypot: false,
            });
        }
    }

    fn create_customer_account(
        &mut self,
        platform: &mut Platform,
        residential: &ResidentialIndex,
    ) -> AccountId {
        let country = self.config.customer_mix.sample(self.rng.gen());
        let home = residential.pick(country, self.rng.gen());
        let following = sample_lognormal(&mut self.rng, 480.0, 0.9).round().min(5e5) as u32;
        let followers = sample_lognormal(&mut self.rng, 620.0, 0.9).round().min(5e5) as u32;
        let tendency = footsteps_sim::behavior::followback_tendency(
            following,
            followers,
            self.rng.gen(),
        );
        let profile = footsteps_sim::behavior::synthesize_profile(
            &platform.config.behavior,
            tendency,
            self.rng.gen(),
        );
        platform.accounts.create(
            platform.clock.now(),
            ProfileKind::Organic,
            country,
            home,
            following,
            followers,
            profile,
        )
    }

    fn admit_arrivals(
        &mut self,
        platform: &mut Platform,
        residential: &ResidentialIndex,
        day: Day,
    ) {
        let n = sample_poisson(&mut self.rng, self.config.lifecycle.arrival_rate);
        for _ in 0..n {
            let account = self.create_customer_account(platform, residential);
            let (long_term, planned_end) = self.config.lifecycle.draw_span(day, &mut self.rng);
            self.customers.enroll(Customer {
                account,
                enrolled: day,
                planned_end,
                long_term,
                pay: PayState::Trial {
                    ends: day.plus(self.config.pricing.delivered_trial_days),
                },
                ever_paid: false,
                requested: vec![
                    ActionType::Like,
                    ActionType::Follow,
                    ActionType::Comment,
                    ActionType::Unfollow,
                ],
                volume_multiplier: personal_multiplier(&mut self.rng),
                honeypot: false,
            });
        }
    }

    fn process_payments(&mut self, ledger: &mut PaymentLedger, day: Day) {
        let service = self.config.service;
        let pricing = self.config.pricing;
        let accepting = self.accepting_payments;
        let mut payments = Vec::new();
        for c in self.customers.iter_mut() {
            if c.honeypot {
                // Honeypot engagements end at their trial/paid horizon; the
                // honeypot framework decides about renewals explicitly.
                if let PayState::Trial { ends } | PayState::Paid { until: ends } = c.pay {
                    if day >= ends {
                        c.pay = PayState::Lapsed;
                    }
                }
                continue;
            }
            if day >= c.planned_end {
                c.pay = PayState::Lapsed;
                continue;
            }
            let due = match c.pay {
                PayState::Trial { ends } => day >= ends,
                PayState::Paid { until } => day >= until,
                PayState::Free => false,
                PayState::Lapsed => continue,
            };
            if !due {
                continue;
            }
            if c.long_term && accepting {
                payments.push(Payment {
                    day,
                    account: c.account,
                    service,
                    cents: pricing.min_paid_cents,
                    kind: PaymentKind::Subscription,
                });
                c.pay = PayState::Paid {
                    until: day.plus(pricing.min_paid_days.max(1)),
                };
                c.ever_paid = true;
            } else {
                c.pay = PayState::Lapsed;
            }
        }
        for p in payments {
            ledger.record(p);
        }
    }

    /// Decide one customer's day. Pure with respect to service and platform
    /// state: reads shared state, mutates nothing, and draws only from the
    /// customer's own `(decision_seed, account, day)` stream — the contract
    /// that lets [`crate::engine::plan_parallel`] shard this across threads.
    fn plan_customer(
        &self,
        day: Day,
        offer: crate::catalog::Offerings,
        account: AccountId,
        mult: f64,
        honeypot: bool,
        requested: &[ActionType],
    ) -> CustomerPlan {
        let mut rng = decision_rng(self.decision_seed, u64::from(account.0), u64::from(day.0));
        // Customers log in from home most days; the service logs in from
        // its own network only rarely.
        let login_home = rng.gen::<f64>() < 0.8;
        let login_service = rng.gen::<f64>() < self.config.service_login_prob;
        let mut batches = Vec::new();
        if !honeypot {
            for ty in ActionType::ALL {
                if !offer.offers(ty) || !requested.contains(&ty) {
                    continue;
                }
                let base = self.config.volumes.of(ty) * mult;
                if base <= 0.0 {
                    continue;
                }
                let capped = match self.customer_cap(account, ty) {
                    Some(cap) => base.min(cap),
                    None => base,
                };
                // Small day-to-day jitter so per-account series look organic
                // rather than perfectly flat.
                let jitter = 0.9 + 0.2 * rng.gen::<f64>();
                let count = (capped * jitter).round().max(0.0) as u32;
                if count == 0 {
                    continue;
                }
                let ip_key = rng.gen::<u32>();
                batches.push(PlannedBatch { ty, count, ip_key });
            }
        }
        CustomerPlan {
            account,
            honeypot,
            login_home,
            login_service,
            batches,
            rng,
        }
    }

    fn drive_activity(&mut self, platform: &mut Platform, day: Day) -> [DayStats; 5] {
        let mut stats: [DayStats; 5] = Default::default();
        let pool_stats = self.pool.stats();
        let fingerprint = ClientFingerprint::SpoofedMobile {
            variant: self.config.fingerprint_variant,
        };
        let offer = offerings(self.config.service);
        let engaged: Vec<(AccountId, f64, bool, Vec<ActionType>)> = self
            .customers
            .engaged_on(day)
            .map(|c| (c.account, c.volume_multiplier, c.honeypot, c.requested.clone()))
            .collect();

        // Decision phase: plan every engaged customer's day in parallel. The
        // phase is an open span; each plan worker's busy interval lands as a
        // lane under `aas.<slug>.decision.worker`.
        let threads = platform.config.worker_threads;
        let slug = self.config.service.slug();
        let decision_span = platform.obs.timings.start(&format!("aas.{slug}.decision"));
        let region_t0 = platform.obs.timings.now_secs();
        let (mut plans, decision_lanes) = crate::engine::plan_parallel_timed(
            &engaged,
            threads,
            |&(account, mult, honeypot, ref requested)| {
                self.plan_customer(day, offer, account, mult, honeypot, requested)
            },
        );
        platform.obs.timings.attach_workers(
            &format!("aas.{slug}.decision.worker"),
            region_t0,
            &decision_lanes,
        );
        platform.obs.timings.finish(decision_span);
        // Metrics are recorded from the merged plan list (roster order), not
        // per worker: the values must not depend on how the decision phase
        // was sharded. Wall-clock goes to the quarantined timings section.
        let planned_batches: u64 = plans.iter().map(|p| p.batches.len() as u64).sum();
        platform
            .obs
            .metrics
            .add(&format!("aas.{slug}.engaged"), engaged.len() as u64);
        platform
            .obs
            .metrics
            .add(&format!("aas.{slug}.planned_batches"), planned_batches);

        // Route phase: submit the plans serially, in roster order. All
        // platform mutation and controller feedback happens here. The
        // reciprocity engines have no sharded apply — their hot path is the
        // outbound batch middleware, which is already cheap — so the span is
        // `route`, reserving `aas.<slug>.apply` for sharded deposit phases.
        let route_span = platform.obs.timings.start(&format!("aas.{slug}.route"));
        for (plan, (_, _, _, requested)) in plans.iter_mut().zip(&engaged) {
            if plan.login_home {
                platform.record_login(plan.account);
            }
            if plan.login_service {
                let asn = self.current_asn(ActionType::Follow);
                platform.record_login_via(plan.account, asn);
            }
            if plan.honeypot {
                // Honeypot event volumes depend on batch outcomes, so they
                // run in the apply phase — continuing the customer's own
                // decision stream carried over from the plan.
                for ty in ActionType::ALL {
                    if !offer.offers(ty) || !requested.contains(&ty) {
                        continue;
                    }
                    let (account, rng) = (plan.account, &mut plan.rng);
                    self.drive_honeypot_events(platform, account, ty, rng, &mut stats);
                }
                continue;
            }
            for b in &plan.batches {
                let asn = self.current_asn(b.ty);
                let ip = platform.asns.ip_in(asn, b.ip_key);
                let pool = match b.ty {
                    ActionType::Like | ActionType::Follow => pool_stats,
                    _ => PoolStats::INERT,
                };
                let result = platform.submit_batch(BatchRequest {
                    actor: plan.account,
                    action: b.ty,
                    count: b.count,
                    asn,
                    ip,
                    fingerprint,
                    pool,
                    service: Some(self.config.service),
                });
                let s = &mut stats[b.ty.index()];
                s.attempted += u64::from(result.attempted);
                s.visible_failed += u64::from(result.visible_failure());
                s.success_per_account.push(result.visible_success());
                self.observe_customer(plan.account, b.ty, day, &result);
            }
        }
        platform.obs.timings.finish(route_span);
        stats
    }

    /// Feed one customer-day outcome into that customer's own controller.
    /// Controllers exist lazily (only for accounts that have seen failures)
    /// and only act once the service's block detection for the type is live.
    fn observe_customer(
        &mut self,
        account: AccountId,
        ty: ActionType,
        day: Day,
        result: &BatchResult,
    ) {
        if !self.capability[ty.index()] {
            return;
        }
        let key = (account, ty.index());
        if result.visible_failure() == 0 && !self.per_customer.contains_key(&key) {
            return;
        }
        let adapt = AdaptationConfig {
            detection_lag_days: 0,
            migrate_after_days: u32::MAX,
            ..self.config.adapt
        };
        let ctl = self
            .per_customer
            .entry(key)
            .or_insert_with(|| VolumeController::new(adapt));
        ctl.observe(DayObservation {
            day,
            attempted: u64::from(result.attempted),
            visible_failed: u64::from(result.visible_failure()),
            median_success_per_account: f64::from(result.visible_success()),
        });
    }

    /// Drive a honeypot's daily actions through the event path so that the
    /// honeypot framework can observe each outbound action and each organic
    /// response individually.
    fn drive_honeypot_events(
        &mut self,
        platform: &mut Platform,
        account: AccountId,
        ty: ActionType,
        rng: &mut SmallRng,
        stats: &mut [DayStats; 5],
    ) {
        let mut n = self.config.honeypot_daily_actions as usize;
        if let Some(cap) = self.customer_cap(account, ty) {
            n = n.min(cap as usize);
        }
        let asn = self.current_asn(ty);
        let fingerprint = ClientFingerprint::SpoofedMobile {
            variant: self.config.fingerprint_variant,
        };
        let mut success = 0u32;
        let mut failed = 0u64;
        match ty {
            ActionType::Post => {
                // Posting services upload a handful of scheduled posts/day
                // through their own automation stack.
                for _ in 0..3 {
                    let ip = platform.asns.ip_in(asn, rng.gen::<u32>());
                    platform.post_media_via(account, asn, ip, fingerprint, Some(self.config.service));
                    success += 1;
                }
            }
            ActionType::Unfollow => {
                // Unfollow service: follow-then-shed pairs against the pool.
                let targets = self.pool.sample_distinct(n, rng);
                for t in targets {
                    let ip = platform.asns.ip_in(asn, rng.gen::<u32>());
                    let f = platform.submit_event(EventRequest {
                        actor: account,
                        action: ActionType::Follow,
                        target: t,
                        asn,
                        ip,
                        fingerprint,
                        service: Some(self.config.service),
                    });
                    if f.visible_success() {
                        platform.submit_event(EventRequest {
                            actor: account,
                            action: ActionType::Unfollow,
                            target: t,
                            asn,
                            ip,
                            fingerprint,
                            service: Some(self.config.service),
                        });
                        success += 1;
                    } else {
                        failed += 1;
                    }
                }
            }
            _ => {
                let targets = self.pool.sample_distinct(n, rng);
                for t in targets {
                    let ip = platform.asns.ip_in(asn, rng.gen::<u32>());
                    let outcome = platform.submit_event(EventRequest {
                        actor: account,
                        action: ty,
                        target: t,
                        asn,
                        ip,
                        fingerprint,
                        service: Some(self.config.service),
                    });
                    if outcome.visible_success() {
                        success += 1;
                    } else {
                        failed += 1;
                    }
                }
            }
        }
        let s = &mut stats[ty.index()];
        s.attempted += u64::from(success) + failed;
        s.visible_failed += failed;
        s.success_per_account.push(success);
        let day = platform.clock.today();
        let result = BatchResult {
            attempted: success + failed as u32,
            delivered: success,
            blocked: failed as u32,
            deferred: 0,
            rate_limited: 0,
        };
        self.observe_customer(account, ty, day, &result);
    }

    fn adapt(&mut self, day: Day, stats: [DayStats; 5]) {
        for ty in ActionType::ALL {
            let s = &stats[ty.index()];
            if s.attempted == 0 {
                continue;
            }
            // Detection capability: any sustained visible failures unlock
            // per-account block detection after the implementation lag.
            let i = ty.index();
            let failing = s.visible_failed > 0
                && (s.visible_failed as f64) > 0.002 * s.attempted as f64;
            if failing {
                self.failure_streak[i] += 1;
            } else {
                self.failure_streak[i] = 0;
            }
            if self.failure_streak[i] > self.config.adapt.detection_lag_days {
                self.capability[i] = true;
            }
            let median = median_u32(&s.success_per_account);
            let action = self.controllers[i].observe(DayObservation {
                day,
                attempted: s.attempted,
                visible_failed: s.visible_failed,
                median_success_per_account: median,
            });
            if action == ControllerAction::Migrate {
                self.migrate(ty);
                continue;
            }
            // Relocation pressure: when most customers run under caps the
            // service is delivering a fraction of its product; after
            // `migrate_after_days` of that it stands up fresh networks.
            let engaged = s.success_per_account.len();
            let throttled = self.throttled_customer_count(ty);
            if self.capability[i] && engaged > 0 && throttled * 10 >= engaged * 3 {
                self.heavy_throttle_days[i] += 1;
                if self.heavy_throttle_days[i] >= self.config.adapt.migrate_after_days {
                    self.migrate(ty);
                }
            } else {
                self.heavy_throttle_days[i] = 0;
            }
        }
        // Epilogue: Insta* drifted its follow traffic back to the original
        // ASN because the (delayed) countermeasure there was never visible.
        let fi = ActionType::Follow.index();
        if self.config.follows_return_home && self.asn_idx[fi] != 0 {
            if stats[fi].visible_failed == 0 {
                self.follow_quiet_days += 1;
            } else {
                self.follow_quiet_days = 0;
            }
            if self.follow_quiet_days >= 14 {
                self.asn_idx[fi] = 0;
                self.follow_quiet_days = 0;
            }
        }
    }

    /// Move to the next network in the rotation. Operationally the service
    /// relocates its whole automation stack, so *all* traffic types move;
    /// follow traffic may later drift home (see `follows_return_home`).
    /// Per-customer caps are lifted: the fresh network is not (yet) covered
    /// by frozen thresholds.
    fn migrate(&mut self, _trigger: ActionType) {
        let current = self.asn_idx.iter().copied().max().unwrap_or(0);
        if current + 1 < self.asn_rotation.len() {
            self.asn_idx = [current + 1; ActionType::COUNT];
            self.migrations += 1;
            self.per_customer.clear();
            self.failure_streak = [0; ActionType::COUNT];
            self.heavy_throttle_days = [0; ActionType::COUNT];
        }
        // With the rotation exhausted the service has nowhere to go; it
        // keeps operating (and failing) from the last network.
    }
}

/// Log-normal personal activity multiplier around 1.
fn personal_multiplier(rng: &mut impl Rng) -> f64 {
    sample_lognormal(rng, 1.0, 0.28).clamp(0.3, 3.0)
}

/// Median of a u32 slice as f64 (0 for empty).
fn median_u32(v: &[u32]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut sorted = v.to_vec();
    sorted.sort_unstable();
    f64::from(sorted[sorted.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    
    use footsteps_sim::population::{synthesize, PopulationConfig};
    use rand::SeedableRng;

    /// Build a small world with a Boostgram instance for engine tests.
    fn world() -> (Platform, ResidentialIndex, Population, ReciprocityService, PaymentLedger) {
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 50_000);
        }
        let primary = reg.register("bg-host", Country::Us, AsnKind::Hosting, 10_000);
        let backup = reg.register("bg-host-2", Country::Us, AsnKind::Hosting, 10_000);
        let residential = ResidentialIndex::build(&reg);
        let mut platform = Platform::new(
            reg,
            PlatformConfig::default(),
            SmallRng::seed_from_u64(100),
        );
        let mut rng = SmallRng::seed_from_u64(101);
        let pop = synthesize(
            &mut platform.accounts,
            &residential,
            &PopulationConfig { size: 4_000, ..PopulationConfig::default() },
            &mut rng,
        );
        let mut cfg = presets::boostgram_config(0.01);
        cfg.pool_size = 600;
        cfg.lifecycle.arrival_rate = 2.0;
        cfg.lifecycle.initial_long_term = 10;
        let svc = ReciprocityService::new(
            cfg,
            &platform.accounts,
            &pop,
            vec![primary, backup],
            SmallRng::seed_from_u64(102),
        );
        (platform, residential, pop, svc, PaymentLedger::new())
    }

    #[test]
    fn customers_arrive_trial_then_pay_or_lapse() {
        let (mut platform, residential, _pop, mut svc, mut ledger) = world();
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, Day(0));
        for d in 0..20u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        assert!(svc.customers().len() > 10, "arrivals happened");
        // Some short-term customers lapsed after the 3-day trial.
        let lapsed = svc
            .customers()
            .iter()
            .filter(|c| c.pay == PayState::Lapsed)
            .count();
        assert!(lapsed > 0, "short-term users lapse");
        // Long-term customers paid.
        let paid = svc.customers().iter().filter(|c| c.ever_paid).count();
        assert!(paid >= 10, "initial stock and converts pay, got {paid}");
        assert!(ledger.gross_in(ServiceId::Boostgram, Day(0), Day(20)) > 0);
    }

    #[test]
    fn activity_is_recorded_per_customer_asn() {
        let (mut platform, residential, _pop, mut svc, mut ledger) = world();
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, Day(0));
        svc.run_day(&mut platform, &residential, &mut ledger, Day(0));
        let asn = svc.current_asn(ActionType::Like);
        let day0 = platform.log.day(Day(0)).expect("activity logged");
        let active: Vec<_> = day0
            .outbound()
            .filter(|(k, _)| k.asn == asn)
            .collect();
        assert!(!active.is_empty(), "customer traffic from the service ASN");
        // Mix sanity: likes dominate Boostgram traffic (Table 11).
        let mut like = 0u64;
        let mut follow = 0u64;
        for (_, c) in day0.outbound().filter(|(k, _)| k.asn == asn) {
            like += u64::from(c.attempted_of(ActionType::Like));
            follow += u64::from(c.attempted_of(ActionType::Follow));
        }
        assert!(like > 2 * follow, "like {like} vs follow {follow}");
    }

    #[test]
    fn reciprocation_flows_back_to_customers() {
        let (mut platform, residential, _pop, mut svc, mut ledger) = world();
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, Day(0));
        let customer = svc.customers().iter().next().unwrap().account;
        let before = platform.accounts.get(customer).followers;
        for d in 0..10u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        let after = platform.accounts.get(customer).followers;
        assert!(
            after > before,
            "outbound follows earn reciprocated followers ({before} -> {after})"
        );
    }

    #[test]
    fn honeypot_enrollment_drives_event_traffic() {
        let (mut platform, residential, _pop, mut svc, mut ledger) = world();
        platform.begin_day(Day(0));
        let hp = platform.accounts.create(
            SimTime::EPOCH,
            ProfileKind::HoneypotEmpty,
            Country::Us,
            AsnId(0),
            0,
            0,
            ReciprocityProfile::SILENT,
        );
        platform.graph.track(hp);
        platform.log.track_events_for(hp);
        svc.enroll_honeypot(hp, ActionType::Follow, false, Day(0), &mut ledger);
        for d in 0..3u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        let out = platform
            .log
            .total_outbound(hp, ActionType::Follow, Day(0), Day(3));
        assert!(out > 0, "honeypot produced outbound follows");
        let events = platform
            .log
            .events_in(Day(0), Day(3), |e| e.actor == hp)
            .count();
        assert_eq!(events as u64, out, "every action is an event");
        // Honeypot engagement ends with the trial.
        for d in 3..10u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        let out_after = platform
            .log
            .total_outbound(hp, ActionType::Follow, Day(3), Day(10));
        assert_eq!(out_after, 0, "trial ended after 3 days (Boostgram)");
    }

    #[test]
    fn honeypot_of_unoffered_type_is_rejected() {
        let (mut platform, _residential, _pop, mut svc, mut ledger) = world();
        let hp = platform.accounts.create(
            SimTime::EPOCH,
            ProfileKind::HoneypotEmpty,
            Country::Us,
            AsnId(0),
            0,
            0,
            ReciprocityProfile::SILENT,
        );
        // Boostgram does not offer post automation (Table 1).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            svc.enroll_honeypot(hp, ActionType::Post, false, Day(0), &mut ledger);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn blocking_provokes_throttling_and_migration() {
        #[derive(Debug)]
        struct BlockFollows;
        impl EnforcementPolicy for BlockFollows {
            fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
                if ctx.action == ActionType::Follow && ctx.direction == Direction::Outbound {
                    EnforcementDecision::threshold(ctx.requested, ctx.prior_today, 30, Countermeasure::Block)
                } else {
                    EnforcementDecision::allow_all(ctx.requested)
                }
            }
        }
        let (mut platform, residential, _pop, mut svc, mut ledger) = world();
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, Day(0));
        platform.set_policy(Box::new(BlockFollows));
        let mut throttled_on = None;
        for d in 0..60u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
            if throttled_on.is_none() && svc.is_throttled(ActionType::Follow) {
                throttled_on = Some(d);
            }
        }
        let reacted = throttled_on.expect("service reacted to blocking");
        assert!(reacted <= 2, "reaction is immediate, got day {reacted}");
        // Cap sits at/below the threshold neighbourhood.
        if let Some(cap) = svc.cap(ActionType::Follow) {
            assert!(cap <= 40.0, "cap {cap} near threshold 30");
        }
        // Under default tuning (migrate_after_days=45) sustained probing
        // eventually hits the migrate path.
        assert!(svc.migrations() <= 1);
    }

    #[test]
    fn delayed_removal_goes_unanswered() {
        #[derive(Debug)]
        struct DelayFollows;
        impl EnforcementPolicy for DelayFollows {
            fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
                if ctx.action == ActionType::Follow && ctx.direction == Direction::Outbound {
                    EnforcementDecision::threshold(
                        ctx.requested,
                        ctx.prior_today,
                        30,
                        Countermeasure::DelayRemoval,
                    )
                } else {
                    EnforcementDecision::allow_all(ctx.requested)
                }
            }
        }
        let (mut platform, residential, _pop, mut svc, mut ledger) = world();
        platform.begin_day(Day(0));
        svc.seed_initial_customers(&mut platform, &residential, Day(0));
        platform.set_policy(Box::new(DelayFollows));
        for d in 0..30u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        assert!(
            !svc.is_throttled(ActionType::Follow),
            "the service cannot see deferred removals and never reacts"
        );
        // Yet the countermeasure is working: follows are being removed.
        let removed: u32 = (0..31u32).map(|d| platform.metrics(Day(d)).removed_follows).sum();
        assert!(removed > 0);
    }
}
