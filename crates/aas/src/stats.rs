//! Exact nearest-rank quantile helpers shared by the batch detector
//! (`footsteps-detect`), the analyses (`footsteps-analysis` re-exports
//! this module as its canonical stats surface) and the streaming
//! detector (`footsteps-stream`).
//!
//! They live here rather than in `analysis::stats` because `analysis`
//! depends on `detect`: hosting the shared primitive in the common
//! ancestor keeps the dependency graph acyclic while both the batch and
//! stream threshold paths use the *same* rank arithmetic — a one-off
//! reimplementation is exactly the drift the determinism contract
//! forbids.

/// 1-based nearest rank for probability `p ∈ [0,1]` over a sample of
/// size `len`: `⌈len·p⌉` clamped into `[1, len]`.
///
/// Returns 1 for `len == 0` — callers must handle the empty sample
/// before indexing (the slice helpers below return `None`).
pub fn nearest_rank(len: usize, p: f64) -> usize {
    debug_assert!((0.0..=1.0).contains(&p), "p out of [0,1]: {p}");
    ((len as f64 * p).ceil() as usize).clamp(1, len.max(1))
}

/// Exact percentile (nearest-rank) of a sample (sorted in place). `p` in
/// `[0,1]`. `None` for empty input.
pub fn percentile_u32(values: &mut [u32], p: f64) -> Option<u32> {
    if values.is_empty() {
        return None;
    }
    values.sort_unstable();
    Some(values[nearest_rank(values.len(), p) - 1])
}

/// Nearest-rank quantile over several *individually sorted* runs without
/// merging or re-sorting them: binary search on the value domain, with
/// the rank of a candidate counted via `partition_point` per run.
///
/// This is the sliding-window primitive of the streaming threshold
/// estimator: each calibration day contributes one sorted run, the
/// window is a deque of runs, and a day entering or leaving the window
/// never forces a re-sort of the other days. Cost is
/// `O(runs · log(runs·len) · log(max))` versus `O(n log n)` for a flat
/// re-sort of the concatenated window.
///
/// For identical multisets of samples this returns exactly the same
/// value as [`percentile_u32`] on the concatenation — the parity is
/// pinned by tests here and relied on by the online/batch threshold
/// parity suite.
pub fn quantile_sorted_runs(runs: &[&[u32]], p: f64) -> Option<u32> {
    let len: usize = runs.iter().map(|r| r.len()).sum();
    if len == 0 {
        return None;
    }
    let target = nearest_rank(len, p);
    let mut lo = u32::MAX;
    let mut hi = u32::MIN;
    for run in runs {
        debug_assert!(run.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
        if let (Some(&first), Some(&last)) = (run.first(), run.last()) {
            lo = lo.min(first);
            hi = hi.max(last);
        }
    }
    // Invariant: the target-th smallest element is in [lo, hi]; the
    // smallest value v with rank(v) >= target is that element.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let rank: usize = runs.iter().map(|r| r.partition_point(|&v| v <= mid)).sum();
        if rank >= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_bounds() {
        assert_eq!(nearest_rank(100, 0.99), 99);
        assert_eq!(nearest_rank(100, 0.25), 25);
        assert_eq!(nearest_rank(100, 1.0), 100);
        assert_eq!(nearest_rank(100, 0.0), 1, "clamped to rank 1");
        assert_eq!(nearest_rank(1, 0.5), 1);
        assert_eq!(nearest_rank(0, 0.5), 1, "degenerate empty-sample rank");
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v: Vec<u32> = (1..=100).collect();
        assert_eq!(percentile_u32(&mut v, 0.99), Some(99));
        assert_eq!(percentile_u32(&mut v, 0.25), Some(25));
        assert_eq!(percentile_u32(&mut v, 1.0), Some(100));
        assert_eq!(percentile_u32(&mut v, 0.0), Some(1), "clamped to rank 1");
        let mut empty: Vec<u32> = vec![];
        assert_eq!(percentile_u32(&mut empty, 0.5), None);
    }

    #[test]
    fn sorted_runs_match_flat_percentile() {
        // Three sorted runs whose concatenation is 1..=100 shuffled into
        // interleaved residue classes.
        let a: Vec<u32> = (1..=100).filter(|n| n % 3 == 0).collect();
        let b: Vec<u32> = (1..=100).filter(|n| n % 3 == 1).collect();
        let c: Vec<u32> = (1..=100).filter(|n| n % 3 == 2).collect();
        let runs: Vec<&[u32]> = vec![&a, &b, &c];
        for &p in &[0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let mut flat: Vec<u32> = (1..=100).collect();
            assert_eq!(
                quantile_sorted_runs(&runs, p),
                percentile_u32(&mut flat, p),
                "p={p}"
            );
        }
    }

    #[test]
    fn sorted_runs_with_duplicates_and_empties() {
        let a = [5u32, 5, 5];
        let b: [u32; 0] = [];
        let c = [1u32, 5, 9];
        let runs: Vec<&[u32]> = vec![&a, &b, &c];
        let flat = vec![5u32, 5, 5, 1, 5, 9];
        for &p in &[0.1, 0.5, 0.9, 1.0] {
            assert_eq!(
                quantile_sorted_runs(&runs, p),
                percentile_u32(&mut flat.clone(), p),
                "p={p}"
            );
        }
        let empty: Vec<&[u32]> = vec![&b];
        assert_eq!(quantile_sorted_runs(&empty, 0.5), None);
        assert_eq!(quantile_sorted_runs(&[], 0.5), None);
    }

    #[test]
    fn sorted_runs_single_run_is_identity_percentile() {
        let run: Vec<u32> = vec![2, 4, 4, 8, 16];
        assert_eq!(quantile_sorted_runs(&[&run], 0.5), Some(4));
        assert_eq!(quantile_sorted_runs(&[&run], 1.0), Some(16));
        assert_eq!(quantile_sorted_runs(&[&run], 0.2), Some(2));
    }
}
