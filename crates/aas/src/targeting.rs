//! Target selection for reciprocity-abuse services.
//!
//! The reciprocity business stands or falls with *whom* the automated
//! outbound actions hit. §5.3 shows the services do not target uniformly:
//! compared with random Instagram users, their targets follow more accounts
//! (higher out-degree) and have far fewer followers (lower in-degree) — the
//! profile of users "already inclined to follow other users" and therefore
//! likely to reciprocate.
//!
//! We implement that as a curation step: the engine scans a candidate sample
//! of organic accounts and keeps a pool weighted by each account's latent
//! followback tendency (plus, optionally, a trait-specific quirk — Instalex
//! over-selects users with a high follow-after-like propensity, which is our
//! mechanistic stand-in for its unexplained like→follow anomaly in Table 5).

use footsteps_sim::account::AccountStore;
use footsteps_sim::behavior::followback_tendency;
use footsteps_sim::platform::PoolStats;
use footsteps_sim::population::Population;
use footsteps_sim::prelude::AccountId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a service curates its target pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetingBias {
    /// Strength of selection on followback tendency. 0 = uniform sampling;
    /// larger values concentrate the pool on eager followers. Acceptance is
    /// proportional to `tendency^strength`.
    pub tendency_strength: f64,
    /// Extra selection weight on the follow-after-like trait (the Instalex
    /// quirk). 0 for everyone else.
    pub follow_for_like_strength: f64,
}

impl TargetingBias {
    /// Uniform sampling (the baseline "random Instagram users" population).
    pub const UNIFORM: TargetingBias = TargetingBias {
        tendency_strength: 0.0,
        follow_for_like_strength: 0.0,
    };
}

/// A curated pool of target accounts with precomputed reciprocation stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetPool {
    members: Vec<AccountId>,
    stats: PoolStats,
}

impl TargetPool {
    /// Curate a pool of `size` accounts from `population` under `bias`,
    /// scanning candidates by rejection sampling.
    ///
    /// # Panics
    /// Panics if the population is empty or `size` is zero.
    pub fn curate(
        accounts: &AccountStore,
        population: &Population,
        bias: TargetingBias,
        size: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(size > 0, "pool size must be positive");
        assert!(!population.is_empty(), "population must be non-empty");
        let size = size.min(population.len());
        let mut members = Vec::with_capacity(size);
        let mut seen = std::collections::HashSet::with_capacity(size);
        // Rejection sampling against the max possible weight (1.0: both
        // traits are already in [0,1]). Members are distinct: a curated
        // target list never lists the same user twice.
        let mut guard = 0usize;
        let guard_max = size * 1_000;
        while members.len() < size {
            guard += 1;
            if guard > guard_max {
                // Pathological bias (e.g. enormous strength): fall back to
                // accepting the best-effort candidate to guarantee progress.
                let cand = population.sample_uniform(rng.gen());
                if seen.insert(cand) {
                    members.push(cand);
                }
                continue;
            }
            let cand = population.sample_uniform(rng.gen());
            if seen.contains(&cand) {
                continue;
            }
            let a = accounts.get(cand);
            let tendency = followback_tendency(a.following, a.followers, 0.5);
            let mut weight = tendency.powf(bias.tendency_strength);
            if bias.follow_for_like_strength > 0.0 {
                // Normalise the trait to [0,1] against a generous ceiling so
                // the weight stays a probability.
                let trait_norm = (a.reciprocity.follow_for_like / 0.02).min(1.0);
                weight *= trait_norm.powf(bias.follow_for_like_strength);
            }
            if rng.gen::<f64>() < weight {
                seen.insert(cand);
                members.push(cand);
            }
        }
        let stats = compute_stats(accounts, &members);
        Self { members, stats }
    }

    /// Pool members.
    pub fn members(&self) -> &[AccountId] {
        &self.members
    }

    /// Mean reciprocation propensities across the pool, for the batch path.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Sample one target uniformly from the pool.
    pub fn sample(&self, rng: &mut impl Rng) -> AccountId {
        self.members[rng.gen_range(0..self.members.len())]
    }

    /// Sample `n` targets without replacement (or all members if `n`
    /// exceeds the pool). Used by the event path, which must not like the
    /// same photo twice.
    pub fn sample_distinct(&self, n: usize, rng: &mut impl Rng) -> Vec<AccountId> {
        if n >= self.members.len() {
            return self.members.clone();
        }
        // Floyd's algorithm over indices. The set exists only for the
        // distinctness check; emit targets in pool order so the caller's
        // submission order (and with it every downstream platform RNG draw)
        // is independent of the set's per-instance hash state.
        let mut chosen = std::collections::HashSet::with_capacity(n);
        let len = self.members.len();
        for j in (len - n)..len {
            let t = rng.gen_range(0..=j);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        // footsteps-lint: allow(nondet-iter) — indices are sorted on the next line; emission is in pool order
        let mut idx: Vec<usize> = chosen.into_iter().collect();
        idx.sort_unstable();
        idx.into_iter().map(|i| self.members[i]).collect()
    }
}

/// Mean per-channel propensities over a member list.
fn compute_stats(accounts: &AccountStore, members: &[AccountId]) -> PoolStats {
    let n = members.len() as f64;
    let mut s = PoolStats::default();
    for &m in members {
        let r = accounts.get(m).reciprocity;
        s.like_for_like += r.like_for_like;
        s.follow_for_like += r.follow_for_like;
        s.follow_for_follow += r.follow_for_follow;
    }
    s.like_for_like /= n;
    s.follow_for_like /= n;
    s.follow_for_follow /= n;
    s
}

/// Median degrees of a sample of accounts; the measurement behind
/// Figures 3/4.
pub fn median_degrees(accounts: &AccountStore, sample: &[AccountId]) -> (u32, u32) {
    assert!(!sample.is_empty());
    let mut following: Vec<u32> = sample.iter().map(|&a| accounts.get(a).following).collect();
    let mut followers: Vec<u32> = sample.iter().map(|&a| accounts.get(a).followers).collect();
    following.sort_unstable();
    followers.sort_unstable();
    (following[following.len() / 2], followers[followers.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use footsteps_sim::country::Country;
    use footsteps_sim::net::{AsnKind, AsnRegistry};
    use footsteps_sim::population::{synthesize, PopulationConfig, ResidentialIndex};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn world(n: u32) -> (AccountStore, Population) {
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 10_000);
        }
        let idx = ResidentialIndex::build(&reg);
        let mut accounts = AccountStore::new();
        let cfg = PopulationConfig { size: n, ..PopulationConfig::default() };
        let mut rng = SmallRng::seed_from_u64(21);
        let pop = synthesize(&mut accounts, &idx, &cfg, &mut rng);
        (accounts, pop)
    }

    #[test]
    fn biased_pool_shifts_degrees_the_right_way() {
        let (accounts, pop) = world(12_000);
        let mut rng = SmallRng::seed_from_u64(1);
        let biased = TargetPool::curate(
            &accounts,
            &pop,
            TargetingBias { tendency_strength: 3.0, follow_for_like_strength: 0.0 },
            1_000,
            &mut rng,
        );
        let uniform = TargetPool::curate(&accounts, &pop, TargetingBias::UNIFORM, 1_000, &mut rng);
        let (b_out, b_in) = median_degrees(&accounts, biased.members());
        let (u_out, u_in) = median_degrees(&accounts, uniform.members());
        // §5.3: targets follow more accounts and have fewer followers.
        assert!(b_out > u_out, "out-degree: biased {b_out} vs uniform {u_out}");
        assert!(b_in < u_in, "in-degree: biased {b_in} vs uniform {u_in}");
    }

    #[test]
    fn biased_pool_has_higher_reciprocation_stats() {
        let (accounts, pop) = world(8_000);
        let mut rng = SmallRng::seed_from_u64(2);
        let biased = TargetPool::curate(
            &accounts,
            &pop,
            TargetingBias { tendency_strength: 3.0, follow_for_like_strength: 0.0 },
            800,
            &mut rng,
        );
        let uniform = TargetPool::curate(&accounts, &pop, TargetingBias::UNIFORM, 800, &mut rng);
        assert!(biased.stats().follow_for_follow > uniform.stats().follow_for_follow);
        assert!(biased.stats().like_for_like > uniform.stats().like_for_like);
    }

    #[test]
    fn follow_for_like_quirk_selects_the_trait() {
        let (accounts, pop) = world(8_000);
        let mut rng = SmallRng::seed_from_u64(3);
        let quirky = TargetPool::curate(
            &accounts,
            &pop,
            TargetingBias { tendency_strength: 1.0, follow_for_like_strength: 4.0 },
            800,
            &mut rng,
        );
        let plain = TargetPool::curate(
            &accounts,
            &pop,
            TargetingBias { tendency_strength: 1.0, follow_for_like_strength: 0.0 },
            800,
            &mut rng,
        );
        assert!(
            quirky.stats().follow_for_like > 2.5 * plain.stats().follow_for_like,
            "quirk {0} vs plain {1}",
            quirky.stats().follow_for_like,
            plain.stats().follow_for_like
        );
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let (accounts, pop) = world(2_000);
        let mut rng = SmallRng::seed_from_u64(4);
        let pool = TargetPool::curate(&accounts, &pop, TargetingBias::UNIFORM, 500, &mut rng);
        let picked = pool.sample_distinct(100, &mut rng);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), picked.len());
        assert_eq!(picked.len(), 100);
        // Requesting more than the pool returns the whole pool.
        assert_eq!(pool.sample_distinct(10_000, &mut rng).len(), 500);
    }

    #[test]
    fn curation_is_deterministic() {
        let (accounts, pop) = world(3_000);
        let curate = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            TargetPool::curate(
                &accounts,
                &pop,
                TargetingBias { tendency_strength: 2.0, follow_for_like_strength: 0.0 },
                200,
                &mut rng,
            )
            .members()
            .to_vec()
        };
        assert_eq!(curate(9), curate(9));
        assert_ne!(curate(9), curate(10));
    }
}
