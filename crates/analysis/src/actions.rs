//! Action-mix analysis (§5.3, Table 11).
//!
//! "Table 11 shows the proportion of action types performed by each AAS
//! throughout the measurement period. We normalize each value by the total
//! number actions performed by each service."

use footsteps_detect::ServiceSignature;
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};

/// Table 11 row: a group's action-type proportions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActionMixRow {
    /// Business group.
    pub group: ServiceGroup,
    /// Share per action type, indexed by [`ActionType::index`].
    pub shares: [f64; ActionType::COUNT],
    /// Total actions observed.
    pub total: u64,
}

impl ActionMixRow {
    /// Share of one action type.
    pub fn share_of(&self, ty: ActionType) -> f64 {
        self.shares[ty.index()]
    }
}

/// Compute a group's action mix over `[start, end)` from outbound traffic
/// matching the group's signatures (the actions the service *performed*).
pub fn action_mix(
    platform: &Platform,
    signatures: &[ServiceSignature],
    group: ServiceGroup,
    start: Day,
    end: Day,
) -> ActionMixRow {
    let sigs: Vec<&ServiceSignature> = signatures
        .iter()
        .filter(|s| group.members().contains(&s.service))
        .collect();
    let mut counts = [0u64; ActionType::COUNT];
    for (_, log) in platform.log.iter_range(start, end) {
        for (key, c) in log.outbound() {
            if sigs
                .iter()
                .any(|s| s.matches_outbound(key.asn, key.fingerprint))
            {
                for ty in ActionType::ALL {
                    counts[ty.index()] += u64::from(c.attempted_of(ty));
                }
            }
        }
    }
    let total: u64 = counts.iter().sum();
    let mut shares = [0.0; ActionType::COUNT];
    if total > 0 {
        for i in 0..ActionType::COUNT {
            shares[i] = counts[i] as f64 / total as f64;
        }
    }
    ActionMixRow { group, shares, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footsteps_sim::actions::ActionOutcome;
    use footsteps_sim::net::{AsnKind, AsnRegistry};
    use footsteps_sim::platform::PlatformConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::{BTreeSet, HashSet};

    #[test]
    fn mix_is_normalised_and_signature_scoped() {
        let mut reg = AsnRegistry::new();
        let host = reg.register("host", Country::Us, AsnKind::Hosting, 1_000);
        let other = reg.register("other", Country::Us, AsnKind::Hosting, 1_000);
        let mut p = Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(1));
        let fp = ClientFingerprint::SpoofedMobile { variant: 3 };
        let a = AccountId(0);
        p.log.record_outbound(Day(0), a, host, fp, ActionType::Like, ActionOutcome::Delivered, 64);
        p.log.record_outbound(Day(0), a, host, fp, ActionType::Follow, ActionOutcome::Blocked, 19);
        p.log.record_outbound(Day(0), a, host, fp, ActionType::Unfollow, ActionOutcome::Delivered, 17);
        // Traffic on an unrelated ASN must not count.
        p.log.record_outbound(Day(0), a, other, fp, ActionType::Comment, ActionOutcome::Delivered, 500);
        let sig = ServiceSignature {
            service: ServiceId::Boostgram,
            asns: BTreeSet::from([host]),
            fingerprints: HashSet::from([fp]),
            collusion: false,
        };
        let row = action_mix(&p, &[sig], ServiceGroup::Boostgram, Day(0), Day(1));
        assert_eq!(row.total, 100);
        assert!((row.share_of(ActionType::Like) - 0.64).abs() < 1e-9);
        assert!((row.share_of(ActionType::Follow) - 0.19).abs() < 1e-9);
        assert!((row.share_of(ActionType::Unfollow) - 0.17).abs() < 1e-9);
        assert_eq!(row.share_of(ActionType::Comment), 0.0);
        let sum: f64 = row.shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_yields_zero_total() {
        let mut reg = AsnRegistry::new();
        let host = reg.register("host", Country::Us, AsnKind::Hosting, 1_000);
        let p = Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(1));
        let sig = ServiceSignature {
            service: ServiceId::Boostgram,
            asns: BTreeSet::from([host]),
            fingerprints: HashSet::from([ClientFingerprint::SpoofedMobile { variant: 3 }]),
            collusion: false,
        };
        let row = action_mix(&p, &[sig], ServiceGroup::Boostgram, Day(0), Day(10));
        assert_eq!(row.total, 0);
        assert!(row.shares.iter().all(|&s| s == 0.0));
    }
}
