//! Customer-base analysis (§5.1, Table 6).
//!
//! All quantities here are computed from the *classifier's* view
//! (`footsteps-detect`), exactly as the paper computed them from its signal
//! pipeline — never from service-internal ground truth.

use footsteps_detect::Classification;
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};

/// The long-term definition for a business group: the minimum number of
/// *consecutive* active days that makes a customer long-term.
///
/// "For Insta* and Boostgram […] we define long-term users as those who
/// participate for more than seven consecutive days, strictly longer than
/// the length of the free trial period. For Hublaagram […] more than four
/// consecutive days."
pub fn long_term_min_consecutive_days(group: ServiceGroup) -> u32 {
    match group {
        ServiceGroup::InstaStar | ServiceGroup::Boostgram => 8,
        ServiceGroup::Hublaagram | ServiceGroup::Followersgratis => 5,
    }
}

/// A Table 6 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CustomerBaseRow {
    /// Business group.
    pub group: ServiceGroup,
    /// Distinct customers active in the window.
    pub customers: u64,
    /// Long-term customers.
    pub long_term: u64,
    /// Short-term customers.
    pub short_term: u64,
}

impl CustomerBaseRow {
    /// Long-term share of the customer base.
    pub fn long_term_share(&self) -> f64 {
        if self.customers == 0 {
            0.0
        } else {
            self.long_term as f64 / self.customers as f64
        }
    }
}

/// Long-term/short-term verdict for one customer of a group.
pub fn is_long_term(
    classification: &Classification,
    group: ServiceGroup,
    account: AccountId,
) -> bool {
    let min = long_term_min_consecutive_days(group);
    group
        .members()
        .iter()
        .any(|&s| classification.longest_consecutive_days(s, account) >= min)
}

/// Compute the Table 6 row for one group.
pub fn customer_base(classification: &Classification, group: ServiceGroup) -> CustomerBaseRow {
    let customers = classification.customers_of_group(group);
    let long_term = customers
        .iter()
        .filter(|&&a| is_long_term(classification, group, a))
        .count() as u64;
    let total = customers.len() as u64;
    CustomerBaseRow {
        group,
        customers: total,
        long_term,
        short_term: total - long_term,
    }
}

/// Share of a group's actions attempted by long-term customers ("by far most
/// of the actions attempted by the services come from long-term users":
/// 91.6% / 89.7% / 92.3%).
pub fn long_term_action_share(
    platform: &Platform,
    classification: &Classification,
    group: ServiceGroup,
    asns: &BTreeSet<AsnId>,
    start: Day,
    end: Day,
) -> f64 {
    let customers = classification.customers_of_group(group);
    let long_term: HashSet<AccountId> = customers
        .iter()
        .copied()
        .filter(|&a| is_long_term(classification, group, a))
        .collect();
    let mut lt_actions = 0u64;
    let mut total = 0u64;
    for (_, log) in platform.log.iter_range(start, end) {
        for (key, counts) in log.outbound() {
            if !asns.contains(&key.asn) || !customers.contains(&key.account) {
                continue;
            }
            let n = u64::from(counts.total_attempted());
            total += n;
            if long_term.contains(&key.account) {
                lt_actions += n;
            }
        }
        // Collusion groups are measured on the inbound side as well, since
        // receive-only customers otherwise contribute nothing.
        for ((account, source), counts) in log.inbound() {
            let Some(asn) = source else { continue };
            if !asns.contains(asn) || !customers.contains(account) {
                continue;
            }
            let n = u64::from(counts.total_attempted());
            total += n;
            if long_term.contains(account) {
                lt_actions += n;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        lt_actions as f64 / total as f64
    }
}

/// Account overlap between groups (§5.1: "account overlap is small").
pub fn overlap(
    classification: &Classification,
    a: ServiceGroup,
    b: ServiceGroup,
) -> usize {
    let ca = classification.customers_of_group(a);
    let cb = classification.customers_of_group(b);
    ca.intersection(&cb).count()
}

/// Long-term population dynamics over a window: daily active counts, birth
/// and death rates (§5.1 "User Stability").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Business group.
    pub group: ServiceGroup,
    /// Daily count of active long-term customers.
    pub daily_active_long_term: Vec<u64>,
    /// New long-term customers appearing per day (first activity).
    pub births_per_day: f64,
    /// Long-term customers disappearing per day (last activity).
    pub deaths_per_day: f64,
    /// Relative change of the daily-active count over the window.
    pub growth: f64,
}

/// Compute long-term stability dynamics for one group over `[start, end)`.
pub fn stability(
    classification: &Classification,
    group: ServiceGroup,
    start: Day,
    end: Day,
) -> StabilityReport {
    let window = end.days_since(start) as usize;
    let mut daily = vec![0u64; window];
    let mut births = 0u64;
    let mut deaths = 0u64;
    let customers = classification.customers_of_group(group);
    for &account in &customers {
        if !is_long_term(classification, group, account) {
            continue;
        }
        // Union of activity across the group's member services.
        let mut first: Option<Day> = None;
        let mut last: Option<Day> = None;
        for &s in group.members() {
            if let Some(f) = classification.first_seen.get(&(s, account)) {
                first = Some(first.map_or(*f, |x: Day| x.min(*f)));
            }
            if let Some(l) = classification.last_seen.get(&(s, account)) {
                last = Some(last.map_or(*l, |x: Day| x.max(*l)));
            }
        }
        let (Some(first), Some(last)) = (first, last) else { continue };
        for d in Day::range(first.max(start), (last.plus(1)).min(end)) {
            daily[(d.0 - start.0) as usize] += 1;
        }
        if first > start {
            births += 1;
        }
        if last.plus(1) < end {
            deaths += 1;
        }
    }
    let growth = if daily.first().copied().unwrap_or(0) == 0 {
        0.0
    } else {
        let a = daily[0] as f64;
        let b = *daily.last().expect("non-empty window") as f64;
        (b - a) / a
    };
    StabilityReport {
        group,
        daily_active_long_term: daily,
        births_per_day: births as f64 / window as f64,
        deaths_per_day: deaths as f64 / window as f64,
        growth,
    }
}

/// Long-term conversion rate: of customers whose first activity falls in
/// `[cohort_start, cohort_end)`, the share that became long-term (§5.1:
/// Boostgram 12%, Insta* 21%, Hublaagram 37%).
pub fn conversion_rate(
    classification: &Classification,
    group: ServiceGroup,
    cohort_start: Day,
    cohort_end: Day,
) -> f64 {
    let mut cohort = 0u64;
    let mut converted = 0u64;
    for &account in &classification.customers_of_group(group) {
        let first = group
            .members()
            .iter()
            .filter_map(|&s| classification.first_seen.get(&(s, account)).copied())
            .min();
        let Some(first) = first else { continue };
        if first >= cohort_start && first < cohort_end {
            cohort += 1;
            if is_long_term(classification, group, account) {
                converted += 1;
            }
        }
    }
    if cohort == 0 {
        0.0
    } else {
        converted as f64 / cohort as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classification_with(
        entries: &[(ServiceId, u32, &[u32])], // (service, account, active days)
    ) -> Classification {
        let mut c = Classification::default();
        for &(service, account, days) in entries {
            let account = AccountId(account);
            c.customers.entry(service).or_default().insert(account);
            let days: Vec<Day> = days.iter().map(|&d| Day(d)).collect();
            c.first_seen.insert((service, account), days[0]);
            c.last_seen.insert((service, account), *days.last().unwrap());
            c.active_days.insert((service, account), days);
        }
        c
    }

    #[test]
    fn long_term_definitions_match_paper() {
        assert_eq!(long_term_min_consecutive_days(ServiceGroup::InstaStar), 8);
        assert_eq!(long_term_min_consecutive_days(ServiceGroup::Boostgram), 8);
        assert_eq!(long_term_min_consecutive_days(ServiceGroup::Hublaagram), 5);
    }

    #[test]
    fn table6_split() {
        // Account 1: 10 consecutive days → long-term for Boostgram.
        // Account 2: 3 days → short-term.
        let c = classification_with(&[
            (ServiceId::Boostgram, 1, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
            (ServiceId::Boostgram, 2, &[0, 1, 2]),
        ]);
        let row = customer_base(&c, ServiceGroup::Boostgram);
        assert_eq!(row.customers, 2);
        assert_eq!(row.long_term, 1);
        assert_eq!(row.short_term, 1);
        assert!((row.long_term_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hublaagram_uses_the_four_day_rule() {
        // 5 consecutive days: long-term for Hublaagram, short-term for
        // a reciprocity group.
        let c = classification_with(&[
            (ServiceId::Hublaagram, 1, &[0, 1, 2, 3, 4]),
            (ServiceId::Boostgram, 2, &[0, 1, 2, 3, 4]),
        ]);
        assert!(is_long_term(&c, ServiceGroup::Hublaagram, AccountId(1)));
        assert!(!is_long_term(&c, ServiceGroup::Boostgram, AccountId(2)));
    }

    #[test]
    fn nonconsecutive_days_do_not_count() {
        // 10 active days but never more than 4 in a row.
        let c = classification_with(&[(
            ServiceId::Boostgram,
            1,
            &[0, 1, 2, 3, 10, 11, 12, 13, 20, 21],
        )]);
        assert!(!is_long_term(&c, ServiceGroup::Boostgram, AccountId(1)));
    }

    #[test]
    fn overlap_counts_intersection() {
        let c = classification_with(&[
            (ServiceId::Boostgram, 1, &[0]),
            (ServiceId::Boostgram, 2, &[0]),
            (ServiceId::Instalex, 2, &[0]),
            (ServiceId::Instazood, 3, &[0]),
        ]);
        assert_eq!(overlap(&c, ServiceGroup::Boostgram, ServiceGroup::InstaStar), 1);
    }

    #[test]
    fn stability_births_deaths_and_growth() {
        // One LT account active all window, one born mid-window (still
        // active at end), one dying mid-window.
        let c = classification_with(&[
            (ServiceId::Boostgram, 1, &(0..30).collect::<Vec<u32>>()),
            (ServiceId::Boostgram, 2, &(10..30).collect::<Vec<u32>>()),
            (ServiceId::Boostgram, 3, &(0..15).collect::<Vec<u32>>()),
        ]);
        let r = stability(&c, ServiceGroup::Boostgram, Day(0), Day(30));
        assert_eq!(r.daily_active_long_term[0], 2, "accounts 1 and 3");
        assert_eq!(r.daily_active_long_term[12], 3, "all three");
        assert_eq!(*r.daily_active_long_term.last().unwrap(), 2, "1 and 2");
        assert!((r.births_per_day - 1.0 / 30.0).abs() < 1e-12);
        assert!((r.deaths_per_day - 1.0 / 30.0).abs() < 1e-12);
        // One birth exactly offsets one death: 2 active at both ends.
        assert_eq!(r.growth, 0.0);
    }

    #[test]
    fn conversion_rate_cohorts() {
        let c = classification_with(&[
            // Born day 5, long-term.
            (ServiceId::Boostgram, 1, &(5..20).collect::<Vec<u32>>()),
            // Born day 6, short-term.
            (ServiceId::Boostgram, 2, &[6, 7]),
            // Born day 40 — outside cohort.
            (ServiceId::Boostgram, 3, &(40..60).collect::<Vec<u32>>()),
        ]);
        let rate = conversion_rate(&c, ServiceGroup::Boostgram, Day(0), Day(30));
        assert!((rate - 0.5).abs() < 1e-12);
    }
}
