//! The "engagement rate" (§2).
//!
//! The influencer economy the services sell into evaluates accounts by
//!
//! ```text
//! ER = (likes + comments) / followers
//! ```
//!
//! and the services "commonly offer to manipulate one or more of its
//! components as a key aspect of their service offering". The metric is
//! what a customer is actually buying; the `control_panel` example and the
//! ablation analyses report it.

use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};

/// An engagement-rate snapshot for one account.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Engagement {
    /// Likes received over the window.
    pub likes: u64,
    /// Comments received over the window.
    pub comments: u64,
    /// Follower count at measurement time.
    pub followers: u32,
}

impl Engagement {
    /// The engagement rate; `None` for accounts with no followers (the
    /// metric is undefined, not zero — a fresh account is not "disengaged").
    pub fn rate(&self) -> Option<f64> {
        if self.followers == 0 {
            None
        } else {
            Some((self.likes + self.comments) as f64 / f64::from(self.followers))
        }
    }
}

/// Measure an account's engagement over `[start, end)` from the platform
/// log (inbound likes/comments) and its current follower count.
pub fn engagement(
    platform: &Platform,
    account: AccountId,
    start: Day,
    end: Day,
) -> Engagement {
    let likes = platform.log.total_inbound(account, ActionType::Like, start, end);
    let comments = platform
        .log
        .total_inbound(account, ActionType::Comment, start, end);
    Engagement {
        likes,
        comments,
        followers: platform.accounts.get(account).followers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footsteps_sim::account::{ProfileKind, ReciprocityProfile};
    use footsteps_sim::net::{AsnKind, AsnRegistry};
    use footsteps_sim::platform::PlatformConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rate_formula_matches_section2() {
        let e = Engagement { likes: 80, comments: 20, followers: 1_000 };
        assert!((e.rate().unwrap() - 0.1).abs() < 1e-12);
        let fresh = Engagement { likes: 5, comments: 0, followers: 0 };
        assert_eq!(fresh.rate(), None, "undefined for zero followers");
    }

    #[test]
    fn engagement_reads_the_log() {
        let mut reg = AsnRegistry::new();
        reg.register("res", Country::Us, AsnKind::Residential, 100);
        let host = reg.register("host", Country::Us, AsnKind::Hosting, 100);
        let mut p = Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(1));
        let a = p.accounts.create(
            SimTime::EPOCH,
            ProfileKind::Organic,
            Country::Us,
            AsnId(0),
            10,
            200,
            ReciprocityProfile::SILENT,
        );
        p.begin_day(Day(0));
        p.deposit_inbound(a, ActionType::Like, 30, 0, Some(host), None);
        p.deposit_inbound(a, ActionType::Comment, 10, 0, Some(host), None);
        let e = engagement(&p, a, Day(0), Day(1));
        assert_eq!((e.likes, e.comments, e.followers), (30, 10, 200));
        assert!((e.rate().unwrap() - 0.2).abs() < 1e-12);
        // Out-of-window actions don't count.
        let e2 = engagement(&p, a, Day(5), Day(6));
        assert_eq!(e2.likes, 0);
    }
}
