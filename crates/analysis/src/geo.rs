//! Geolocation analyses (§5.1, Table 7, Figure 2).
//!
//! Customers are located by the platform's IP-geolocation answer for their
//! most frequent login country; services by the countries of the ASNs their
//! traffic originates from (plus their self-reported operating country from
//! the catalog).

use footsteps_detect::{Classification, ServiceSignature};
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};

/// Figure 2: a group's customer distribution over countries, with countries
/// under the cutoff folded into `OTHER`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryDistribution {
    /// Business group.
    pub group: ServiceGroup,
    /// `(country, share)` for countries at or above the cutoff, descending
    /// by share; the `Other` entry aggregates the rest.
    pub shares: Vec<(Country, f64)>,
    /// Customers with no login record (excluded from shares).
    pub unlocated: u64,
}

impl CountryDistribution {
    /// Share for one country (0 if folded into OTHER).
    pub fn share_of(&self, country: Country) -> f64 {
        self.shares
            .iter()
            .find(|(c, _)| *c == country)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }

    /// The top non-OTHER country.
    pub fn top_country(&self) -> Option<Country> {
        self.shares
            .iter()
            .filter(|(c, _)| *c != Country::Other)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
            .map(|(c, _)| *c)
    }
}

/// Compute Figure 2's distribution for one group. `cutoff` is the minimum
/// share displayed separately (the paper uses 5%).
pub fn customer_countries(
    platform: &Platform,
    classification: &Classification,
    group: ServiceGroup,
    cutoff: f64,
) -> CountryDistribution {
    let mut counts = vec![0u64; Country::ALL.len()];
    let mut located = 0u64;
    let mut unlocated = 0u64;
    for account in classification.customers_of_group(group) {
        match platform.login_country(account) {
            Some(c) => {
                counts[c.index()] += 1;
                located += 1;
            }
            None => unlocated += 1,
        }
    }
    let mut shares = Vec::new();
    let mut other = 0.0;
    if located > 0 {
        for c in Country::ALL {
            let share = counts[c.index()] as f64 / located as f64;
            if c == Country::Other || share < cutoff {
                other += share;
            } else {
                shares.push((c, share));
            }
        }
    }
    shares.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    shares.push((Country::Other, other));
    CountryDistribution { group, shares, unlocated }
}

/// A Table 7 row: where a service claims to operate vs where its traffic
/// actually comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceLocationRow {
    /// Business group.
    pub group: ServiceGroup,
    /// Self-reported operating country (from the service's website).
    pub operating_country: Country,
    /// Countries of the ASNs the signature traffic originates from.
    pub asn_countries: Vec<Country>,
}

/// Compute Table 7 for a group from its signatures and the ASN registry.
pub fn service_location(
    platform: &Platform,
    signatures: &[ServiceSignature],
    group: ServiceGroup,
) -> ServiceLocationRow {
    let operating_country = footsteps_aas::catalog::service_location(group.members()[0])
        .operating_country;
    let mut asn_countries: Vec<Country> = signatures
        .iter()
        .filter(|s| group.members().contains(&s.service))
        .flat_map(|s| s.asns.iter())
        .map(|&a| platform.asns.get(a).country)
        .collect();
    asn_countries.sort_by_key(|c| c.index());
    asn_countries.dedup();
    ServiceLocationRow { group, operating_country, asn_countries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footsteps_sim::account::{ProfileKind, ReciprocityProfile};
    use footsteps_sim::net::{AsnKind, AsnRegistry};
    use footsteps_sim::platform::PlatformConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn platform() -> Platform {
        let mut reg = AsnRegistry::new();
        reg.register("res-us", Country::Us, AsnKind::Residential, 1_000);
        reg.register("res-id", Country::Id, AsnKind::Residential, 1_000);
        reg.register("res-br", Country::Br, AsnKind::Residential, 1_000);
        Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(1))
    }

    fn user(p: &mut Platform, country: Country, asn: u32) -> AccountId {
        let id = p.accounts.create(
            SimTime::EPOCH,
            ProfileKind::Organic,
            country,
            AsnId(asn),
            10,
            10,
            ReciprocityProfile::SILENT,
        );
        p.record_login(id);
        id
    }

    #[test]
    fn figure2_folds_small_countries_into_other() {
        let mut p = platform();
        let mut c = Classification::default();
        // 10 ID users, 9 US users, 1 BR user → with a 15% cutoff BR folds.
        for _ in 0..10 {
            let a = user(&mut p, Country::Id, 1);
            c.customers.entry(ServiceId::Hublaagram).or_default().insert(a);
        }
        for _ in 0..9 {
            let a = user(&mut p, Country::Us, 0);
            c.customers.entry(ServiceId::Hublaagram).or_default().insert(a);
        }
        let b = user(&mut p, Country::Br, 2);
        c.customers.entry(ServiceId::Hublaagram).or_default().insert(b);
        let dist = customer_countries(&p, &c, ServiceGroup::Hublaagram, 0.15);
        assert_eq!(dist.top_country(), Some(Country::Id));
        assert!((dist.share_of(Country::Id) - 0.5).abs() < 1e-9);
        assert!((dist.share_of(Country::Us) - 0.45).abs() < 1e-9);
        assert_eq!(dist.share_of(Country::Br), 0.0, "folded into OTHER");
        let other = dist.shares.iter().find(|(c, _)| *c == Country::Other).unwrap().1;
        assert!((other - 0.05).abs() < 1e-9);
        // Shares sum to one.
        let total: f64 = dist.shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(dist.unlocated, 0);
    }

    #[test]
    fn unlocated_customers_are_counted_separately() {
        let mut p = platform();
        let mut c = Classification::default();
        let a = p.accounts.create(
            SimTime::EPOCH,
            ProfileKind::Organic,
            Country::Us,
            AsnId(0),
            0,
            0,
            ReciprocityProfile::SILENT,
        );
        // No logins recorded.
        c.customers.entry(ServiceId::Boostgram).or_default().insert(a);
        let dist = customer_countries(&p, &c, ServiceGroup::Boostgram, 0.05);
        assert_eq!(dist.unlocated, 1);
    }
}
