//! # footsteps-analysis
//!
//! The measurement analytics of *Following Their Footsteps* §5: customer
//! base and stability (Table 6, §5.1), login-geolocation distributions
//! (Table 7, Figure 2), revenue estimation for both service archetypes
//! (Tables 8–10) — scoreable against the services' ground-truth ledgers —
//! action mixes (Table 11), targeting-bias degree CDFs (Figures 3/4), a
//! small stats toolkit (ECDF/percentiles), and the plain-text table renderer
//! used by every experiment binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod actions;
pub mod customers;
pub mod engagement;
pub mod geo;
pub mod report;
pub mod revenue;
pub mod stats;
pub mod targeting;

pub use actions::{action_mix, ActionMixRow};
pub use customers::{
    conversion_rate, customer_base, is_long_term, long_term_action_share,
    long_term_min_consecutive_days, overlap, stability, CustomerBaseRow, StabilityReport,
};
pub use engagement::{engagement, Engagement};
pub use geo::{customer_countries, service_location, CountryDistribution, ServiceLocationRow};
pub use report::{pct, ratio, thousands, Align, Table};
pub use revenue::{
    hublaagram_revenue, hublaagram_revenue_windows, new_vs_preexisting, paid_days_beyond_trial,
    reciprocity_revenue, HublaagramRevenue, NewVsPreexisting, ReciprocityRevenueRow,
};
pub use stats::{
    mean, median, median_u32, nearest_rank, percentile, percentile_u32, percentiles,
    quantile_sorted_runs, Ecdf, Welford,
};
pub use targeting::{
    sample_baseline, sample_targets, DegreeSample, TargetingFigures,
};
