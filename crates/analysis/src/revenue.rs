//! Revenue estimation (§5.2, Tables 8–10).
//!
//! The paper estimates service revenue purely from *observed activity*; our
//! simulation additionally has the services' ground-truth payment ledgers,
//! so every estimator here can be scored against the truth — a validation
//! the paper could not perform (EXPERIMENTS.md reports both).

use crate::customers::long_term_min_consecutive_days;
use footsteps_aas::catalog::{hublaagram_catalog, reciprocity_pricing, Cents};
use footsteps_detect::Classification;
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Table 8 row: a reciprocity service's estimated monthly gross revenue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReciprocityRevenueRow {
    /// Service priced (Insta* gets two rows: Instazood-rate low, Instalex-
    /// rate high).
    pub service: ServiceId,
    /// Accounts identified as paying (active beyond trial) in the window.
    pub paid_accounts: u64,
    /// Estimated gross revenue over the window, in cents.
    pub revenue_cents: Cents,
}

/// Days each classified customer of `group` was active beyond the service's
/// trial period, within `[start, end)`.
///
/// §5.2: "we know the account is paid when it is active in the AAS for
/// longer than the trial period. For each paid account we estimate the
/// amount of money paid to the service by measuring the number of days the
/// account is active beyond a trial period."
pub fn paid_days_beyond_trial(
    classification: &Classification,
    group: ServiceGroup,
    trial_days: u32,
    start: Day,
    end: Day,
) -> HashMap<AccountId, u32> {
    let mut result = HashMap::new();
    for &account in &classification.customers_of_group(group) {
        // Union of active days across the group's member services,
        // restricted to the window.
        let mut days: Vec<Day> = group
            .members()
            .iter()
            .flat_map(|&s| {
                classification
                    .active_days
                    .get(&(s, account))
                    .into_iter()
                    .flatten()
                    .copied()
            })
            .filter(|&d| d >= start && d < end)
            .collect();
        days.sort_unstable();
        days.dedup();
        // An account is paying once its *total tenure* exceeds the trial;
        // everything after the first `trial_days` active days is paid time.
        if days.len() as u32 > trial_days {
            result.insert(account, days.len() as u32 - trial_days);
        }
    }
    result
}

/// Estimate a reciprocity service's monthly revenue using its minimum paid
/// duration as the conversion from paid days to money.
pub fn reciprocity_revenue(
    classification: &Classification,
    group: ServiceGroup,
    priced_as: ServiceId,
    start: Day,
    end: Day,
) -> ReciprocityRevenueRow {
    let pricing = reciprocity_pricing(priced_as);
    let paid = paid_days_beyond_trial(
        classification,
        group,
        pricing.delivered_trial_days,
        start,
        end,
    );
    let mut revenue = 0u64;
    // footsteps-lint: allow(nondet-iter) — revenue is a sum over paid blocks, order-insensitive
    for &days in paid.values() {
        // Paid time is purchased in blocks of the minimum duration.
        let blocks = days.div_ceil(pricing.min_paid_days.max(1));
        revenue += u64::from(blocks) * pricing.min_paid_cents;
    }
    ReciprocityRevenueRow {
        service: priced_as,
        paid_accounts: paid.len() as u64,
        revenue_cents: revenue,
    }
}

/// Table 9: the Hublaagram revenue accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HublaagramRevenue {
    /// Accounts that paid the lifetime no-outbound fee (receive-only).
    pub no_outbound_accounts: u64,
    /// One-time revenue from no-outbound fees, cents.
    pub no_outbound_cents: Cents,
    /// Accounts per monthly tier index (Table 3 order).
    pub monthly_tier_accounts: Vec<u64>,
    /// Monthly revenue per tier, cents.
    pub monthly_tier_cents: Vec<Cents>,
    /// Accounts that bought one-time like packages.
    pub one_time_accounts: u64,
    /// One-time like revenue, cents.
    pub one_time_cents: Cents,
    /// Estimated ad impressions over the window.
    pub ad_impressions: u64,
    /// Ad revenue at the low CPM bound, cents.
    pub ads_low_cents: Cents,
    /// Ad revenue at the high CPM bound, cents.
    pub ads_high_cents: Cents,
}

impl HublaagramRevenue {
    /// Total monthly revenue, low CPM bound.
    pub fn monthly_total_low(&self) -> Cents {
        self.monthly_tier_cents.iter().sum::<u64>() + self.one_time_cents + self.ads_low_cents
    }

    /// Total monthly revenue, high CPM bound.
    pub fn monthly_total_high(&self) -> Cents {
        self.monthly_tier_cents.iter().sum::<u64>() + self.one_time_cents + self.ads_high_cents
    }
}

/// Run the paper's Hublaagram accounting over `[start, end)` (§5.2).
///
/// * **No-outbound**: accounts that only receive inbound actions from the
///   service and never produce outbound ones.
/// * **Paid likes**: accounts with any photo exceeding 160 likes/hour.
/// * **One-time vs monthly**: photos with >2,000 likes in a day on accounts
///   whose daily median likes/photo is <250 count as one-time purchases;
///   otherwise the account's median likes/photo maps into the monthly tiers.
/// * **Ads**: every ≈80 free likes / ≈40 free follows delivered corresponds
///   to one free request showing at least one pop-under (conservatively one).
pub fn hublaagram_revenue(
    platform: &Platform,
    classification: &Classification,
    service_asns: &BTreeSet<AsnId>,
    start: Day,
    end: Day,
) -> HublaagramRevenue {
    hublaagram_revenue_windows(platform, classification, service_asns, start, end, start, end)
}

/// [`hublaagram_revenue`] with a separate accounting window for the
/// *lifetime* no-outbound fee: the paper counts no-outbound payers over its
/// whole measurement period while pricing like services monthly.
#[allow(clippy::too_many_arguments)]
pub fn hublaagram_revenue_windows(
    platform: &Platform,
    classification: &Classification,
    service_asns: &BTreeSet<AsnId>,
    start: Day,
    end: Day,
    period_start: Day,
    period_end: Day,
) -> HublaagramRevenue {
    let catalog = hublaagram_catalog();
    let customers = classification.customers_of_group(ServiceGroup::Hublaagram);

    // Per-account aggregates over the window.
    let mut outbound_total: HashMap<AccountId, u64> = HashMap::new();
    let mut inbound_like_total: HashMap<AccountId, u64> = HashMap::new();
    let mut inbound_follow_total: HashMap<AccountId, u64> = HashMap::new();
    // Per-account per-photo-day like stats.
    let mut photo_day_likes: HashMap<AccountId, Vec<(u32, u32)>> = HashMap::new(); // (total, max_hourly)
    for (_, log) in platform.log.iter_range(start, end) {
        for (key, counts) in log.outbound() {
            if customers.contains(&key.account) && service_asns.contains(&key.asn) {
                *outbound_total.entry(key.account).or_insert(0) +=
                    u64::from(counts.total_attempted());
            }
        }
        for ((account, source), counts) in log.inbound() {
            let Some(asn) = source else { continue };
            if customers.contains(account) && service_asns.contains(asn) {
                *inbound_like_total.entry(*account).or_insert(0) +=
                    u64::from(counts.delivered[ActionType::Like.index()]);
                *inbound_follow_total.entry(*account).or_insert(0) +=
                    u64::from(counts.delivered[ActionType::Follow.index()]);
            }
        }
        for (media, stats) in &log.photo_likes {
            let owner = platform.accounts.media(*media).owner;
            if customers.contains(&owner) {
                photo_day_likes
                    .entry(owner)
                    .or_default()
                    .push((stats.total, stats.max_hourly));
            }
        }
    }

    // --- no-outbound accounts (over the full measurement period) -----------
    let mut period_inbound: HashSet<AccountId> = HashSet::new();
    let mut period_outbound: HashSet<AccountId> = HashSet::new();
    for (_, log) in platform.log.iter_range(period_start, period_end) {
        for (key, counts) in log.outbound() {
            if customers.contains(&key.account)
                && service_asns.contains(&key.asn)
                && counts.total_attempted() > 0
            {
                period_outbound.insert(key.account);
            }
        }
        for ((account, source), counts) in log.inbound() {
            let Some(asn) = source else { continue };
            if customers.contains(account)
                && service_asns.contains(asn)
                && counts.total_attempted() > 0
            {
                period_inbound.insert(*account);
            }
        }
    }
    let _ = &outbound_total;
    let no_outbound_accounts = period_inbound
        // footsteps-lint: allow(nondet-iter) — order-insensitive count
        .iter()
        .filter(|a| !period_outbound.contains(a))
        .count() as u64;
    let no_outbound_cents = no_outbound_accounts * catalog.no_outbound_cents;

    // --- paid like accounts ----------------------------------------------------
    let mut monthly_tier_accounts = vec![0u64; catalog.monthly.len()];
    let mut one_time_accounts = 0u64;
    let mut one_time_cents = 0u64;
    let mut paid_like_delivered = 0u64;
    // footsteps-lint: allow(nondet-iter) — per-account tier counters; totals do not depend on visit order
    for (&account, days) in &photo_day_likes {
        let _ = account;
        let paid = days.iter().any(|&(_, hourly)| hourly > catalog.free_likes_per_hour_cap);
        if !paid {
            continue;
        }
        paid_like_delivered += days.iter().map(|&(t, _)| u64::from(t)).sum::<u64>();
        // Median likes/photo over *paid-rate* delivery days: mixing in
        // free-tier days would drag subscription accounts into lower tiers.
        let paid_totals: Vec<u32> = days
            .iter()
            .filter(|&&(_, hourly)| hourly > catalog.free_likes_per_hour_cap)
            .map(|&(t, _)| t)
            .collect();
        let median = crate::stats::median_u32(&paid_totals).unwrap_or(0.0);
        // One-time: a ≥2,000-like burst on an account whose *overall* daily
        // median is below the smallest monthly tier (a subscriber's photos
        // routinely exceed the tier floor; a one-off buyer's do not).
        let all_totals: Vec<u32> = days.iter().map(|&(t, _)| t).collect();
        let all_median = crate::stats::median_u32(&all_totals).unwrap_or(0.0);
        if all_median < f64::from(catalog.monthly[0].min_likes)
            && paid_totals.iter().any(|&t| t >= catalog.one_time[0].likes)
        {
            one_time_accounts += 1;
            one_time_cents += catalog.one_time[0].cents;
            continue;
        }
        // Monthly: map the median likes/photo into a tier.
        for (i, tier) in catalog.monthly.iter().enumerate() {
            let upper_open = i + 1 == catalog.monthly.len();
            if median >= f64::from(tier.min_likes)
                && (upper_open || median < f64::from(tier.max_likes))
            {
                monthly_tier_accounts[i] += 1;
                break;
            }
        }
    }
    let monthly_tier_cents: Vec<Cents> = monthly_tier_accounts
        .iter()
        .zip(&catalog.monthly)
        .map(|(&n, t)| n * t.monthly_cents)
        .collect();

    // --- ads -------------------------------------------------------------------
    // Free deliveries = everything not attributed to paid like service.
    // footsteps-lint: allow(nondet-iter) — order-insensitive sum
    let total_likes: u64 = inbound_like_total.values().sum();
    let free_likes = total_likes.saturating_sub(paid_like_delivered);
    // footsteps-lint: allow(nondet-iter) — order-insensitive sum
    let free_follows: u64 = inbound_follow_total.values().sum();
    let ad_impressions = free_likes / u64::from(catalog.free_likes_per_request.max(1))
        + free_follows / u64::from(catalog.free_follows_per_request.max(1));
    let (cpm_low, cpm_high) = catalog.cpm_cents;
    let ads_low_cents = ad_impressions * cpm_low / 1_000;
    let ads_high_cents = ad_impressions * cpm_high / 1_000;

    HublaagramRevenue {
        no_outbound_accounts,
        no_outbound_cents,
        monthly_tier_accounts,
        monthly_tier_cents,
        one_time_accounts,
        one_time_cents,
        ad_impressions,
        ads_low_cents,
        ads_high_cents,
    }
}

/// Table 10: share of a group's revenue from new vs preexisting payers over
/// a month, estimated from activity: a paying account is "new" if it was not
/// already paying (active beyond trial) before the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NewVsPreexisting {
    /// Share of revenue from first-time payers.
    pub new_share: f64,
    /// Share of revenue from repeat payers.
    pub preexisting_share: f64,
}

/// Estimate the Table 10 split for a group from classified activity.
pub fn new_vs_preexisting(
    classification: &Classification,
    group: ServiceGroup,
    window_start: Day,
    window_end: Day,
) -> NewVsPreexisting {
    let trial = long_term_min_consecutive_days(group) - 1;
    // Payers before the window.
    let prior = paid_days_beyond_trial(classification, group, trial, Day(0), window_start);
    let current = paid_days_beyond_trial(classification, group, trial, window_start, window_end);
    let mut new = 0u64;
    let mut pre = 0u64;
    for (account, days) in &current {
        if prior.contains_key(account) {
            pre += u64::from(*days);
        } else {
            new += u64::from(*days);
        }
    }
    let total = (new + pre).max(1) as f64;
    NewVsPreexisting {
        new_share: new as f64 / total,
        preexisting_share: pre as f64 / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classification_with(
        entries: &[(ServiceId, u32, Vec<u32>)],
    ) -> Classification {
        let mut c = Classification::default();
        for (service, account, days) in entries {
            let account = AccountId(*account);
            c.customers.entry(*service).or_default().insert(account);
            let days: Vec<Day> = days.iter().map(|&d| Day(d)).collect();
            c.first_seen.insert((*service, account), days[0]);
            c.last_seen.insert((*service, account), *days.last().unwrap());
            c.active_days.insert((*service, account), days);
        }
        c
    }

    #[test]
    fn paid_days_excludes_trial() {
        let c = classification_with(&[
            (ServiceId::Boostgram, 1, (0..10).collect()), // 10 days, 3-day trial → 7 paid
            (ServiceId::Boostgram, 2, (0..3).collect()),  // within trial → not paid
        ]);
        let paid = paid_days_beyond_trial(&c, ServiceGroup::Boostgram, 3, Day(0), Day(30));
        assert_eq!(paid.get(&AccountId(1)), Some(&7));
        assert!(!paid.contains_key(&AccountId(2)));
    }

    #[test]
    fn boostgram_revenue_uses_monthly_blocks() {
        let c = classification_with(&[
            (ServiceId::Boostgram, 1, (0..33).collect()), // 30 paid days → 1 block
            (ServiceId::Boostgram, 2, (0..40).collect()), // 37 paid days → 2 blocks
        ]);
        let row = reciprocity_revenue(
            &c,
            ServiceGroup::Boostgram,
            ServiceId::Boostgram,
            Day(0),
            Day(40),
        );
        assert_eq!(row.paid_accounts, 2);
        assert_eq!(row.revenue_cents, 3 * 9_900);
    }

    #[test]
    fn instastar_low_and_high_bounds() {
        // One account, 14 active days. Instazood prices (low): 7 paid days ×
        // $0.34 = $2.38. Instalex prices (high): 7 paid days → 1 week block =
        // $3.15.
        let c = classification_with(&[(ServiceId::Instalex, 1, (0..14).collect())]);
        let low = reciprocity_revenue(&c, ServiceGroup::InstaStar, ServiceId::Instazood, Day(0), Day(20));
        let high = reciprocity_revenue(&c, ServiceGroup::InstaStar, ServiceId::Instalex, Day(0), Day(20));
        assert_eq!(low.revenue_cents, 7 * 34);
        assert_eq!(high.revenue_cents, 315);
        assert!(low.paid_accounts == 1 && high.paid_accounts == 1);
    }

    #[test]
    fn hublaagram_accounting_on_synthetic_logs() {
        use footsteps_sim::account::{ProfileKind, ReciprocityProfile};
        use footsteps_sim::net::{AsnKind, AsnRegistry};
        use footsteps_sim::platform::{Platform, PlatformConfig};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let mut reg = AsnRegistry::new();
        reg.register("res", Country::Us, AsnKind::Residential, 1_000);
        let host = reg.register("host", Country::Gb, AsnKind::Hosting, 1_000);
        let mut p = Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(1));
        let mut class = Classification::default();
        let user = |p: &mut Platform| {
            p.accounts.create(
                SimTime::EPOCH,
                ProfileKind::Organic,
                Country::Id,
                AsnId(0),
                10,
                10,
                ReciprocityProfile::SILENT,
            )
        };

        // Account A: receive-only (no-outbound payer profile).
        let a = user(&mut p);
        // Account B: free user (inbound under the hourly cap + outbound).
        let b = user(&mut p);
        // Account C: monthly tier-1 subscriber (500-1000 likes/photo at a
        // paid delivery rate) who also gets free likes on other days.
        let c = user(&mut p);
        for x in [a, b, c] {
            class.customers.entry(ServiceId::Hublaagram).or_default().insert(x);
        }
        let fp = footsteps_sim::prelude::ClientFingerprint::SpoofedMobile { variant: 4 };

        p.begin_day(Day(0));
        let ip = p.asns.ip_in(host, 0);
        let b_media = p.post_media(b, AsnId(0), ip);
        let c_media = p.post_media(c, AsnId(0), ip);
        // A and B receive free-rate likes; B also produces outbound.
        p.deposit_inbound(a, ActionType::Like, 80, 0, Some(host), None);
        p.deposit_inbound(b, ActionType::Like, 80, 0, Some(host), Some((b_media, 120)));
        p.log.record_outbound(
            Day(0),
            b,
            host,
            fp,
            ActionType::Like,
            footsteps_sim::prelude::ActionOutcome::Delivered,
            20,
        );
        // C gets a paid-rate tier delivery (700 likes at 420/hour).
        p.deposit_inbound(c, ActionType::Like, 700, 0, Some(host), Some((c_media, 420)));
        // And a free-rate day later in the window.
        p.begin_day(Day(1));
        p.deposit_inbound(c, ActionType::Like, 80, 0, Some(host), Some((c_media, 120)));

        let asns: BTreeSet<AsnId> = [host].into();
        let rev = hublaagram_revenue(&p, &class, &asns, Day(0), Day(5));
        assert_eq!(rev.no_outbound_accounts, 2, "A and C never produce outbound");
        assert_eq!(rev.monthly_tier_accounts, vec![0, 1, 0, 0], "C maps to tier 500-1000");
        assert_eq!(rev.one_time_accounts, 0);
        assert_eq!(rev.monthly_tier_cents[1], 3_000);
        // Ads: the paper "conservatively excludes paying customer accounts"
        // from the impression estimate, so C's free-rate day is ignored:
        // (80 + 80) / 80-per-request = 2 impressions.
        assert_eq!(rev.ad_impressions, 2);
    }

    #[test]
    fn one_time_burst_is_distinguished_from_tiers() {
        use footsteps_sim::account::{ProfileKind, ReciprocityProfile};
        use footsteps_sim::net::{AsnKind, AsnRegistry};
        use footsteps_sim::platform::{Platform, PlatformConfig};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let mut reg = AsnRegistry::new();
        reg.register("res", Country::Us, AsnKind::Residential, 1_000);
        let host = reg.register("host", Country::Gb, AsnKind::Hosting, 1_000);
        let mut p = Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(2));
        let buyer = p.accounts.create(
            SimTime::EPOCH,
            ProfileKind::Organic,
            Country::Id,
            AsnId(0),
            10,
            10,
            ReciprocityProfile::SILENT,
        );
        let mut class = Classification::default();
        class.customers.entry(ServiceId::Hublaagram).or_default().insert(buyer);
        p.begin_day(Day(0));
        let ip = p.asns.ip_in(host, 0);
        let media = p.post_media(buyer, AsnId(0), ip);
        // Ordinary free-rate days keep the overall median low…
        p.deposit_inbound(buyer, ActionType::Like, 80, 0, Some(host), Some((media, 120)));
        p.begin_day(Day(1));
        p.deposit_inbound(buyer, ActionType::Like, 80, 0, Some(host), Some((media, 120)));
        // …then the 2,000-like burst at a paid rate.
        p.begin_day(Day(2));
        p.deposit_inbound(buyer, ActionType::Like, 2_000, 0, Some(host), Some((media, 800)));
        let asns: BTreeSet<AsnId> = [host].into();
        let rev = hublaagram_revenue(&p, &class, &asns, Day(0), Day(5));
        assert_eq!(rev.one_time_accounts, 1);
        assert_eq!(rev.one_time_cents, 1_000);
        assert_eq!(rev.monthly_tier_accounts.iter().sum::<u64>(), 0);
    }

    #[test]
    fn new_vs_preexisting_split() {
        let c = classification_with(&[
            // Paying since day 0: preexisting in the day-30 window.
            (ServiceId::Boostgram, 1, (0..60).collect()),
            // First active day 35: new payer in the window.
            (ServiceId::Boostgram, 2, (35..60).collect()),
        ]);
        let split = new_vs_preexisting(&c, ServiceGroup::Boostgram, Day(30), Day(60));
        assert!(split.preexisting_share > split.new_share);
        assert!((split.new_share + split.preexisting_share - 1.0).abs() < 1e-9);
    }
}
