//! Small statistics toolkit shared by the analyses.
//!
//! Nearest-rank percentiles, medians, means, and the empirical CDF used by
//! Figures 3/4. Everything is exact and deterministic (no interpolation
//! surprises between runs).

use serde::{Deserialize, Serialize};

/// Mean of a slice (0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Nearest-rank percentile of unsorted data, `p ∈ [0,1]`. `None` for empty.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    debug_assert!((0.0..=1.0).contains(&p));
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Median (nearest-rank upper median) of unsorted data.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 0.5)
}

/// Median of integer data, as f64.
pub fn median_u32(values: &[u32]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    Some(f64::from(sorted[(sorted.len() - 1) / 2]))
}

/// An empirical cumulative distribution function over integer observations
/// (degree counts in Figures 3/4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    /// Sorted observations.
    sorted: Vec<u32>,
}

impl Ecdf {
    /// Build from unsorted observations.
    ///
    /// # Panics
    /// Panics on empty input — an ECDF of nothing is meaningless.
    pub fn new(mut values: Vec<u32>) -> Self {
        assert!(!values.is_empty(), "ECDF needs at least one observation");
        values.sort_unstable();
        Self { sorted: values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty input).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `P(X <= x)`.
    pub fn cdf(&self, x: u32) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (nearest rank), `q ∈ [0,1]`.
    pub fn quantile(&self, q: f64) -> u32 {
        debug_assert!((0.0..=1.0).contains(&q));
        let rank = ((self.sorted.len() as f64 * q).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// The median observation.
    pub fn median(&self) -> u32 {
        // Lower median, matching how the paper reports "the median account".
        self.sorted[(self.sorted.len() - 1) / 2]
    }

    /// Evaluate the CDF at a grid of points (for plotting a figure series).
    pub fn series(&self, points: &[u32]) -> Vec<(u32, f64)> {
        points.iter().map(|&x| (x, self.cdf(x))).collect()
    }

    /// A log-spaced grid covering the observation range, for CDF plots over
    /// heavy-tailed data.
    pub fn log_grid(&self, points_per_decade: u32) -> Vec<u32> {
        let lo = (*self.sorted.first().expect("non-empty")).max(1);
        let hi = *self.sorted.last().expect("non-empty");
        let mut grid = Vec::new();
        let mut x = lo as f64;
        let step = 10f64.powf(1.0 / f64::from(points_per_decade));
        while x <= hi as f64 {
            let v = x.round() as u32;
            if grid.last() != Some(&v) {
                grid.push(v);
            }
            x *= step;
        }
        if grid.last() != Some(&hi) {
            grid.push(hi);
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentile_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 0.5), Some(50.0));
        assert_eq!(median(&[]), None);
        assert_eq!(median_u32(&[5, 1, 9]), Some(5.0));
        assert_eq!(median_u32(&[4, 2]), Some(2.0), "lower median");
    }

    #[test]
    fn ecdf_cdf_and_quantiles() {
        let e = Ecdf::new(vec![10, 20, 30, 40, 50]);
        assert_eq!(e.len(), 5);
        assert_eq!(e.cdf(9), 0.0);
        assert_eq!(e.cdf(10), 0.2);
        assert_eq!(e.cdf(35), 0.6);
        assert_eq!(e.cdf(1_000), 1.0);
        assert_eq!(e.quantile(0.5), 30);
        assert_eq!(e.median(), 30);
        let even = Ecdf::new(vec![1, 2, 3, 4]);
        assert_eq!(even.median(), 2, "lower median for even n");
    }

    #[test]
    fn ecdf_series_is_monotone() {
        let e = Ecdf::new(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let grid = e.log_grid(10);
        let series = e.series(&grid);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be non-decreasing");
            assert!(w[0].0 < w[1].0, "grid must be strictly increasing");
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn ecdf_rejects_empty() {
        Ecdf::new(vec![]);
    }
}
