//! Small statistics toolkit shared by the analyses.
//!
//! Nearest-rank percentiles, medians, means, and the empirical CDF used by
//! Figures 3/4. Everything is exact and deterministic (no interpolation
//! surprises between runs).

use serde::{Deserialize, Serialize};

// The canonical nearest-rank primitives. They are *implemented* in
// `footsteps_aas::stats` (the common ancestor of `detect`, `analysis`
// and `stream` in the dependency graph) and re-exported here: analysis
// is the stats surface the rest of the workspace imports from, and
// every float/integer quantile in the repo goes through the same rank
// arithmetic.
pub use footsteps_aas::stats::{nearest_rank, percentile_u32, quantile_sorted_runs};

/// Mean of a slice (0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Nearest-rank percentile of unsorted data, `p ∈ [0,1]`. `None` for empty.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    debug_assert!((0.0..=1.0).contains(&p));
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    Some(sorted[nearest_rank(sorted.len(), p) - 1])
}

/// Nearest-rank percentiles at several probes with one sort, ordered by
/// IEEE-754 `total_cmp` so the result is deterministic for *any* input
/// (including NaN/±0.0, which `percentile` rejects). `None` for empty data.
pub fn percentiles(values: &[f64], ps: &[f64]) -> Option<Vec<f64>> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(
        ps.iter()
            .map(|&p| sorted[nearest_rank(sorted.len(), p) - 1])
            .collect(),
    )
}

/// Median (nearest-rank upper median) of unsorted data.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 0.5)
}

/// Median of integer data, as f64.
pub fn median_u32(values: &[u32]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    Some(f64::from(sorted[(sorted.len() - 1) / 2]))
}

/// Streaming mean/variance accumulator (Welford's algorithm), mergeable via
/// Chan et al.'s parallel update. Used by the sweep aggregator to summarise
/// per-seed results without holding every sample, and exact enough that the
/// order of `push`/`merge` calls never changes the reported mean by more
/// than floating-point noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean.
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Absorb another accumulator (Chan et al. pairwise update).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    /// Number of observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 for empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance, Bessel-corrected (0 for fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation (0 for fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }
}

/// An empirical cumulative distribution function over integer observations
/// (degree counts in Figures 3/4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    /// Sorted observations.
    sorted: Vec<u32>,
}

impl Ecdf {
    /// Build from unsorted observations.
    ///
    /// # Panics
    /// Panics on empty input — an ECDF of nothing is meaningless.
    pub fn new(mut values: Vec<u32>) -> Self {
        assert!(!values.is_empty(), "ECDF needs at least one observation");
        values.sort_unstable();
        Self { sorted: values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty input).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `P(X <= x)`.
    pub fn cdf(&self, x: u32) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (nearest rank), `q ∈ [0,1]`.
    pub fn quantile(&self, q: f64) -> u32 {
        self.sorted[nearest_rank(self.sorted.len(), q) - 1]
    }

    /// The median observation.
    pub fn median(&self) -> u32 {
        // Lower median, matching how the paper reports "the median account".
        self.sorted[(self.sorted.len() - 1) / 2]
    }

    /// Evaluate the CDF at a grid of points (for plotting a figure series).
    pub fn series(&self, points: &[u32]) -> Vec<(u32, f64)> {
        points.iter().map(|&x| (x, self.cdf(x))).collect()
    }

    /// A log-spaced grid covering the observation range, for CDF plots over
    /// heavy-tailed data.
    pub fn log_grid(&self, points_per_decade: u32) -> Vec<u32> {
        let lo = (*self.sorted.first().expect("non-empty")).max(1);
        let hi = *self.sorted.last().expect("non-empty");
        let mut grid = Vec::new();
        let mut x = lo as f64;
        let step = 10f64.powf(1.0 / f64::from(points_per_decade));
        while x <= hi as f64 {
            let v = x.round() as u32;
            if grid.last() != Some(&v) {
                grid.push(v);
            }
            x *= step;
        }
        if grid.last() != Some(&hi) {
            grid.push(hi);
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentile_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 0.5), Some(50.0));
        assert_eq!(median(&[]), None);
        assert_eq!(median_u32(&[5, 1, 9]), Some(5.0));
        assert_eq!(median_u32(&[4, 2]), Some(2.0), "lower median");
    }

    #[test]
    fn ecdf_cdf_and_quantiles() {
        let e = Ecdf::new(vec![10, 20, 30, 40, 50]);
        assert_eq!(e.len(), 5);
        assert_eq!(e.cdf(9), 0.0);
        assert_eq!(e.cdf(10), 0.2);
        assert_eq!(e.cdf(35), 0.6);
        assert_eq!(e.cdf(1_000), 1.0);
        assert_eq!(e.quantile(0.5), 30);
        assert_eq!(e.median(), 30);
        let even = Ecdf::new(vec![1, 2, 3, 4]);
        assert_eq!(even.median(), 2, "lower median for even n");
    }

    #[test]
    fn ecdf_series_is_monotone() {
        let e = Ecdf::new(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let grid = e.log_grid(10);
        let series = e.series(&grid);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be non-decreasing");
            assert!(w[0].0 < w[1].0, "grid must be strictly increasing");
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn ecdf_rejects_empty() {
        Ecdf::new(vec![]);
    }

    #[test]
    fn welford_single_sample() {
        let mut w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        w.push(42.5);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 42.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
    }

    #[test]
    fn welford_constant_series_has_zero_variance() {
        let mut w = Welford::new();
        for _ in 0..1000 {
            w.push(3.25);
        }
        assert_eq!(w.count(), 1000);
        assert_eq!(w.mean(), 3.25);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
    }

    #[test]
    fn welford_merge_matches_single_accumulator() {
        let xs: Vec<f64> = (0..50).map(|i| f64::from(i) * 1.7 - 11.0).collect();
        let (left, right) = xs.split_at(17);
        let mut a = Welford::new();
        let mut b = Welford::new();
        left.iter().for_each(|&x| a.push(x));
        right.iter().for_each(|&x| b.push(x));
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        // Merging an empty accumulator in either direction is the identity.
        let mut empty = Welford::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
        let before = whole;
        whole.merge(&Welford::new());
        assert_eq!(whole, before);
    }

    #[test]
    fn percentiles_match_percentile_and_order_nan_last() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let ps = percentiles(&v, &[0.5, 0.9, 0.99]).unwrap();
        assert_eq!(ps, vec![50.0, 90.0, 99.0]);
        assert_eq!(percentiles(&[], &[0.5]), None);
        // total_cmp puts NaN at the top instead of panicking.
        let got = percentiles(&[f64::NAN, 1.0, 2.0], &[0.5, 1.0]).unwrap();
        assert_eq!(got[0], 2.0);
        assert!(got[1].is_nan());
    }
}
