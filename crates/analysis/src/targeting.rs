//! Targeting-bias analysis (§5.3, Figures 3/4).
//!
//! "We compare the following and follower counts of a random sample of
//! 1,000 accounts that received an action from AASs with a random sample of
//! 1,000 from all Instagram accounts that receive actions during our
//! measurement period."

use crate::stats::Ecdf;
use footsteps_sim::account::AccountStore;
use footsteps_sim::population::Population;
use footsteps_sim::prelude::*;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One CDF sample set for a figure: a labelled degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeSample {
    /// Label shown in the figure legend ("Boostgram", "Instagram", …).
    pub label: String,
    /// Out-degree (accounts followed) observations.
    pub following: Ecdf,
    /// In-degree (followers) observations.
    pub followers: Ecdf,
}

impl DegreeSample {
    /// Build from a set of account ids.
    pub fn from_accounts(
        label: impl Into<String>,
        accounts: &AccountStore,
        sample: &[AccountId],
    ) -> Self {
        assert!(!sample.is_empty(), "empty degree sample");
        Self {
            label: label.into(),
            following: Ecdf::new(sample.iter().map(|&a| accounts.get(a).following).collect()),
            followers: Ecdf::new(sample.iter().map(|&a| accounts.get(a).followers).collect()),
        }
    }

    /// Median out-degree.
    pub fn median_following(&self) -> u32 {
        self.following.median()
    }

    /// Median in-degree.
    pub fn median_followers(&self) -> u32 {
        self.followers.median()
    }
}

/// Draw `n` targets that received actions from a service's pool (the paper's
/// "random sample of accounts that received an action from" the AAS).
pub fn sample_targets(
    pool_members: &[AccountId],
    n: usize,
    rng: &mut impl Rng,
) -> Vec<AccountId> {
    assert!(!pool_members.is_empty());
    (0..n)
        .map(|_| pool_members[rng.gen_range(0..pool_members.len())])
        .collect()
}

/// Draw `n` random organic accounts (the "all Instagram" baseline).
pub fn sample_baseline(
    population: &Population,
    n: usize,
    rng: &mut impl Rng,
) -> Vec<AccountId> {
    (0..n).map(|_| population.sample_uniform(rng.gen())).collect()
}

/// The Figures 3/4 bundle: one sample per reciprocity group plus the
/// baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetingFigures {
    /// Per-group target samples.
    pub services: Vec<DegreeSample>,
    /// The all-Instagram baseline.
    pub baseline: DegreeSample,
}

impl TargetingFigures {
    /// Verify the paper's qualitative finding: every service sample has
    /// higher median out-degree and lower median in-degree than baseline.
    pub fn bias_holds(&self) -> bool {
        self.services.iter().all(|s| {
            s.median_following() > self.baseline.median_following()
                && s.median_followers() < self.baseline.median_followers()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footsteps_sim::account::{ProfileKind, ReciprocityProfile};

    fn store_with_degrees(degrees: &[(u32, u32)]) -> (AccountStore, Vec<AccountId>) {
        let mut s = AccountStore::new();
        let ids = degrees
            .iter()
            .map(|&(out, inn)| {
                s.create(
                    SimTime::EPOCH,
                    ProfileKind::Organic,
                    Country::Us,
                    AsnId(0),
                    out,
                    inn,
                    ReciprocityProfile::SILENT,
                )
            })
            .collect();
        (s, ids)
    }

    #[test]
    fn degree_sample_medians() {
        let (store, ids) = store_with_degrees(&[(100, 900), (500, 700), (900, 100)]);
        let s = DegreeSample::from_accounts("test", &store, &ids);
        assert_eq!(s.median_following(), 500);
        assert_eq!(s.median_followers(), 700);
        assert_eq!(s.label, "test");
    }

    #[test]
    fn bias_check_compares_medians() {
        let (store, ids) = store_with_degrees(&[
            // "service targets": high out, low in.
            (700, 300),
            (650, 350),
            // baseline: low out, high in.
            (400, 800),
            (450, 900),
        ]);
        let svc = DegreeSample::from_accounts("svc", &store, &ids[..2]);
        let base = DegreeSample::from_accounts("Instagram", &store, &ids[2..]);
        let fig = TargetingFigures { services: vec![svc], baseline: base };
        assert!(fig.bias_holds());
        // Swap: bias must fail.
        let svc2 = DegreeSample::from_accounts("svc", &store, &ids[2..]);
        let base2 = DegreeSample::from_accounts("Instagram", &store, &ids[..2]);
        let fig2 = TargetingFigures { services: vec![svc2], baseline: base2 };
        assert!(!fig2.bias_holds());
    }

    #[test]
    fn sampling_respects_sizes() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let members = vec![AccountId(1), AccountId(2), AccountId(3)];
        assert_eq!(sample_targets(&members, 50, &mut rng).len(), 50);
        let pop = Population { organic: members };
        assert_eq!(sample_baseline(&pop, 70, &mut rng).len(), 70);
    }
}
