//! Ablation benches for the design decisions called out in DESIGN.md §4:
//!
//! * **two-speed engine** — event path vs aggregate path for the same action
//!   volume (why bulk traffic is aggregated);
//! * **targeting bias** — pool curation cost with and without selection
//!   (what the reciprocity services pay for their §5.3 bias);
//! * **adaptation controller** — a service day with and without the
//!   per-customer block-detection machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use footsteps_aas::{presets, PaymentLedger, ReciprocityService, TargetPool, TargetingBias};
use footsteps_sim::account::{ProfileKind, ReciprocityProfile};
use footsteps_sim::net::{AsnKind, AsnRegistry};
use footsteps_sim::platform::{BatchRequest, EventRequest, Platform, PlatformConfig, PoolStats};
use footsteps_sim::population::{synthesize, PopulationConfig, ResidentialIndex};
use footsteps_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn world() -> (Platform, ResidentialIndex, Population, AsnId) {
    let mut reg = AsnRegistry::new();
    for c in Country::ALL {
        reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 100_000);
    }
    let host = reg.register("host", Country::Us, AsnKind::Hosting, 10_000);
    let residential = ResidentialIndex::build(&reg);
    let mut platform = Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(9));
    let mut rng = SmallRng::seed_from_u64(10);
    let pop = synthesize(
        &mut platform.accounts,
        &residential,
        &PopulationConfig { size: 8_000, ..PopulationConfig::default() },
        &mut rng,
    );
    (platform, residential, pop, host)
}

/// Two-speed engine: 200 actions as one aggregate batch vs 200 events.
fn bench_event_vs_aggregate(c: &mut Criterion) {
    let (mut platform, _res, pop, host) = world();
    platform.config.ip_daily_action_cap = u32::MAX;
    let actor = platform.accounts.create(
        SimTime::EPOCH,
        ProfileKind::Organic,
        Country::Us,
        AsnId(0),
        100,
        100,
        ReciprocityProfile::SILENT,
    );
    platform.begin_day(Day(0));
    let ip = platform.asns.ip_in(host, 0);
    let fp = ClientFingerprint::SpoofedMobile { variant: 1 };
    c.bench_function("ablation_aggregate_200_actions", |b| {
        b.iter(|| {
            std::hint::black_box(platform.submit_batch(BatchRequest {
                actor,
                action: ActionType::Like,
                count: 200,
                asn: host,
                ip,
                fingerprint: fp,
                pool: PoolStats::INERT,
                service: None,
            }));
        });
    });
    let mut rng = SmallRng::seed_from_u64(11);
    c.bench_function("ablation_events_200_actions", |b| {
        b.iter(|| {
            for _ in 0..200 {
                let target = pop.sample_uniform(rng.gen());
                std::hint::black_box(platform.submit_event(EventRequest {
                    actor,
                    action: ActionType::Like,
                    target,
                    asn: host,
                    ip,
                    fingerprint: fp,
                    service: None,
                }));
            }
        });
    });
}

/// Targeting: curating a biased pool vs a uniform one.
fn bench_targeting_bias(c: &mut Criterion) {
    let (platform, _res, pop, _host) = world();
    c.bench_function("ablation_pool_uniform_1000", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(12);
            std::hint::black_box(TargetPool::curate(
                &platform.accounts,
                &pop,
                TargetingBias::UNIFORM,
                1_000,
                &mut rng,
            ));
        });
    });
    c.bench_function("ablation_pool_biased_1000", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(12);
            std::hint::black_box(TargetPool::curate(
                &platform.accounts,
                &pop,
                TargetingBias { tendency_strength: 3.0, follow_for_like_strength: 0.0 },
                1_000,
                &mut rng,
            ));
        });
    });
}

/// A service day with the adaptation machinery exercised (blocking on) vs
/// idle (no enforcement).
fn bench_adaptation(c: &mut Criterion) {
    #[derive(Debug)]
    struct BlockFollows;
    impl EnforcementPolicy for BlockFollows {
        fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
            if ctx.action == ActionType::Follow {
                EnforcementDecision::threshold(ctx.requested, ctx.prior_today, 30, Countermeasure::Block)
            } else {
                EnforcementDecision::allow_all(ctx.requested)
            }
        }
    }
    for (label, enforce) in [("ablation_service_day_unblocked", false), ("ablation_service_day_blocked", true)] {
        c.bench_function(label, |b| {
            b.iter(|| {
                let (mut platform, residential, pop, host) = world();
                let mut cfg = presets::boostgram_config(0.02);
                cfg.pool_size = 400;
                let mut svc = ReciprocityService::new(
                    cfg,
                    &platform.accounts,
                    &pop,
                    vec![host],
                    SmallRng::seed_from_u64(13),
                );
                let mut ledger = PaymentLedger::new();
                platform.begin_day(Day(0));
                svc.seed_initial_customers(&mut platform, &residential, Day(0));
                if enforce {
                    platform.set_policy(Box::new(BlockFollows));
                }
                for d in 0..5u32 {
                    platform.begin_day(Day(d));
                    svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
                }
                std::hint::black_box(svc.customers().len());
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_event_vs_aggregate, bench_targeting_bias, bench_adaptation
}
criterion_main!(benches);
