//! Classifier throughput: scanning the platform log and attributing
//! customers to services from signatures.

use criterion::{criterion_group, criterion_main, Criterion};
use footsteps_core::{Phase, Scenario, Study};
use footsteps_detect::{classify, extract_all};
use footsteps_sim::prelude::Day;

fn bench_classifier(c: &mut Criterion) {
    // Build one world once; the bench measures classification over its log.
    let mut study = Study::new(Scenario::smoke(3));
    study.run_characterization();
    assert!(study.phase >= Phase::Characterized);
    let end = study.timeline.narrow_start;
    c.bench_function("detect_extract_signatures", |b| {
        b.iter(|| {
            std::hint::black_box(extract_all(&study.framework, &study.platform, Day(0), end));
        });
    });
    let signatures = extract_all(&study.framework, &study.platform, Day(0), end);
    c.bench_function("detect_classify_full_window", |b| {
        b.iter(|| {
            std::hint::black_box(classify(&study.platform, &signatures, Day(0), end));
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_classifier
}
criterion_main!(benches);
