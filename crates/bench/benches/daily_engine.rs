//! Daily-engine throughput: one batch submission (the aggregate hot path)
//! and a whole smoke-scale characterization run.

use criterion::{criterion_group, criterion_main, Criterion};
use footsteps_core::{Scenario, Study};
use footsteps_sim::account::{ProfileKind, ReciprocityProfile};
use footsteps_sim::net::{AsnKind, AsnRegistry};
use footsteps_sim::platform::{BatchRequest, Platform, PlatformConfig, PoolStats};
use footsteps_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One platform batch submission (the hot path of the aggregate engine).
fn bench_submit_batch(c: &mut Criterion) {
    let mut reg = AsnRegistry::new();
    reg.register("res", Country::Us, AsnKind::Residential, 10_000);
    let host = reg.register("host", Country::Us, AsnKind::Hosting, 10_000);
    let mut platform = Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(1));
    let actor = platform.accounts.create(
        SimTime::EPOCH,
        ProfileKind::Organic,
        Country::Us,
        AsnId(0),
        100,
        100,
        ReciprocityProfile::SILENT,
    );
    platform.begin_day(Day(0));
    let ip = platform.asns.ip_in(host, 0);
    // Raise the edge cap so the bench isn't measuring refusals.
    platform.config.ip_daily_action_cap = u32::MAX;
    c.bench_function("platform_submit_batch_100_likes", |b| {
        b.iter(|| {
            std::hint::black_box(platform.submit_batch(BatchRequest {
                actor,
                action: ActionType::Like,
                count: 100,
                asn: host,
                ip,
                fingerprint: ClientFingerprint::SpoofedMobile { variant: 1 },
                pool: PoolStats::INERT,
                service: Some(ServiceId::Boostgram),
            }));
        });
    });
}

/// A full smoke-scale characterization (all services + background traffic).
fn bench_study_day(c: &mut Criterion) {
    c.bench_function("study_characterization_smoke", |b| {
        b.iter(|| {
            let mut study = Study::new(Scenario::smoke(1));
            study.run_characterization();
            std::hint::black_box(
                study
                    .pipeline()
                    .classification
                    .customer_count(ServiceId::Hublaagram),
            );
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_submit_batch, bench_study_day
}
criterion_main!(benches);
