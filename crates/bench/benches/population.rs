//! Population-synthesis throughput: how fast the substrate can stand up an
//! organic user base (log-normal degrees + behaviour profiles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use footsteps_sim::account::AccountStore;
use footsteps_sim::net::{AsnKind, AsnRegistry};
use footsteps_sim::population::{synthesize, PopulationConfig, ResidentialIndex};
use footsteps_sim::prelude::Country;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn registry() -> (AsnRegistry, ResidentialIndex) {
    let mut reg = AsnRegistry::new();
    for c in Country::ALL {
        reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 100_000);
    }
    let idx = ResidentialIndex::build(&reg);
    (reg, idx)
}

fn bench_population(c: &mut Criterion) {
    let (_reg, idx) = registry();
    let mut group = c.benchmark_group("population_synthesize");
    for &size in &[1_000u32, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let mut accounts = AccountStore::new();
                let cfg = PopulationConfig { size, ..PopulationConfig::default() };
                let mut rng = SmallRng::seed_from_u64(1);
                std::hint::black_box(synthesize(&mut accounts, &idx, &cfg, &mut rng));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_population);
criterion_main!(benches);
