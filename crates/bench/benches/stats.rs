//! Statistics-toolkit micro-benches: ECDF construction/queries and the
//! binomial sampler that powers aggregate reciprocation.

use criterion::{criterion_group, criterion_main, Criterion};
use footsteps_analysis::Ecdf;
use footsteps_sim::behavior::sample_binomial;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_stats(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(6);
    let data: Vec<u32> = (0..10_000).map(|_| rng.gen_range(0..5_000)).collect();
    c.bench_function("ecdf_build_10k", |b| {
        b.iter(|| std::hint::black_box(Ecdf::new(data.clone())));
    });
    let ecdf = Ecdf::new(data);
    c.bench_function("ecdf_cdf_lookup", |b| {
        b.iter(|| std::hint::black_box(ecdf.cdf(2_500)));
    });
    c.bench_function("binomial_small_n", |b| {
        b.iter(|| std::hint::black_box(sample_binomial(&mut rng, 50, 0.12)));
    });
    c.bench_function("binomial_large_n", |b| {
        b.iter(|| std::hint::black_box(sample_binomial(&mut rng, 100_000, 0.12)));
    });
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
