//! Threshold-computation throughput: the per-ASN percentile sweep of §6.2.

use criterion::{criterion_group, criterion_main, Criterion};
use footsteps_core::{Scenario, Study};
use footsteps_detect::{classify, compute_thresholds, extract_all, percentile_u32};
use footsteps_sim::prelude::Day;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_thresholds(c: &mut Criterion) {
    let mut study = Study::new(Scenario::smoke(4));
    study.run_characterization();
    let end = study.timeline.narrow_start;
    let signatures = extract_all(&study.framework, &study.platform, Day(0), end);
    let classification = classify(&study.platform, &signatures, Day(0), end);
    c.bench_function("detect_compute_thresholds", |b| {
        b.iter(|| {
            std::hint::black_box(compute_thresholds(
                &study.platform,
                &classification,
                &signatures,
                Day(0),
                end,
            ));
        });
    });

    let mut rng = SmallRng::seed_from_u64(5);
    let base: Vec<u32> = (0..100_000).map(|_| rng.gen_range(0..500)).collect();
    c.bench_function("percentile_100k_samples", |b| {
        b.iter(|| {
            let mut v = base.clone();
            std::hint::black_box(percentile_u32(&mut v, 0.99));
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_thresholds
}
criterion_main!(benches);
