//! Ablation: what each signature feature buys (§5).
//!
//! The paper attributes customers via "commonly tracked information about
//! the client (e.g., IP address, ASN) and additional signals produced
//! within Instagram". This harness classifies with degraded signatures and
//! scores each variant against ground truth:
//!
//! * **ASN + fingerprint** (the pipeline's signature);
//! * **ASN only** — collapses on mixed ASNs, where benign VPN/cloud users
//!   share the network with the service;
//! * **fingerprint only** — survives ASN migration but depends entirely on
//!   the client-emulation quirks staying stable.

use footsteps_core::Phase;
use footsteps_detect::{classify, score_group_before, ServiceSignature};
use footsteps_sim::prelude::*;
use std::collections::{BTreeSet, HashSet};

fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    let (start, end) = (study.timeline.char_start, study.timeline.narrow_start);
    let cutoff = end.start();
    let full = &study.pipeline().signatures;

    // Degraded variants.
    let all_fingerprints: HashSet<ClientFingerprint> = (0..=u16::MAX)
        .take(64) // variants are small ints; 64 covers every stack
        .map(|v| ClientFingerprint::SpoofedMobile { variant: v })
        .chain([
            ClientFingerprint::OfficialApp,
            ClientFingerprint::WebClient,
            ClientFingerprint::PublicApi,
        ])
        .collect();
    let asn_only: Vec<ServiceSignature> = full
        .iter()
        .map(|s| ServiceSignature {
            service: s.service,
            asns: s.asns.clone(),
            fingerprints: all_fingerprints.clone(),
            collusion: s.collusion,
        })
        .collect();
    let all_asns: BTreeSet<AsnId> = study.platform.asns.iter().map(|a| a.id).collect();
    let fp_only: Vec<ServiceSignature> = full
        .iter()
        .map(|s| ServiceSignature {
            service: s.service,
            asns: all_asns.clone(),
            fingerprints: s.fingerprints.clone(),
            // Inbound matching keys on ASN alone; without the ASN feature it
            // would flag all organic inbound, so disable it for this variant.
            collusion: false,
        })
        .collect();

    println!("Ablation — signature features (classification window, ground-truth scored)\n");
    println!(
        "{:<12} {:<18} {:>10} {:>10} {:>10}",
        "Group", "signature", "classified", "precision", "recall"
    );
    for (label, sigs) in [
        ("asn+fingerprint", full.clone()),
        ("asn only", asn_only),
        ("fingerprint only", fp_only),
    ] {
        let classification = classify(&study.platform, &sigs, start, end);
        for group in ServiceGroup::BUSINESS {
            let s = score_group_before(&study.platform, &classification, group, cutoff);
            println!(
                "{:<12} {:<18} {:>10} {:>9.1}% {:>9.1}%",
                group.to_string(),
                label,
                s.tp + s.fp,
                100.0 * s.precision(),
                100.0 * s.recall()
            );
        }
        println!();
    }
    println!("expected: ASN-only precision collapses for Insta* (mixed ASN carries benign");
    println!("traffic); fingerprint-only misses collusion receive-only customers.");
}
