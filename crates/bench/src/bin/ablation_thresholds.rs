//! Ablation: the §6.2 threshold design.
//!
//! The paper picks the daily **99th percentile** of benign per-account
//! activity on mixed ASNs ("an upper bound of 1% false positives") and the
//! **25th percentile** of abusive activity on pure ASNs. This harness sweeps
//! both choices and reports the trade-off they encode:
//!
//! * mixed percentile ↓ ⇒ more abusive volume eligible, more benign
//!   account-days falsely eligible;
//! * pure percentile ↑ ⇒ less abusive volume eligible (the countermeasure
//!   gives more of the service's action budget away).

use footsteps_core::Phase;
use footsteps_detect::{percentile_u32, Classification};
use footsteps_sim::prelude::*;
use std::collections::HashMap;

/// Per-account daily follow counts on one ASN, split benign/abusive.
fn daily_counts(
    platform: &Platform,
    classification: &Classification,
    asn: AsnId,
    start: Day,
    end: Day,
) -> (Vec<u32>, Vec<u32>) {
    let mut benign = Vec::new();
    let mut abusive = Vec::new();
    for (_, log) in platform.log.iter_range(start, end) {
        let mut per: HashMap<AccountId, (u32, bool)> = HashMap::new();
        for (key, counts) in log.outbound() {
            if key.asn != asn {
                continue;
            }
            let n = counts.attempted_of(ActionType::Follow);
            if n == 0 {
                continue;
            }
            let e = per.entry(key.account).or_insert((0, false));
            e.0 += n;
            e.1 |= classification.is_abusive(key.account);
        }
        for (_, (n, abus)) in per {
            if abus {
                abusive.push(n);
            } else {
                benign.push(n);
            }
        }
    }
    (benign, abusive)
}

fn eligible_share(samples: &[u32], threshold: u32) -> f64 {
    let total: u64 = samples.iter().map(|&n| u64::from(n)).sum();
    if total == 0 {
        return 0.0;
    }
    let over: u64 = samples.iter().map(|&n| u64::from(n.saturating_sub(threshold))).sum();
    over as f64 / total as f64
}

fn over_rate(samples: &[u32], threshold: u32) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&n| n > threshold).count() as f64 / samples.len() as f64
}

fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    let (cal_start, cal_end) = study
        .timeline
        .calibration(study.scenario.calibration_tail_days);
    let class = &study.pipeline().classification;

    println!("Ablation — §6.2 threshold percentiles (follows, calibration tail)\n");

    // Mixed ASN (Insta*): sweep the benign percentile.
    let mixed = study.layout.insta_primary;
    let (mut benign, abusive) = daily_counts(&study.platform, class, mixed, cal_start, cal_end);
    println!(
        "mixed ASN (Insta* + benign blend): {} benign / {} abusive account-days",
        benign.len(),
        abusive.len()
    );
    println!("{:>10} {:>10} {:>22} {:>22}", "pctile", "threshold", "abusive vol eligible", "benign acct-days hit");
    for p in [0.90, 0.95, 0.99, 0.999] {
        let thr = percentile_u32(&mut benign, p).unwrap_or(0);
        println!(
            "{:>10} {:>10} {:>21.1}% {:>21.2}%",
            format!("p{:.1}", p * 100.0),
            thr,
            100.0 * eligible_share(&abusive, thr),
            100.0 * over_rate(&benign, thr),
        );
    }
    println!("  paper's choice: p99 — bounds benign exposure at 1% of account-days\n");

    // Pure ASN (Boostgram): sweep the abusive percentile.
    let pure = study.layout.boost_primary;
    let (_, mut abusive) = daily_counts(&study.platform, class, pure, cal_start, cal_end);
    println!("pure ASN (Boostgram): {} abusive account-days", abusive.len());
    println!("{:>10} {:>10} {:>22}", "pctile", "threshold", "abusive vol eligible");
    for p in [0.10, 0.25, 0.50, 0.75] {
        let thr = percentile_u32(&mut abusive, p).unwrap_or(0);
        println!(
            "{:>10} {:>10} {:>21.1}%",
            format!("p{:.0}", p * 100.0),
            thr,
            100.0 * eligible_share(&abusive, thr),
        );
    }
    println!("  paper's choice: p25 — most of the service's volume stays eligible");
}
