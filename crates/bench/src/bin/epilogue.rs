//! Regenerate the §6.4 epilogue outcomes (migrations, proxy networks,
//! "out of stock").
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Finished);
    println!("{}", footsteps_bench::render::epilogue(&study));
}
