//! Regenerate Figure 2 (customer country distributions).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::figure02(&study));
}
