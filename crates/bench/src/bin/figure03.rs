//! Regenerate Figure 3 (CDF of accounts followed by AAS targets).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::figures0304(&study));
}
