//! Regenerate Figure 4 (CDF of followers of AAS targets). The degree data
//! is shared with Figure 3; this binary prints the same bundle.
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::figures0304(&study));
}
