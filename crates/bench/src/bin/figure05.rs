//! Regenerate Figure 5 (Boostgram follows under the narrow intervention).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::NarrowDone);
    println!("{}", footsteps_bench::render::figure05(&study));
}
