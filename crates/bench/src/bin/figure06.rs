//! Regenerate Figure 6 (Hublaagram like eligibility; ~3-week reaction lag).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::NarrowDone);
    println!("{}", footsteps_bench::render::figure06(&study));
}
