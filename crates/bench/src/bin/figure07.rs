//! Regenerate Figure 7 (broad intervention: delay week then block week).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::BroadDone);
    println!("{}", footsteps_bench::render::figure07(&study));
}
