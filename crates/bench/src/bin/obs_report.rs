//! Flamegraph-style span-tree profiler report.
//!
//! Runs one study (honouring `FOOTSTEPS_SMOKE` / `FOOTSTEPS_SEED` /
//! `FOOTSTEPS_THREADS`) and prints the hierarchical span profile: the
//! tree with inclusive/exclusive wall time, the `--top-k` hottest spans
//! by exclusive time, per-worker-lane utilization, and the self-measured
//! obs overhead line. With `FOOTSTEPS_TRACE_OUT=<path>` set, the run also
//! exports the Chrome-trace JSON for chrome://tracing / Perfetto.
//!
//! ```text
//! FOOTSTEPS_SMOKE=1 cargo run -p footsteps-bench --bin obs-report -- --top-k 10
//! cargo run -p footsteps-bench --bin obs-report -- --check-trace trace.json
//! ```
//!
//! * `--top-k N` — how many hot spans to list (default 15).
//! * `--check-trace PATH` — don't run a study; validate an exported
//!   Chrome-trace file instead (valid JSON, matched `B`/`E` pairs,
//!   monotonic per-lane timestamps) and print its shape. Exits non-zero
//!   on a malformed file — `scripts/ci.sh`'s trace smoke gate runs this.

use footsteps_bench::render;
use footsteps_core::Phase;
use footsteps_obs::export::validate_chrome_trace;

fn check_trace(path: &str) -> ! {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("obs-report: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match validate_chrome_trace(&body) {
        Ok(check) => {
            println!(
                "{path}: valid chrome trace — {} events, {} span pairs, {} lane(s), {} counter sample(s)",
                check.events, check.pairs, check.lanes, check.counters
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("obs-report: {path} is not a valid chrome trace: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut top_k = 15usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top-k" => {
                top_k = args
                    .next()
                    .expect("--top-k needs a number")
                    .parse()
                    .expect("--top-k must be an integer");
            }
            "--check-trace" => {
                let path = args.next().expect("--check-trace needs a path");
                check_trace(&path);
            }
            other => panic!("unknown argument '{other}' (--top-k N | --check-trace PATH)"),
        }
    }
    let mut study = footsteps_bench::study_to(Phase::Finished);
    match study.platform.obs.export_trace() {
        Ok(Some(path)) => eprintln!("chrome trace written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("chrome trace export failed: {e}"),
    }
    let report = render::obs_flame(&study, top_k);
    if report.is_empty() {
        println!("no spans recorded");
    } else {
        print!("{report}");
    }
}
