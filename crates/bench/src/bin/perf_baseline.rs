//! End-to-end engine throughput baseline.
//!
//! Runs a scenario to completion, times the whole study, and writes
//! `BENCH_daily_engine.json` with wall time, days/sec, actions/sec, the
//! results digest, and the worker thread count, so engine changes can be
//! compared against a committed number.
//!
//! Usage: `perf_baseline [--json] [--scenario NAME] [--threads LIST]
//! [--stream LOG] [seed] [output-path]`
//!
//! * `--scenario smoke|scaled|paper|quick` picks the preset (default
//!   `smoke`, the CI gate's scenario; `scaled` is the committed
//!   multi-thread bench).
//! * `--threads 1,2,8` enables sweep mode: the study runs once per listed
//!   thread count (overriding `FOOTSTEPS_THREADS`) and the report is a JSON
//!   **array** with one record per thread count, so a single committed file
//!   documents the scaling curve and proves the digest is thread-invariant.
//! * `--stream LOG` benches the streaming detector instead: the scenario's
//!   characterization phase runs twice with the online detector attached —
//!   recorder off, then recorder on (writing the replayable event log to
//!   `LOG`) — and the report is a JSON array of two `stream_detector`
//!   records (events/sec through the detector, verdict digest). The two
//!   digests must match; `scripts/ci.sh` replays `LOG` through
//!   `stream-replay` and compares a third time.
//!
//! With `--json` the report is serialized through serde and additionally
//! embeds the study's deterministic metrics snapshot and the wall-clock
//! span timings — the machine-readable form `scripts/ci.sh` consumes for
//! its perf-regression and thread-invariance gates. Without the flag (and
//! without `--threads`) the compact hand-formatted report of earlier
//! revisions is kept byte-compatible.

use std::time::Instant;

use footsteps_core::results::StudyResults;
use footsteps_core::{Scenario, Study};
use footsteps_obs::{progress, MetricsSnapshot, SpanTreeSummary, TimingsSnapshot};
use footsteps_sim::prelude::*;
use serde::Serialize;

/// The machine-readable (`--json`) report shape; sweep mode emits an array
/// of these, one per thread count.
#[derive(Serialize)]
struct PerfReport {
    bench: &'static str,
    scenario: String,
    seed: u64,
    threads: usize,
    /// CPUs available on the bench host. Thread counts above this value
    /// oversubscribe the machine, so their records document digest
    /// invariance rather than speedup — readers (and the CI gate) must
    /// interpret the scaling curve relative to this bound.
    host_cpus: usize,
    setup_secs: f64,
    run_secs: f64,
    days: u64,
    days_per_sec: f64,
    actions: u64,
    actions_per_sec: f64,
    /// FNV-1a digest of the canonical results JSON, hex. Must be identical
    /// across every `threads` value — `scripts/ci.sh` compares the 1- and
    /// 8-thread records.
    results_digest: String,
    /// Summed `aas.<service>.apply` wall time: the sharded deposit phase
    /// the ISSUE 6 speedup gate measures.
    apply_secs: f64,
    /// Deterministic counters/histograms from the study run.
    metrics: MetricsSnapshot,
    /// Wall-clock spans (non-deterministic; for profiling only).
    timings: TimingsSnapshot,
    /// Span-tree summary: per-phase inclusive/exclusive wall totals, lane
    /// counts, obs overhead, and the deterministic structure digest
    /// (`scripts/ci.sh` compares the digest across thread counts).
    span_tree: SpanTreeSummary,
}

/// The `--stream` report shape: one record per detector configuration
/// (recorder off / recorder on).
#[derive(Serialize)]
struct StreamPerfReport {
    bench: &'static str,
    scenario: String,
    seed: u64,
    threads: usize,
    /// Whether the run also serialized the event log to disk.
    recorder: bool,
    /// Day batches the detector consumed.
    batches: u64,
    /// Records consumed (outbound + inbound + logins + events).
    events: u64,
    /// Wall-clock seconds inside `OnlineDetector::ingest`.
    detector_secs: f64,
    events_per_sec: f64,
    /// FNV-1a digest of the frozen verdict snapshot, hex. Must be
    /// identical with the recorder on and off, and must match what
    /// `stream-replay` recomputes from the recorded log.
    verdict_digest: String,
    /// Where the log landed, when the recorder was on.
    log_path: Option<String>,
}

fn run_stream(scenario_name: &str, seed: u64, record_to: Option<&std::path::Path>) -> StreamPerfReport {
    let scenario = scenario_by_name(scenario_name, seed);
    let threads = scenario.worker_threads;
    let mut study = Study::new(scenario);
    study.attach_stream(record_to).expect("stream attaches");
    study.run_characterization();
    let outcome = study.stream.take().expect("stream outcome frozen");
    let events_per_sec = if outcome.detector_secs > 0.0 {
        outcome.events_processed as f64 / outcome.detector_secs
    } else {
        0.0
    };
    progress!(
        "stream_detector[{scenario_name}, recorder {}]: {} events in {:.3}s ({:.0} events/sec)",
        if record_to.is_some() { "on" } else { "off" },
        outcome.events_processed,
        outcome.detector_secs,
        events_per_sec,
    );
    StreamPerfReport {
        bench: "stream_detector",
        scenario: scenario_name.to_string(),
        seed,
        threads,
        recorder: record_to.is_some(),
        batches: outcome.batches,
        events: outcome.events_processed,
        detector_secs: outcome.detector_secs,
        events_per_sec,
        verdict_digest: format!("0x{:016x}", outcome.verdict_digest),
        log_path: outcome.log_path.map(|p| p.display().to_string()),
    }
}

fn scenario_by_name(name: &str, seed: u64) -> Scenario {
    match name {
        "smoke" => Scenario::smoke(seed),
        "scaled" => Scenario::default_scaled(seed),
        "paper" => Scenario::paper(seed),
        "quick" => Scenario::quick(seed),
        other => panic!("unknown scenario '{other}' (smoke|scaled|paper|quick)"),
    }
}

fn run_one(scenario_name: &str, seed: u64, threads_override: Option<usize>) -> PerfReport {
    let mut scenario = scenario_by_name(scenario_name, seed);
    if let Some(t) = threads_override {
        scenario.worker_threads = t.clamp(1, 256);
    }
    let threads = scenario.worker_threads;

    let build_start = Instant::now();
    let mut study = Study::new(scenario);
    let build_secs = build_start.elapsed().as_secs_f64();

    let run_start = Instant::now();
    study.run_to_completion();
    let run_secs = run_start.elapsed().as_secs_f64();

    let days = u64::from(study.timeline.end.0);
    let mut actions: u64 = 0;
    for (_, log) in study.platform.log.iter_range(Day(0), study.timeline.end) {
        for (_, counts) in log.outbound() {
            actions += u64::from(counts.total_attempted());
        }
    }
    let digest = StudyResults::collect(&study).digest();
    let timings = study.platform.obs.timings.snapshot();
    let apply_secs: f64 = ServiceId::ALL
        .iter()
        .filter_map(|s| timings.get(&format!("aas.{}.apply", s.slug())))
        .map(|span| span.total_secs)
        .sum();

    progress!(
        "daily_engine[{scenario_name}, {threads}T]: {days} days in {run_secs:.2}s \
         ({:.2} days/sec, apply {apply_secs:.2}s)",
        days as f64 / run_secs
    );
    PerfReport {
        bench: "daily_engine",
        scenario: scenario_name.to_string(),
        seed,
        threads,
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        setup_secs: build_secs,
        run_secs,
        days,
        days_per_sec: days as f64 / run_secs,
        actions,
        actions_per_sec: actions as f64 / run_secs,
        results_digest: format!("0x{digest:016x}"),
        apply_secs,
        metrics: study.platform.obs.metrics.snapshot(),
        timings,
        span_tree: study.platform.obs.timings.summary(),
    }
}

fn main() {
    let mut json = false;
    let mut scenario_name = "smoke".to_string();
    let mut threads_list: Option<Vec<usize>> = None;
    let mut stream_log: Option<String> = None;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--scenario" => {
                scenario_name = args.next().expect("--scenario needs a name");
            }
            "--threads" => {
                let list = args.next().expect("--threads needs a comma list, e.g. 1,2,8");
                threads_list = Some(
                    list.split(',')
                        .map(|s| s.trim().parse().expect("thread counts must be integers"))
                        .collect(),
                );
            }
            "--stream" => {
                stream_log = Some(args.next().expect("--stream needs a log path"));
            }
            _ => positional.push(arg),
        }
    }
    let mut positional = positional.into_iter();
    let seed: u64 = positional
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(7);
    let out_path = positional
        .next()
        .unwrap_or_else(|| "BENCH_daily_engine.json".to_string());

    if let Some(log) = stream_log {
        // Streaming-detector bench: recorder off, then recorder on.
        let log = std::path::PathBuf::from(log);
        let records = [
            run_stream(&scenario_name, seed, None),
            run_stream(&scenario_name, seed, Some(&log)),
        ];
        assert_eq!(
            records[0].verdict_digest, records[1].verdict_digest,
            "verdict digest must not depend on the recorder"
        );
        let mut body =
            serde_json::to_string_pretty(&records[..]).expect("stream reports serialize");
        body.push('\n');
        std::fs::write(&out_path, &body).expect("write report");
        progress!("wrote {out_path}");
        return;
    }

    let plain = !json && threads_list.is_none();
    let report = if let Some(threads_list) = threads_list {
        // Sweep mode: one record per thread count, always serde JSON.
        assert!(!threads_list.is_empty(), "--threads list must be non-empty");
        let records: Vec<PerfReport> = threads_list
            .iter()
            .map(|&t| run_one(&scenario_name, seed, Some(t)))
            .collect();
        let digests: Vec<&str> = records.iter().map(|r| r.results_digest.as_str()).collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "results digest varied across thread counts: {digests:?}"
        );
        let mut body = serde_json::to_string_pretty(&records).expect("perf reports serialize");
        body.push('\n');
        body
    } else if json {
        let record = run_one(&scenario_name, seed, None);
        let mut body = serde_json::to_string_pretty(&record).expect("perf report serializes");
        body.push('\n');
        body
    } else {
        let r = run_one(&scenario_name, seed, None);
        format!(
            "{{\n  \"bench\": \"daily_engine\",\n  \"scenario\": \"{}\",\n  \"seed\": {},\n  \"threads\": {},\n  \"setup_secs\": {:.3},\n  \"run_secs\": {:.3},\n  \"days\": {},\n  \"days_per_sec\": {:.2},\n  \"actions\": {},\n  \"actions_per_sec\": {:.0}\n}}\n",
            r.scenario,
            r.seed,
            r.threads,
            r.setup_secs,
            r.run_secs,
            r.days,
            r.days_per_sec,
            r.actions,
            r.actions_per_sec,
        )
    };
    std::fs::write(&out_path, &report).expect("write report");
    if plain {
        print!("{report}");
    }
    progress!("wrote {out_path}");
}
