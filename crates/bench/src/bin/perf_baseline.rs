//! End-to-end engine throughput baseline.
//!
//! Runs the `smoke` scenario to completion, times the whole study, and
//! writes `BENCH_daily_engine.json` with wall time, days/sec, actions/sec,
//! and the worker thread count, so engine changes can be compared against a
//! committed number.
//!
//! Usage: `perf_baseline [seed] [output-path]`

use std::time::Instant;

use footsteps_core::{Scenario, Study};
use footsteps_sim::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(7);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_daily_engine.json".to_string());

    let scenario = Scenario::smoke(seed);
    let threads = scenario.worker_threads;

    let build_start = Instant::now();
    let mut study = Study::new(scenario);
    let build_secs = build_start.elapsed().as_secs_f64();

    let run_start = Instant::now();
    study.run_to_completion();
    let run_secs = run_start.elapsed().as_secs_f64();

    let days = u64::from(study.timeline.end.0);
    let mut actions: u64 = 0;
    for (_, log) in study.platform.log.iter_range(Day(0), study.timeline.end) {
        for (_, counts) in log.outbound() {
            actions += u64::from(counts.total_attempted());
        }
    }

    let report = format!(
        "{{\n  \"bench\": \"daily_engine\",\n  \"scenario\": \"smoke\",\n  \"seed\": {seed},\n  \"threads\": {threads},\n  \"setup_secs\": {build_secs:.3},\n  \"run_secs\": {run_secs:.3},\n  \"days\": {days},\n  \"days_per_sec\": {:.2},\n  \"actions\": {actions},\n  \"actions_per_sec\": {:.0}\n}}\n",
        days as f64 / run_secs,
        actions as f64 / run_secs,
    );
    std::fs::write(&out_path, &report).expect("write report");
    print!("{report}");
    eprintln!("wrote {out_path}");
}
