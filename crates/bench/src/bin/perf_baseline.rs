//! End-to-end engine throughput baseline.
//!
//! Runs the `smoke` scenario to completion, times the whole study, and
//! writes `BENCH_daily_engine.json` with wall time, days/sec, actions/sec,
//! and the worker thread count, so engine changes can be compared against a
//! committed number.
//!
//! Usage: `perf_baseline [--json] [seed] [output-path]`
//!
//! With `--json` the report is serialized through serde and additionally
//! embeds the study's deterministic metrics snapshot and the wall-clock
//! span timings — the machine-readable form `scripts/ci.sh` consumes for
//! its perf-regression gate. Without the flag the compact hand-formatted
//! report of earlier revisions is kept byte-compatible.

use std::time::Instant;

use footsteps_core::{Scenario, Study};
use footsteps_obs::{progress, MetricsSnapshot, TimingsSnapshot};
use footsteps_sim::prelude::*;
use serde::Serialize;

/// The machine-readable (`--json`) report shape.
#[derive(Serialize)]
struct PerfReport {
    bench: &'static str,
    scenario: &'static str,
    seed: u64,
    threads: usize,
    setup_secs: f64,
    run_secs: f64,
    days: u64,
    days_per_sec: f64,
    actions: u64,
    actions_per_sec: f64,
    /// Deterministic counters/histograms from the study run.
    metrics: MetricsSnapshot,
    /// Wall-clock spans (non-deterministic; for profiling only).
    timings: TimingsSnapshot,
}

fn main() {
    let mut json = false;
    let mut positional = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            positional.push(arg);
        }
    }
    let mut positional = positional.into_iter();
    let seed: u64 = positional
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(7);
    let out_path = positional
        .next()
        .unwrap_or_else(|| "BENCH_daily_engine.json".to_string());

    let scenario = Scenario::smoke(seed);
    let threads = scenario.worker_threads;

    let build_start = Instant::now();
    let mut study = Study::new(scenario);
    let build_secs = build_start.elapsed().as_secs_f64();

    let run_start = Instant::now();
    study.run_to_completion();
    let run_secs = run_start.elapsed().as_secs_f64();

    let days = u64::from(study.timeline.end.0);
    let mut actions: u64 = 0;
    for (_, log) in study.platform.log.iter_range(Day(0), study.timeline.end) {
        for (_, counts) in log.outbound() {
            actions += u64::from(counts.total_attempted());
        }
    }

    let report = if json {
        let report = PerfReport {
            bench: "daily_engine",
            scenario: "smoke",
            seed,
            threads,
            setup_secs: build_secs,
            run_secs,
            days,
            days_per_sec: days as f64 / run_secs,
            actions,
            actions_per_sec: actions as f64 / run_secs,
            metrics: study.platform.obs.metrics.snapshot(),
            timings: study.platform.obs.timings.snapshot(),
        };
        let mut body = serde_json::to_string_pretty(&report).expect("perf report serializes");
        body.push('\n');
        body
    } else {
        format!(
            "{{\n  \"bench\": \"daily_engine\",\n  \"scenario\": \"smoke\",\n  \"seed\": {seed},\n  \"threads\": {threads},\n  \"setup_secs\": {build_secs:.3},\n  \"run_secs\": {run_secs:.3},\n  \"days\": {days},\n  \"days_per_sec\": {:.2},\n  \"actions\": {actions},\n  \"actions_per_sec\": {:.0}\n}}\n",
            days as f64 / run_secs,
            actions as f64 / run_secs,
        )
    };
    std::fs::write(&out_path, &report).expect("write report");
    if json {
        progress!(
            "daily_engine: {days} days in {run_secs:.2}s ({:.2} days/sec)",
            days as f64 / run_secs
        );
    } else {
        print!("{report}");
    }
    progress!("wrote {out_path}");
}
