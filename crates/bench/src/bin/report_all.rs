//! Run one full study and print every table and figure — the generator
//! behind EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p footsteps-bench --bin report_all
//! FOOTSTEPS_SMOKE=1 cargo run -p footsteps-bench --bin report_all   # quick
//! ```
use footsteps_bench::render;
use footsteps_core::Phase;

fn main() {
    let mut study = footsteps_bench::study_to_with_stream(Phase::Finished);
    // Honour FOOTSTEPS_TRACE_OUT here too (study_to drives phases
    // directly, bypassing run_to_completion's export).
    match study.platform.obs.export_trace() {
        Ok(Some(path)) => eprintln!("chrome trace written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("chrome trace export failed: {e}"),
    }
    println!(
        "footsteps reproduction report — seed {}, scale 1/{:.0}, population {}\n",
        study.scenario.seed,
        1.0 / study.scenario.scale,
        study.scenario.population_size
    );
    // Each section renders from the frozen study independently, so the
    // analysis epilogue fans out over the worker threads and prints the
    // joined sections in fixed order — stdout is byte-identical for any
    // `FOOTSTEPS_THREADS`, keeping EXPERIMENTS.md redirects reproducible.
    let study = &study;
    let indices: Vec<usize> = (0..21).collect();
    let sections = footsteps_aas::plan_parallel(
        &indices,
        study.platform.config.worker_threads,
        |&i| match i {
            0 => render::franchise_note(),
            1 => render::table01(),
            2 => render::table02(Some(study)),
            3 => render::table03(),
            4 => render::table04(),
            5 => render::table05(study),
            6 => render::detection_quality(study),
            7 => render::table06(study),
            8 => render::table07(study),
            9 => render::table08(study),
            10 => render::table09(study),
            11 => render::table10(study),
            12 => render::table11(study),
            13 => render::figure02(study),
            14 => render::figures0304(study),
            15 => render::figure05(study),
            16 => render::figure06(study),
            17 => render::figure07(study),
            18 => render::section51(study),
            19 => render::epilogue(study),
            20 => render::detection_latency(study),
            _ => unreachable!("section index out of range"),
        },
    );
    for section in sections {
        println!("{section}");
    }
    println!("{}", render::obs(study));
    // Wall-clock spans are non-deterministic — keep them off stdout so
    // redirecting this binary into EXPERIMENTS.md stays reproducible.
    eprint!("{}", render::obs_timings(study));
    eprint!("{}", render::obs_flame(study, 15));
}
