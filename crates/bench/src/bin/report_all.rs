//! Run one full study and print every table and figure — the generator
//! behind EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p footsteps-bench --bin report_all
//! FOOTSTEPS_SMOKE=1 cargo run -p footsteps-bench --bin report_all   # quick
//! ```
use footsteps_bench::render;
use footsteps_core::Phase;

fn main() {
    let study = footsteps_bench::study_to(Phase::Finished);
    println!(
        "footsteps reproduction report — seed {}, scale 1/{:.0}, population {}\n",
        study.scenario.seed,
        1.0 / study.scenario.scale,
        study.scenario.population_size
    );
    println!("{}", render::franchise_note());
    println!("{}", render::table01());
    println!("{}", render::table02(Some(&study)));
    println!("{}", render::table03());
    println!("{}", render::table04());
    println!("{}", render::table05(&study));
    println!("{}", render::detection_quality(&study));
    println!("{}", render::table06(&study));
    println!("{}", render::table07(&study));
    println!("{}", render::table08(&study));
    println!("{}", render::table09(&study));
    println!("{}", render::table10(&study));
    println!("{}", render::table11(&study));
    println!("{}", render::figure02(&study));
    println!("{}", render::figures0304(&study));
    println!("{}", render::figure05(&study));
    println!("{}", render::figure06(&study));
    println!("{}", render::figure07(&study));
    println!("{}", render::section51(&study));
    println!("{}", render::epilogue(&study));
    println!("{}", render::obs(&study));
    // Wall-clock spans are non-deterministic — keep them off stdout so
    // redirecting this binary into EXPERIMENTS.md stays reproducible.
    eprint!("{}", render::obs_timings(&study));
}
