//! Regenerate the §5.1 prose numbers (stability, conversion, overlap).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::section51(&study));
}
