//! Regenerate Table 1 (services offered).
fn main() {
    println!("{}", footsteps_bench::render::table01());
    println!("{}", footsteps_bench::render::franchise_note());
}
