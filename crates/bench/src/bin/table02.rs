//! Regenerate Table 2 (trials and pricing), with the honeypot-measured
//! trial lengths from a characterization run (§4.2).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::table02(Some(&study)));
}
