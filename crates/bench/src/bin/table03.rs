//! Regenerate Table 3 (Hublaagram price list).
fn main() {
    println!("{}", footsteps_bench::render::table03());
}
