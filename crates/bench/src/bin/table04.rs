//! Regenerate Table 4 (Followersgratis packages).
fn main() {
    println!("{}", footsteps_bench::render::table04());
}
