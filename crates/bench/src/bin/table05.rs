//! Regenerate Table 5 (reciprocation probabilities) from the honeypot
//! campaigns of a characterization run (§4.3).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::table05(&study));
}
