//! Regenerate Table 6 (customer bases and long/short-term split).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::table06(&study));
    println!("{}", footsteps_bench::render::detection_quality(&study));
}
