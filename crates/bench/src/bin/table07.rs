//! Regenerate Table 7 (operating countries vs observed ASN locations).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::table07(&study));
}
