//! Regenerate Table 8 (reciprocity-service revenue estimates), scored
//! against the services' ground-truth ledgers.
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::table08(&study));
}
