//! Regenerate Table 9 (the Hublaagram revenue accounting), scored against
//! the ground-truth ledger.
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::table09(&study));
}
