//! Regenerate Table 10 (new vs preexisting payer revenue shares).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::table10(&study));
}
