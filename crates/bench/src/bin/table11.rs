//! Regenerate Table 11 (action-type mixes per service).
use footsteps_core::Phase;
fn main() {
    let study = footsteps_bench::study_to(Phase::Characterized);
    println!("{}", footsteps_bench::render::table11(&study));
}
