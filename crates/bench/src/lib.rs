//! # footsteps-bench
//!
//! The benchmark harness: shared plumbing for the per-table/per-figure
//! experiment binaries (`src/bin/table01.rs` … `src/bin/figure07.rs`,
//! `report_all.rs`) and the Criterion performance benches (`benches/`).
//!
//! Every binary renders *the paper's published values next to the simulated
//! ones* through the same formatting helpers, so `report_all` regenerates
//! EXPERIMENTS.md deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod render;

use footsteps_core::{Phase, Scenario, Study};
use footsteps_obs::progress;

/// Environment knobs for the experiment binaries:
///
/// * `FOOTSTEPS_SEED` — scenario seed (default 7);
/// * `FOOTSTEPS_SMOKE=1` — use the compressed smoke scenario instead of the
///   default 1/50-scale reproduction run (for quick iteration);
/// * `FOOTSTEPS_QUIET=1` — suppress `[footsteps]` progress lines.
pub fn scenario_from_env() -> Scenario {
    let seed = std::env::var("FOOTSTEPS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    if std::env::var("FOOTSTEPS_SMOKE").is_ok_and(|v| v == "1") {
        Scenario::smoke(seed)
    } else {
        Scenario::default_scaled(seed)
    }
}

/// Run a study up to (and including) the given phase.
pub fn study_to(phase: Phase) -> Study {
    study_to_inner(phase, false)
}

/// Like [`study_to`], but attaches the streaming detector (no recorder)
/// before the characterization phase, so the returned study carries a
/// frozen stream outcome and can render the detection-latency section.
pub fn study_to_with_stream(phase: Phase) -> Study {
    study_to_inner(phase, true)
}

fn study_to_inner(phase: Phase, stream: bool) -> Study {
    let mut study = Study::new(scenario_from_env());
    if stream {
        study.attach_stream(None).expect("stream attaches without a recorder");
    }
    if phase >= Phase::Characterized {
        progress!(
            "characterization: {} days …",
            study.scenario.characterization_days
        );
        study.run_characterization();
    }
    if phase >= Phase::NarrowDone {
        progress!("narrow intervention: {} days …", study.scenario.narrow_days);
        study.run_narrow();
    }
    if phase >= Phase::BroadDone {
        progress!("broad intervention: {} days …", study.scenario.broad_days);
        study.run_broad();
    }
    if phase >= Phase::Finished {
        progress!("epilogue: {} days …", study.scenario.epilogue_days);
        study.run_epilogue();
    }
    study
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_sane() {
        // Default seed when the variable is unset.
        std::env::remove_var("FOOTSTEPS_SEED");
        std::env::remove_var("FOOTSTEPS_SMOKE");
        let s = scenario_from_env();
        assert_eq!(s.seed, 7);
        assert!(s.is_valid());
    }
}
