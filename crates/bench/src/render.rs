//! Render functions: one per table/figure, producing the text that the
//! experiment binaries print and that EXPERIMENTS.md embeds.

use footsteps_aas::catalog::{
    self, fmt_dollars, followersgratis_catalog, hublaagram_catalog, offerings,
    reciprocity_pricing,
};
use footsteps_analysis::{pct, thousands, Table};
use footsteps_core::{paper, results, Study};
use footsteps_intervene::DailySeries;
use footsteps_sim::prelude::*;

/// Table 1: the offerings matrix (static catalog).
pub fn table01() -> String {
    let mut t = Table::new(
        "Table 1 — services offered to customers",
        &["Service", "Type", "Like", "Follow", "Comment", "Post", "Unfollow"],
    );
    for s in ServiceId::ALL {
        let o = offerings(s);
        let mark = |b: bool| if b { "*" } else { "" }.to_string();
        t.row(&[
            s.name().to_string(),
            if s.is_reciprocity() { "reciprocity" } else { "collusion" }.to_string(),
            mark(o.like),
            mark(o.follow),
            mark(o.comment),
            mark(o.post),
            mark(o.unfollow),
        ]);
    }
    t.render()
}

/// Table 2: reciprocity trial/pricing, with the honeypot-measured trial
/// length next to the advertised one when a study is supplied.
pub fn table02(study: Option<&Study>) -> String {
    let mut t = Table::new(
        "Table 2 — reciprocity AAS trials and pricing",
        &["Service", "Advertised trial", "Measured trial", "Min paid", "Cost"],
    );
    for s in ServiceId::RECIPROCITY {
        let p = reciprocity_pricing(s);
        let measured = study
            .and_then(|st| {
                footsteps_honeypot::observed_trial_days(
                    &st.framework,
                    &st.platform,
                    s,
                    st.timeline.narrow_start,
                )
            })
            .map(|d| format!("{d} days"))
            .unwrap_or_else(|| "-".to_string());
        t.row(&[
            s.name().to_string(),
            format!("{} days", p.advertised_trial_days),
            measured,
            format!("{} days", p.min_paid_days),
            fmt_dollars(p.min_paid_cents),
        ]);
    }
    t.render()
}

/// Table 3: Hublaagram's price list (static catalog).
pub fn table03() -> String {
    let c = hublaagram_catalog();
    let mut t = Table::new(
        "Table 3 — Hublaagram per-account costs",
        &["Description", "Cost", "Duration"],
    );
    t.row(&[
        "No collusion network".to_string(),
        fmt_dollars(c.no_outbound_cents),
        "Life".to_string(),
    ]);
    for p in &c.one_time {
        t.row(&[
            format!("{} likes", thousands(u64::from(p.likes))),
            fmt_dollars(p.cents),
            "Immediate".to_string(),
        ]);
    }
    for m in &c.monthly {
        t.row(&[
            format!("{}-{} likes", thousands(u64::from(m.min_likes)), thousands(u64::from(m.max_likes))),
            fmt_dollars(m.monthly_cents),
            "Month".to_string(),
        ]);
    }
    t.render()
}

/// Table 4: Followersgratis packages (static catalog).
pub fn table04() -> String {
    let mut t = Table::new(
        "Table 4 — Followersgratis payment options",
        &["Description", "Cost", "Duration"],
    );
    for p in followersgratis_catalog() {
        t.row(&[p.description.clone(), fmt_dollars(p.cents), p.duration.clone()]);
    }
    t.render()
}

/// Table 5: reciprocation probabilities, paper vs measured.
pub fn table05(study: &Study) -> String {
    let rows = results::table5(study);
    let mut t = Table::new(
        "Table 5 — P(inbound reciprocation | outbound action)  [paper / measured]",
        &["Service", "Profile", "Outbound", "Likes", "Follows"],
    );
    for &(service, lived_in, outbound_likes, p_like, p_follow) in &paper::TABLE5 {
        let outbound = if outbound_likes { ActionType::Like } else { ActionType::Follow };
        let measured = footsteps_honeypot::find_row(&rows, service, outbound, lived_in);
        let fmt_cell = |paper_pct: f64, measured: Option<f64>| match measured {
            Some(m) => format!("{paper_pct:.1}% / {:.1}%", 100.0 * m),
            None => format!("{paper_pct:.1}% / -"),
        };
        t.row(&[
            service.name().to_string(),
            if lived_in { "lived-in" } else { "empty" }.to_string(),
            outbound.name().to_string(),
            fmt_cell(p_like, measured.map(|r| r.cell.like_rate())),
            fmt_cell(p_follow, measured.map(|r| r.cell.follow_rate())),
        ]);
    }
    t.render()
}

/// Table 6: customer bases, paper vs measured (with the scale factor applied
/// to the paper's counts for comparability).
pub fn table06(study: &Study) -> String {
    let scale = study.scenario.scale;
    let mut t = Table::new(
        format!(
            "Table 6 — customers over the {}-day window  [paper x{scale} / measured]",
            study.scenario.characterization_days
        ),
        &["Group", "Customers", "Long-term", "LT share (paper/measured)"],
    );
    for row in results::table6(study) {
        let p = paper::TABLE6.iter().find(|(g, _, _)| *g == row.group);
        let (pc, plt) = p.map(|(_, c, lt)| (*c, *lt)).unwrap_or((0, 0));
        t.row(&[
            row.group.to_string(),
            format!("{} / {}", thousands((pc as f64 * scale) as u64), thousands(row.customers)),
            format!("{} / {}", thousands((plt as f64 * scale) as u64), thousands(row.long_term)),
            format!(
                "{} / {}",
                pct(plt as f64 / pc.max(1) as f64),
                pct(row.long_term_share())
            ),
        ]);
    }
    t.render()
}

/// Table 7: operating vs observed locations.
pub fn table07(study: &Study) -> String {
    let mut t = Table::new(
        "Table 7 — service operating country and observed ASN locations",
        &["Group", "Operating country", "ASN locations (observed)"],
    );
    for row in results::table7(study) {
        let asn_list: Vec<&str> = row.asn_countries.iter().map(|c| c.code()).collect();
        t.row(&[
            row.group.to_string(),
            row.operating_country.name().to_string(),
            asn_list.join(", "),
        ]);
    }
    t.render()
}

/// Table 8: reciprocity revenue, estimate vs ledger truth vs scaled paper.
pub fn table08(study: &Study) -> String {
    let t8 = results::table8(study);
    let scale = study.scenario.scale;
    let mut t = Table::new(
        "Table 8 — estimated monthly gross revenue (reciprocity AASs)",
        &["Pricing", "Paid accounts (paper-scaled/measured)", "Revenue (paper-scaled/measured)"],
    );
    let labels = ["Boostgram", "Insta* (Low)", "Insta* (High)"];
    for (i, row) in t8.rows.iter().enumerate() {
        let (_, p_accounts, p_cents) = paper::TABLE8[i];
        t.row(&[
            labels[i].to_string(),
            format!(
                "{} / {}",
                thousands((p_accounts as f64 * scale) as u64),
                thousands(row.paid_accounts)
            ),
            format!(
                "{} / {}",
                fmt_dollars((p_cents as f64 * scale) as u64),
                fmt_dollars(row.revenue_cents)
            ),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "ground truth (ledgers): Boostgram {}, Insta* {}\n",
        fmt_dollars(t8.truth_cents.0),
        fmt_dollars(t8.truth_cents.1)
    ));
    out
}

/// Table 9: the Hublaagram accounting, estimate vs truth vs scaled paper.
pub fn table09(study: &Study) -> String {
    let t9 = results::table9(study);
    let scale = study.scenario.scale;
    let e = &t9.estimate;
    let mut t = Table::new(
        "Table 9 — Hublaagram gross revenue accounting",
        &["Line", "Accounts (paper-scaled/measured)", "Revenue (paper-scaled/measured)"],
    );
    let s = |v: u64| thousands((v as f64 * scale) as u64);
    let d = |v: u64| fmt_dollars((v as f64 * scale) as u64);
    t.row(&[
        "No outbound (one-time)".to_string(),
        format!("{} / {}", s(paper::TABLE9_NO_OUTBOUND.0), thousands(e.no_outbound_accounts)),
        format!("{} / {}", d(paper::TABLE9_NO_OUTBOUND.1), fmt_dollars(e.no_outbound_cents)),
    ]);
    for (i, tier) in hublaagram_catalog().monthly.iter().enumerate() {
        let (p_accounts, p_cents) = paper::TABLE9_MONTHLY_TIERS[i];
        t.row(&[
            format!("{}-{} likes/photo", tier.min_likes, tier.max_likes),
            format!("{} / {}", s(p_accounts), thousands(e.monthly_tier_accounts[i])),
            format!("{} / {}", d(p_cents), fmt_dollars(e.monthly_tier_cents[i])),
        ]);
    }
    t.row(&[
        "2,000 likes once".to_string(),
        format!("{} / {}", s(paper::TABLE9_ONE_TIME.0), thousands(e.one_time_accounts)),
        format!("{} / {}", d(paper::TABLE9_ONE_TIME.1), fmt_dollars(e.one_time_cents)),
    ]);
    t.row(&[
        "Ads shown (low-high CPM)".to_string(),
        format!("{} / {}", s(paper::TABLE9_ADS.0), thousands(e.ad_impressions)),
        format!(
            "{}-{} / {}-{}",
            d(paper::TABLE9_ADS.1),
            d(paper::TABLE9_ADS.2),
            fmt_dollars(e.ads_low_cents),
            fmt_dollars(e.ads_high_cents)
        ),
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "monthly total: paper-scaled {}-{} / measured {}-{}\n",
        d(paper::TABLE9_TOTAL_RANGE.0),
        d(paper::TABLE9_TOTAL_RANGE.1),
        fmt_dollars(e.monthly_total_low()),
        fmt_dollars(e.monthly_total_high())
    ));
    out.push_str(&format!(
        "ground truth (ledger, month): no-outbound {}, monthly {}, one-time {}, ads {}\n",
        fmt_dollars(t9.truth_cents.0),
        fmt_dollars(t9.truth_cents.1),
        fmt_dollars(t9.truth_cents.2),
        fmt_dollars(t9.truth_cents.3)
    ));
    out
}

/// Table 10: new vs preexisting payer revenue shares.
pub fn table10(study: &Study) -> String {
    let mut t = Table::new(
        "Table 10 — revenue share: new vs preexisting payers  [paper / estimated / ledger]",
        &["Group", "New", "Preexisting"],
    );
    for row in results::table10(study) {
        let p = paper::TABLE10.iter().find(|(g, _, _)| *g == row.group);
        let (pn, pp) = p.map(|(_, n, p)| (*n, *p)).unwrap_or((0.0, 0.0));
        t.row(&[
            row.group.to_string(),
            format!("{} / {} / {}", pct(pn), pct(row.estimate.new_share), pct(row.truth.0)),
            format!(
                "{} / {} / {}",
                pct(pp),
                pct(row.estimate.preexisting_share),
                pct(row.truth.1)
            ),
        ]);
    }
    t.render()
}

/// Table 11: action mixes.
pub fn table11(study: &Study) -> String {
    let mut t = Table::new(
        "Table 11 — action types performed per service  [paper / measured]",
        &["Group", "Likes", "Follows", "Comments", "Unfollows"],
    );
    for row in results::table11(study) {
        let p = paper::TABLE11.iter().find(|(g, ..)| *g == row.group);
        let (pl, pf, pc, pu) = p.map(|(_, a, b, c, d)| (*a, *b, *c, *d)).unwrap_or_default();
        let cell = |paper_v: f64, measured: f64| format!("{} / {}", pct(paper_v), pct(measured));
        t.row(&[
            row.group.to_string(),
            cell(pl, row.share_of(ActionType::Like)),
            cell(pf, row.share_of(ActionType::Follow)),
            cell(pc, row.share_of(ActionType::Comment)),
            cell(pu, row.share_of(ActionType::Unfollow)),
        ]);
    }
    t.render()
}

/// Figure 2: customer country distributions.
pub fn figure02(study: &Study) -> String {
    let mut out = String::from("Figure 2 — customer account locations by country (>=5% shown)\n");
    for d in results::figure2(study) {
        let shares: Vec<String> = d
            .shares
            .iter()
            .filter(|(_, s)| *s > 0.0005)
            .map(|(c, s)| format!("{}={}", c.code(), pct(*s)))
            .collect();
        out.push_str(&format!("  {:<11} {}\n", d.group.to_string(), shares.join("  ")));
    }
    out.push_str(
        "  paper:      Insta* RU-led with dominant OTHER; Boostgram US-led; Hublaagram ID-led\n",
    );
    out
}

/// Figures 3 and 4: degree CDFs (medians plus a CDF series sample).
pub fn figures0304(study: &Study) -> String {
    let f = results::figures34(study);
    let mut t = Table::new(
        "Figures 3/4 — target degrees  [paper median / measured median]",
        &["Sample", "Following (fig 3)", "Followers (fig 4)"],
    );
    for s in f.services.iter().chain(std::iter::once(&f.baseline)) {
        let p = paper::FIGURE34_MEDIANS
            .iter()
            .find(|(label, _, _)| *label == s.label)
            .map(|(_, o, i)| (*o, *i))
            .unwrap_or((0.0, 0.0));
        t.row(&[
            s.label.clone(),
            format!("{:.0} / {}", p.0, s.median_following()),
            format!("{:.0} / {}", p.1, s.median_followers()),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!("bias holds (services follow-more/followed-less than baseline): {}\n", f.bias_holds()));
    // Compact CDF series for the figures themselves.
    out.push_str("\nfig3 CDF P(following <= x):\n");
    let grid = f.baseline.following.log_grid(2);
    for s in f.services.iter().chain(std::iter::once(&f.baseline)) {
        let series: Vec<String> = s
            .following
            .series(&grid)
            .into_iter()
            .map(|(x, p)| format!("{x}:{p:.2}"))
            .collect();
        out.push_str(&format!("  {:<18} {}\n", s.label, series.join(" ")));
    }
    out.push_str("\nfig4 CDF P(followers <= x):\n");
    let grid = f.baseline.followers.log_grid(2);
    for s in f.services.iter().chain(std::iter::once(&f.baseline)) {
        let series: Vec<String> = s
            .followers
            .series(&grid)
            .into_iter()
            .map(|(x, p)| format!("{x}:{p:.2}"))
            .collect();
        out.push_str(&format!("  {:<18} {}\n", s.label, series.join(" ")));
    }
    out
}

/// Render a daily series as a sparkline-ish row of values.
fn series_row(label: &str, s: &DailySeries, every: usize) -> String {
    let values: Vec<String> = s
        .values
        .iter()
        .step_by(every.max(1))
        .map(|v| format!("{v:>5.1}"))
        .collect();
    format!("  {label:<9} {}\n", values.join(" "))
}

/// Figure 5: Boostgram follows under the narrow intervention.
pub fn figure05(study: &Study) -> String {
    let f = results::figure5(study);
    let mut out = format!(
        "Figure 5 — median follows per Boostgram user per day (narrow intervention)\n  threshold {}\n",
        f.threshold
    );
    out.push_str(&series_row("block", &f.block, 2));
    out.push_str(&series_row("delay", &f.delay, 2));
    out.push_str(&series_row("control", &f.control, 2));
    let late_start = Day(study.timeline.broad_start.0.saturating_sub(14));
    let end = study.timeline.broad_start;
    out.push_str(&format!(
        "  last-two-week means: block {:.0} (pinned at threshold), delay {:.0}, control {:.0}\n",
        f.block.mean_over(late_start, end),
        f.delay.mean_over(late_start, end),
        f.control.mean_over(late_start, end)
    ));
    out.push_str("  paper: blocked bin drops to the threshold and probes it; delay bin tracks control\n");
    out
}

/// Figure 6: Hublaagram like eligibility and the ~3-week reaction.
pub fn figure06(study: &Study) -> String {
    let f = results::figure6(study);
    let mut out = format!(
        "Figure 6 — share of Hublaagram likes eligible for countermeasure (blocked bin)\n  inbound threshold {}\n",
        f.threshold
    );
    out.push_str(&series_row("block", &f.block, 2));
    out.push_str(&series_row("control", &f.control, 2));
    let ns = study.timeline.narrow_start.0;
    let early = f.block.mean_over(Day(ns), Day(ns + 14));
    let late = f.block.mean_over(Day(ns + 28), study.timeline.broad_start);
    // First day the blocked share falls below half its early level.
    let reaction = f
        .block
        .values
        .iter()
        .position(|&v| v < early / 2.0)
        .map(|d| d as u32);
    out.push_str(&format!(
        "  blocked bin: weeks 1-2 {:.0}%, weeks 5-6 {:.0}%; control stays ~{:.0}%\n",
        100.0 * early,
        100.0 * late,
        100.0 * f.control.mean_over(Day(ns + 28), study.timeline.broad_start)
    ));
    out.push_str(&format!(
        "  reaction day (relative): {:?}  (paper: ~day 21 — the service had to implement blocked-like detection)\n",
        reaction
    ));
    out
}

/// Figure 7: the broad intervention (delay week then block week).
pub fn figure07(study: &Study) -> String {
    let f = results::figure7(study);
    let mut out = format!(
        "Figure 7 — share of Boostgram follows eligible (broad intervention, 90% treated)\n  threshold {}, delay->block switch on day {}\n",
        f.threshold, f.switch_day.0
    );
    out.push_str(&series_row("treated", &f.treated, 1));
    out.push_str(&series_row("control", &f.control, 1));
    let bs = study.timeline.broad_start;
    let es = study.timeline.epilogue_start;
    out.push_str(&format!(
        "  treated means: delay week {:.0}%, block week {:.0}%; control {:.0}%\n",
        100.0 * f.treated.mean_over(bs, f.switch_day),
        100.0 * f.treated.mean_over(f.switch_day, es),
        100.0 * f.control.mean_over(bs, es)
    ));
    out.push_str("  paper: no reaction to the delay week; immediate adaptation once blocking starts\n");
    out
}

/// §5.1 prose numbers.
pub fn section51(study: &Study) -> String {
    let s = results::section51(study);
    let mut out = String::from("Section 5.1 — user stability  [paper / measured]\n");
    for (g, c) in &s.conversion {
        let p = paper::CONVERSION_RATE.iter().find(|(pg, _)| pg == g).map(|(_, v)| *v).unwrap_or(0.0);
        out.push_str(&format!("  {:<11} first-month LT conversion: {} / {}\n", g.to_string(), pct(p), pct(*c)));
    }
    for (g, c) in &s.long_term_action_share {
        let p = paper::LONG_TERM_ACTION_SHARE.iter().find(|(pg, _)| pg == g).map(|(_, v)| *v).unwrap_or(0.0);
        out.push_str(&format!("  {:<11} LT share of actions:       {} / {}\n", g.to_string(), pct(p), pct(*c)));
    }
    for r in &s.stability {
        out.push_str(&format!(
            "  {:<11} LT daily actives {} -> {} (growth {:+.1}%), births {:.1}/day, deaths {:.1}/day\n",
            r.group.to_string(),
            r.daily_active_long_term.first().copied().unwrap_or(0),
            r.daily_active_long_term.last().copied().unwrap_or(0),
            100.0 * r.growth,
            r.births_per_day,
            r.deaths_per_day
        ));
    }
    for (a, b, n) in &s.overlaps {
        out.push_str(&format!("  overlap {a} ∩ {b}: {n} accounts\n"));
    }
    out.push_str("  paper: overlap small; Insta* grew ~10%, others shrank slightly\n");
    out
}

/// Epilogue (§6.4).
pub fn epilogue(study: &Study) -> String {
    let e = results::epilogue(study);
    let mut out = String::from("Epilogue (§6.4) — months of continued enforcement\n");
    for (s, n) in &e.reciprocity_migrations {
        out.push_str(&format!("  {s}: {n} ASN migration(s)\n"));
    }
    out.push_str(&format!(
        "  Insta* like traffic on proxy network: {} (paper: \"an extensive proxy network\")\n",
        e.insta_likes_on_proxy
    ));
    out.push_str(&format!(
        "  Insta* follow traffic back on original ASN: {} (paper: moved follows back — delay was invisible)\n",
        e.insta_follows_back_home
    ));
    out.push_str(&format!(
        "  Hublaagram: {} migration(s), out of stock on day {:?} (paper: listed all services \"out of stock\")\n",
        e.hublaagram_migrations, e.hublaagram_out_of_stock_on.map(|d| d.0)
    ));
    out
}

/// Detection-pipeline quality (not a paper table, but the validation the
/// simulator makes possible).
pub fn detection_quality(study: &Study) -> String {
    let mut t = Table::new(
        "Detection pipeline vs ground truth (classification window)",
        &["Group", "Classified", "Precision", "Recall"],
    );
    // Restrict to accounts that existed when the classification window
    // closed; ground truth keeps accumulating during the interventions.
    let cutoff = study.timeline.narrow_start.start();
    for group in ServiceGroup::BUSINESS {
        let score = footsteps_detect::score_group_before(
            &study.platform,
            &study.pipeline().classification,
            group,
            cutoff,
        );
        t.row(&[
            group.to_string(),
            thousands((score.tp + score.fp) as u64),
            pct(score.precision()),
            pct(score.recall()),
        ]);
    }
    t.render()
}

/// Detection latency (DESIGN.md §8): how many days the online detector
/// trails the batch classifier per service, with online-vs-batch
/// precision/recall. Needs a study run with the stream attached
/// ([`crate::study_to_with_stream`]); renders a placeholder otherwise.
pub fn detection_latency(study: &Study) -> String {
    let (Some(outcome), Some(report)) = (study.stream.as_ref(), study.detection_latency()) else {
        return "Detection latency — skipped (no streaming detector attached to this study)\n"
            .to_string();
    };
    let mut t = Table::new(
        "Detection latency — online detector vs batch classifier",
        &["Service", "Matched", "Latency (mean ± std days)", "Max", "Precision", "Recall"],
    );
    for row in &report.rows {
        t.row(&[
            row.service.name().to_string(),
            thousands(row.matched),
            format!("{:.2} ± {:.2}", row.mean_days, row.std_days),
            row.max_days.to_string(),
            pct(row.score.precision()),
            pct(row.score.recall()),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "  overall: {:.2} days mean latency (matched-weighted); online detector \
         consumed {} day-batches / {} records; verdict digest 0x{:016x}\n",
        report.overall_mean_days(),
        outcome.batches,
        outcome.events_processed,
        outcome.verdict_digest,
    ));
    out
}

/// The observability report: deterministic counters from the study's obs
/// registry (action mix by service, enforcement outcomes by phase, per-bin
/// attributions, detection tallies). Byte-identical for any worker-thread
/// count, so it can ride in EXPERIMENTS.md; the non-deterministic
/// wall-clock spans live in [`obs_timings`], which `report_all` keeps off
/// stdout.
pub fn obs(study: &Study) -> String {
    let snap = study.platform.obs.metrics.snapshot();
    let mut out = String::new();

    // --- attempted actions by service -----------------------------------
    let mut t = Table::new(
        "Obs — attempted actions by service (all phases)",
        &["Service", "Like", "Follow", "Comment", "Post", "Unfollow"],
    );
    let rows: Vec<(String, &str)> = ServiceId::ALL
        .iter()
        .map(|s| (s.name().to_string(), s.slug()))
        .chain(std::iter::once(("Organic".to_string(), "organic")))
        .collect();
    for (name, slug) in rows {
        t.row(&[
            name,
            thousands(snap.counter(&format!("actions.{slug}.like"))),
            thousands(snap.counter(&format!("actions.{slug}.follow"))),
            thousands(snap.counter(&format!("actions.{slug}.comment"))),
            thousands(snap.counter(&format!("actions.{slug}.post"))),
            thousands(snap.counter(&format!("actions.{slug}.unfollow"))),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // --- enforcement outcomes by phase ----------------------------------
    let phase_names: Vec<String> = snap.phases.iter().map(|(n, _)| n.clone()).collect();
    let mut header: Vec<&str> = vec!["Counter"];
    header.extend(phase_names.iter().map(String::as_str));
    header.push("Total");
    let mut t = Table::new("Obs — platform outcomes by phase", &header);
    for key in [
        "platform.outbound.delivered",
        "platform.outbound.blocked",
        "platform.outbound.deferred",
        "platform.outbound.rate_limited",
        "platform.outbound.edge_blocked",
        "platform.inbound.delivered",
        "platform.inbound.blocked",
        "platform.inbound.deferred",
        "platform.removed_follows",
    ] {
        let mut cells = vec![key.to_string()];
        for (_, frame) in &snap.phases {
            cells.push(thousands(frame.counters.get(key).copied().unwrap_or(0)));
        }
        cells.push(thousands(snap.counter(key)));
        t.row(&cells);
    }
    out.push_str(&t.render());
    out.push('\n');

    // --- per-bin enforcement attribution (intervention phases) -----------
    let bin_rows: Vec<(String, u64, u64, u64)> = (0..16u32)
        .filter_map(|b| {
            let del = snap.counter(&format!("enforce.bin{b}.delivered"));
            let blk = snap.counter(&format!("enforce.bin{b}.blocked"));
            let dfr = snap.counter(&format!("enforce.bin{b}.deferred"));
            (del + blk + dfr > 0).then(|| (format!("bin {b}"), del, blk, dfr))
        })
        .collect();
    if !bin_rows.is_empty() {
        let mut t = Table::new(
            "Obs — enforcement outcomes by intervention bin",
            &["Bin", "Delivered", "Blocked", "Deferred"],
        );
        for (name, del, blk, dfr) in bin_rows {
            t.row(&[name, thousands(del), thousands(blk), thousands(dfr)]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }

    // --- detection tallies ------------------------------------------------
    let mut t = Table::new(
        "Obs — detection pipeline tallies",
        &["Counter", "Value"],
    );
    for (key, value) in snap.counters_with_prefix("detect.") {
        t.row(&[key.to_string(), thousands(value)]);
    }
    out.push_str(&t.render());
    out
}

/// The quarantined wall-clock span timings, rendered as a table (empty
/// string when nothing was timed). Non-deterministic by nature — varies
/// run to run and with the worker-thread count — so `report_all` prints
/// it to stderr only, keeping stdout (and EXPERIMENTS.md regeneration)
/// byte-reproducible.
pub fn obs_timings(study: &Study) -> String {
    let timings = study.platform.obs.timings.snapshot();
    if timings.is_empty() {
        return String::new();
    }
    let mut t = Table::new(
        "Obs — wall-clock span timings (NON-DETERMINISTIC, excluded from digests)",
        &["Span", "Count", "Total s", "Mean ms", "Max ms"],
    );
    for (name, s) in &timings.spans {
        t.row(&[
            name.clone(),
            thousands(s.count),
            format!("{:.3}", s.total_secs),
            format!("{:.3}", s.mean_secs() * 1e3),
            format!("{:.3}", s.max_secs * 1e3),
        ]);
    }
    t.render()
}

/// The hierarchical flamegraph-style span report (the `obs-report` bin's
/// output, embedded here so `report_all` carries it too). Wall-clock —
/// non-deterministic — so it rides the same stderr-only channel as
/// [`obs_timings`]. Empty string when nothing was timed.
pub fn obs_flame(study: &Study, top_k: usize) -> String {
    let timings = &study.platform.obs.timings;
    if timings.snapshot().is_empty() {
        return String::new();
    }
    format!(
        "Obs — hierarchical span profile (NON-DETERMINISTIC, excluded from digests)\n\
         structure digest: {}\n{}",
        timings.structure_digest(),
        timings.flame_report(top_k)
    )
}

/// The franchise note (§3.3): Instalex and Instazood share a parent.
pub fn franchise_note() -> String {
    let (lo, hi) = catalog::FRANCHISE_FEE_RANGE_CENTS;
    format!(
        "Instalex and Instazood are independently operated franchisees of one parent \
         (franchise packages {}-{} per month); their platform traffic is \
         indistinguishable and is analysed as \"Insta*\".\n",
        fmt_dollars(lo),
        fmt_dollars(hi)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One smoke-scale study pushed through every renderer: guards the
    /// whole results→render path against panics and empty output.
    #[test]
    fn all_renders_survive_a_smoke_study() {
        let mut study = footsteps_core::Study::new(footsteps_core::Scenario::smoke(31));
        study.run_to_completion();
        let sections = [
            table02(Some(&study)),
            table05(&study),
            table06(&study),
            table07(&study),
            table08(&study),
            table09(&study),
            table10(&study),
            table11(&study),
            figure02(&study),
            figures0304(&study),
            figure05(&study),
            figure06(&study),
            figure07(&study),
            section51(&study),
            epilogue(&study),
            detection_quality(&study),
            obs(&study),
            obs_timings(&study),
        ];
        for (i, s) in sections.iter().enumerate() {
            assert!(s.len() > 80, "section {i} suspiciously short: {s:?}");
            assert!(!s.contains("NaN"), "section {i} contains NaN");
        }
    }

    #[test]
    fn static_tables_render_paper_values() {
        let t1 = table01();
        assert!(t1.contains("Instalex"));
        assert!(t1.contains("Followersgratis"));
        let t2 = table02(None);
        assert!(t2.contains("$3.15"));
        assert!(t2.contains("$0.34"));
        assert!(t2.contains("$99"));
        let t3 = table03();
        assert!(t3.contains("$15"));
        assert!(t3.contains("2,000 likes"));
        assert!(t3.contains("Month"));
        let t4 = table04();
        assert!(t4.contains("500 Follows"));
        let note = franchise_note();
        assert!(note.contains("$1,990") || note.contains("$1990"));
    }
}
