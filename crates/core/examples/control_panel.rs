//! A text rendering of the Instalex customer control panel (Figure 1 is a
//! screenshot of the real thing): enroll an account, run a trial, and show
//! the per-type action counters a paying customer would see.
//!
//! ```text
//! cargo run --release --example control_panel
//! ```

use footsteps_aas::catalog::{fmt_dollars, reciprocity_pricing};
use footsteps_core::{Scenario, Study};
use footsteps_sim::prelude::*;

fn main() {
    let mut study = Study::new(Scenario::smoke(13));
    study.run_characterization();

    // Pick one Instalex honeypot per requested type to play "our account".
    let end = study.timeline.narrow_start;
    let pricing = reciprocity_pricing(ServiceId::Instalex);
    println!("┌──────────────────────────────────────────────────────────┐");
    println!("│  INSTALEX — account automation control panel              │");
    println!("│  plan: {:>8} per {} days   ·   trial: {} days            │",
        fmt_dollars(pricing.min_paid_cents), pricing.min_paid_days, pricing.advertised_trial_days);
    println!("├──────────────────────────────────────────────────────────┤");
    let campaign = study
        .campaigns
        .iter()
        .find(|c| c.service == ServiceId::Instalex)
        .expect("instalex campaign");
    for (ty, accounts) in &campaign.cohorts {
        let account = accounts[0];
        let performed = study.platform.log.total_outbound(account, *ty, Day(0), end);
        let inbound_likes = study.platform.log.total_inbound(account, ActionType::Like, Day(0), end);
        let inbound_follows =
            study.platform.log.total_inbound(account, ActionType::Follow, Day(0), end);
        println!(
            "│  {:<9} campaign  →  {:>6} performed   ({:>4} likes, {:>4} follows earned)  ",
            ty.name(), performed, inbound_likes, inbound_follows
        );
    }
    println!("├──────────────────────────────────────────────────────────┤");
    let followers: u32 = campaign
        .cohorts
        .iter()
        .map(|(_, accounts)| study.platform.accounts.get(accounts[0]).followers)
        .sum();
    println!("│  total followers gained across campaigns: {:>6}          ", followers);
    // §2's influencer metric, measured live for the like-campaign account.
    let like_account = campaign.cohorts[0].1[0];
    let er = footsteps_analysis::engagement(&study.platform, like_account, Day(0), end);
    match er.rate() {
        Some(r) => println!(
            "│  engagement rate (likes+comments)/followers = {r:.2}        "
        ),
        None => println!("│  engagement rate: undefined (no followers yet)            "),
    }
    println!("└──────────────────────────────────────────────────────────┘");
    println!("\n(the real panel is Figure 1 in the paper — a screenshot; this demo drives");
    println!(" the same account-automation flows against the simulated platform)");
}
