//! Honeypot study (§4): stand up the five services, register honeypot
//! cohorts, verify attribution and trial lengths, and measure the
//! reciprocation matrix of Table 5.
//!
//! ```text
//! cargo run --release --example honeypot_study
//! ```

use footsteps_analysis::{pct, Table};
use footsteps_core::{paper, results, Scenario, Study};
use footsteps_honeypot::{baseline_inbound, observed_trial_days, unrequested_action_types};
use footsteps_sim::prelude::*;

fn main() {
    let mut study = Study::new(Scenario::smoke(11));
    println!(
        "registered {} honeypot accounts across {} campaigns (+{} inactive baseline)\n",
        study.campaigns.iter().map(|c| c.total_accounts()).sum::<usize>(),
        study.campaigns.len(),
        study.scenario.baseline_accounts
    );
    study.run_characterization();
    let end = study.timeline.narrow_start;

    // §4.1.3 — attribution: the inactive baseline must be silent.
    let noise = baseline_inbound(&study.framework, &study.platform, Day(0), end);
    println!("baseline (inactive) inbound actions: {noise}  (attribution requires 0)");

    // §4.2 — the services perform as advertised.
    let offenders = unrequested_action_types(&study.framework, &study.platform, Day(0), end);
    println!("honeypots with un-requested action types: {}", offenders.len());

    // §4.2 — measured trial lengths.
    let mut t = Table::new("\nTrial lengths", &["Service", "Advertised", "Measured"]);
    for s in ServiceId::RECIPROCITY {
        let adv = footsteps_aas::catalog::reciprocity_pricing(s).advertised_trial_days;
        let measured = observed_trial_days(&study.framework, &study.platform, s, end);
        t.row(&[
            s.name().to_string(),
            format!("{adv} days"),
            measured.map_or("-".into(), |d| format!("{d} days")),
        ]);
    }
    println!("{}", t.render());

    // §4.3 — Table 5.
    let rows = results::table5(&study);
    let mut t = Table::new(
        "Reciprocation (Table 5)  [measured, paper in brackets]",
        &["Service", "Profile", "Outbound", "Likes", "Follows"],
    );
    for &(service, lived_in, likes, p_like, p_follow) in &paper::TABLE5 {
        let outbound = if likes { ActionType::Like } else { ActionType::Follow };
        if let Some(r) = footsteps_honeypot::find_row(&rows, service, outbound, lived_in) {
            t.row(&[
                service.name().to_string(),
                if lived_in { "lived-in" } else { "empty" }.to_string(),
                outbound.name().to_string(),
                format!("{} [{p_like:.1}%]", pct(r.cell.like_rate())),
                format!("{} [{p_follow:.1}%]", pct(r.cell.follow_rate())),
            ]);
        }
    }
    println!("{}", t.render());
    println!("note: smoke scale — run the table05 bench binary for the full-scale measurement");
}
