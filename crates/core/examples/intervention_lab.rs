//! Intervention lab (§6): run the narrow and broad experiments and watch
//! the services react (or fail to) — the block-vs-delay asymmetry that is
//! the paper's headline finding.
//!
//! ```text
//! cargo run --release --example intervention_lab
//! ```

use footsteps_core::{results, Scenario, Study};
use footsteps_obs::progress;
use footsteps_sim::prelude::*;

fn bar(v: f64, scale: f64) -> String {
    let n = ((v * scale).round() as usize).min(60);
    "#".repeat(n)
}

fn main() {
    let mut study = Study::new(Scenario::default_scaled(7));
    progress!("characterizing ({} days)…", study.scenario.characterization_days);
    study.run_characterization();
    progress!("narrow intervention ({} days)…", study.scenario.narrow_days);
    study.run_narrow();

    let fig5 = results::figure5(&study);
    println!(
        "\nBoostgram median follows/user/day (narrow window; threshold = {}):",
        fig5.threshold
    );
    println!("{:>4} {:>8} {:>8} {:>8}", "day", "block", "delay", "control");
    for (i, day) in Day::range(study.timeline.narrow_start, study.timeline.broad_start)
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
    {
        let _ = i;
        let b = fig5.block.on(day).unwrap_or(0.0);
        let d = fig5.delay.on(day).unwrap_or(0.0);
        let c = fig5.control.on(day).unwrap_or(0.0);
        println!("{:>4} {b:>8.0} {d:>8.0} {c:>8.0}   block: {}", day.0, bar(b, 0.3));
    }
    println!(
        "\nservice state: Boostgram follow detection active = {}, throttled customers = {}",
        study.boostgram.detection_active(ActionType::Follow),
        study.boostgram.throttled_customer_count(ActionType::Follow)
    );

    let fig6 = results::figure6(&study);
    println!("\nHublaagram eligible-like share (blocked bin) — watch week 3:");
    for (i, v) in fig6.block.values.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
        println!("  day {:>2}  {:>5.1}%  {}", i, 100.0 * v, bar(*v, 40.0));
    }

    progress!("broad intervention ({} days)…", study.scenario.broad_days);
    study.run_broad();
    let fig7 = results::figure7(&study);
    println!("\nBoostgram eligible-follow share, 90% treated (delay week then block week):");
    for (i, v) in fig7.treated.values.iter().enumerate() {
        let day = study.timeline.broad_start.0 + i as u32;
        let marker = if day == fig7.switch_day.0 { "  <- switch to block" } else { "" };
        println!("  day {:>3}  {:>5.1}%  {}{}", day, 100.0 * v, bar(*v, 100.0), marker);
    }

    progress!("epilogue ({} days)…", study.scenario.epilogue_days);
    study.run_epilogue();
    let ep = results::epilogue(&study);
    println!("\noutcome of the arms race:");
    for (s, n) in &ep.reciprocity_migrations {
        println!("  {s}: {n} ASN migration(s)");
    }
    println!("  Insta* likes on proxy network: {}", ep.insta_likes_on_proxy);
    println!("  Insta* follows back on original ASN: {}", ep.insta_follows_back_home);
    println!(
        "  Hublaagram out of stock: {:?}",
        ep.hublaagram_out_of_stock_on.map(|d| format!("day {}", d.0))
    );
}
