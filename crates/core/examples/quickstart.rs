//! Quickstart: run a compact study end-to-end and print the headline
//! results of every phase.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use footsteps_analysis::{pct, thousands, Table};
use footsteps_core::{paper, results, Scenario, Study};
use footsteps_obs::progress;
use footsteps_sim::prelude::*;

fn main() {
    // A compact scenario (1/500 scale, 24-day characterization) so the
    // quickstart finishes in seconds; see `revenue_audit` and
    // `intervention_lab` for the full-scale runs.
    let scenario = Scenario::smoke(7);
    println!(
        "== footsteps quickstart ==\nscale 1/{:.0}, population {}, seed {}\n",
        1.0 / scenario.scale,
        thousands(u64::from(scenario.population_size)),
        scenario.seed
    );

    let mut study = Study::new(scenario);
    println!(
        "world ready: {} accounts, {} honeypots, 5 services\n",
        thousands(study.platform.accounts.len() as u64),
        study.framework.records().len()
    );

    progress!("running characterization ({} days)...", study.scenario.characterization_days);
    study.run_characterization();

    // Classifier quality against ground truth.
    let mut t = Table::new("Detection pipeline", &["Group", "Customers", "Precision", "Recall"]);
    for group in ServiceGroup::BUSINESS {
        let score = footsteps_detect::score_group(
            &study.platform,
            &study.pipeline().classification,
            group,
        );
        t.row(&[
            group.to_string(),
            thousands((score.tp + score.fp) as u64),
            pct(score.precision()),
            pct(score.recall()),
        ]);
    }
    println!("\n{}", t.render());

    // Table 6 shape.
    let mut t = Table::new(
        "Customer base (Table 6 shape)",
        &["Group", "Customers", "Long-term", "LT share", "paper LT share"],
    );
    for row in results::table6(&study) {
        let paper_row = paper::TABLE6.iter().find(|(g, _, _)| *g == row.group);
        let paper_share = paper_row.map_or(0.0, |(_, c, lt)| *lt as f64 / *c as f64);
        t.row(&[
            row.group.to_string(),
            thousands(row.customers),
            thousands(row.long_term),
            pct(row.long_term_share()),
            pct(paper_share),
        ]);
    }
    println!("{}", t.render());

    progress!("running narrow intervention ({} days)...", study.scenario.narrow_days);
    study.run_narrow();
    let fig5 = results::figure5(&study);
    let late_start = study.timeline.broad_start.0.saturating_sub(7);
    println!(
        "figure 5 (last week medians): threshold={}  block={:.0}  delay={:.0}  control={:.0}",
        fig5.threshold,
        fig5.block.mean_over(Day(late_start), study.timeline.broad_start),
        fig5.delay.mean_over(Day(late_start), study.timeline.broad_start),
        fig5.control.mean_over(Day(late_start), study.timeline.broad_start),
    );

    progress!("running broad intervention ({} days)...", study.scenario.broad_days);
    study.run_broad();
    let fig7 = results::figure7(&study);
    println!(
        "figure 7 (eligible share): delay week={}  block week={}  control={}",
        pct(fig7.treated.mean_over(study.timeline.broad_start, fig7.switch_day)),
        pct(fig7.treated.mean_over(fig7.switch_day, study.timeline.epilogue_start)),
        pct(fig7.control.mean_over(study.timeline.broad_start, study.timeline.epilogue_start)),
    );

    progress!("running epilogue ({} days)...", study.scenario.epilogue_days);
    study.run_epilogue();
    let ep = results::epilogue(&study);
    println!(
        "epilogue: insta* migrations={}, likes on proxy={}, follows back home={}, \
         hublaagram out-of-stock={:?}",
        ep.reciprocity_migrations[0].1,
        ep.insta_likes_on_proxy,
        ep.insta_follows_back_home,
        ep.hublaagram_out_of_stock_on.map(|d| d.0),
    );
    progress!("done.");
}
