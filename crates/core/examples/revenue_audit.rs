//! Revenue audit (§5.2): run the business characterization and score the
//! paper's revenue-estimation methodology against the services' ground-truth
//! payment ledgers — a validation the paper itself could not perform.
//!
//! ```text
//! cargo run --release --example revenue_audit
//! ```

use footsteps_aas::catalog::fmt_dollars;
use footsteps_analysis::{pct, ratio, thousands, Table};
use footsteps_core::{results, Scenario, Study};
use footsteps_obs::progress;

fn main() {
    let mut study = Study::new(Scenario::default_scaled(7));
    progress!("characterizing ({} days)…", study.scenario.characterization_days);
    study.run_characterization();

    // --- Table 8: reciprocity services ------------------------------------
    let t8 = results::table8(&study);
    let mut t = Table::new(
        "Reciprocity AAS revenue (monthly)",
        &["Pricing model", "Paid accounts", "Estimated", "Ledger truth", "est/truth"],
    );
    let truths = [t8.truth_cents.0, t8.truth_cents.1, t8.truth_cents.1];
    let labels = ["Boostgram", "Insta* (Low)", "Insta* (High)"];
    for (i, row) in t8.rows.iter().enumerate() {
        t.row(&[
            labels[i].to_string(),
            thousands(row.paid_accounts),
            fmt_dollars(row.revenue_cents),
            fmt_dollars(truths[i]),
            ratio(row.revenue_cents as f64, truths[i] as f64),
        ]);
    }
    println!("{}", t.render());

    // --- Table 9: Hublaagram ------------------------------------------------
    let t9 = results::table9(&study);
    let e = &t9.estimate;
    let mut t = Table::new(
        "Hublaagram revenue accounting",
        &["Line", "Accounts", "Estimated", "Ledger truth"],
    );
    t.row(&[
        "No outbound (lifetime)".into(),
        thousands(e.no_outbound_accounts),
        fmt_dollars(e.no_outbound_cents),
        format!("{} (month)", fmt_dollars(t9.truth_cents.0)),
    ]);
    let tier_total: u64 = e.monthly_tier_cents.iter().sum();
    let tier_accounts: u64 = e.monthly_tier_accounts.iter().sum();
    t.row(&[
        "Monthly like tiers".into(),
        thousands(tier_accounts),
        fmt_dollars(tier_total),
        fmt_dollars(t9.truth_cents.1),
    ]);
    t.row(&[
        "One-time likes".into(),
        thousands(e.one_time_accounts),
        fmt_dollars(e.one_time_cents),
        fmt_dollars(t9.truth_cents.2),
    ]);
    t.row(&[
        "Ads (low-high CPM)".into(),
        thousands(e.ad_impressions),
        format!("{}-{}", fmt_dollars(e.ads_low_cents), fmt_dollars(e.ads_high_cents)),
        fmt_dollars(t9.truth_cents.3),
    ]);
    println!("{}", t.render());
    println!(
        "estimated monthly total: {}-{}\n",
        fmt_dollars(e.monthly_total_low()),
        fmt_dollars(e.monthly_total_high())
    );

    // --- Table 10: who pays ---------------------------------------------------
    let mut t = Table::new(
        "Revenue split: new vs preexisting payers  [estimated | ledger]",
        &["Group", "New", "Preexisting"],
    );
    for row in results::table10(&study) {
        t.row(&[
            row.group.to_string(),
            format!("{} | {}", pct(row.estimate.new_share), pct(row.truth.0)),
            format!("{} | {}", pct(row.estimate.preexisting_share), pct(row.truth.1)),
        ]);
    }
    println!("{}", t.render());
    println!("paper: the lion's share of revenue comes from repeat (preexisting) customers");
}
