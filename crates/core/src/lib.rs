//! # footsteps-core
//!
//! The study orchestrator for the `footsteps` reproduction of *Following
//! Their Footsteps: Characterizing Account Automation Abuse and Defenses*
//! (DeKoven et al., IMC 2018).
//!
//! A [`Scenario`] fully determines a [`Study`]; running the study's phases
//! (characterization → detection pipeline → narrow intervention → broad
//! intervention → epilogue) produces a world from which [`results`] computes
//! a typed value for **every table and figure** in the paper's evaluation,
//! with the published numbers available in [`paper`] for side-by-side
//! comparison.
//!
//! ```no_run
//! use footsteps_core::{results, Scenario, Study};
//!
//! let mut study = Study::new(Scenario::default_scaled(7));
//! study.run_to_completion();
//! let table6 = results::table6(&study);
//! for row in table6 {
//!     println!("{}: {} customers ({} long-term)", row.group, row.customers, row.long_term);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod paper;
pub mod results;
pub mod scenario;
pub mod study;
pub mod world;

pub use scenario::Scenario;
pub use study::{Phase, Study, Timeline};
pub use world::AsnLayout;
