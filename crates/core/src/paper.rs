//! The paper's published numbers, encoded for side-by-side comparison.
//!
//! Every experiment binary prints the paper's value next to the simulated
//! value. Absolute magnitudes are expected to differ (we run at 1/100 scale
//! on a synthetic substrate); the *shapes* — who wins, by what factor, where
//! crossovers fall — are what EXPERIMENTS.md tracks.

use footsteps_sim::prelude::{ServiceGroup, ServiceId};

/// Table 5, as published: reciprocation probabilities in percent.
/// `(service, lived_in, outbound_likes, like_pct, follow_pct)`.
pub const TABLE5: [(ServiceId, bool, bool, f64, f64); 12] = [
    // Outbound likes, empty accounts.
    (ServiceId::Boostgram, false, true, 1.5, 0.1),
    (ServiceId::Instalex, false, true, 2.1, 1.4),
    (ServiceId::Instazood, false, true, 2.1, 0.2),
    // Outbound likes, lived-in accounts.
    (ServiceId::Boostgram, true, true, 3.9, 0.2),
    (ServiceId::Instalex, true, true, 3.7, 1.8),
    (ServiceId::Instazood, true, true, 3.5, 0.4),
    // Outbound follows, empty accounts.
    (ServiceId::Boostgram, false, false, 0.0, 10.3),
    (ServiceId::Instalex, false, false, 0.0, 12.8),
    (ServiceId::Instazood, false, false, 0.0, 13.0),
    // Outbound follows, lived-in accounts.
    (ServiceId::Boostgram, true, false, 0.0, 12.0),
    (ServiceId::Instalex, true, false, 0.0, 13.7),
    (ServiceId::Instazood, true, false, 0.0, 16.1),
];

/// Table 6: `(group, customers, long_term)` over the 90-day window.
pub const TABLE6: [(ServiceGroup, u64, u64); 3] = [
    (ServiceGroup::InstaStar, 121_661, 41_891),
    (ServiceGroup::Boostgram, 11_959, 3_975),
    (ServiceGroup::Hublaagram, 1_008_127, 501_428),
];

/// §5.1: share of each group's actions from long-term customers.
pub const LONG_TERM_ACTION_SHARE: [(ServiceGroup, f64); 3] = [
    (ServiceGroup::InstaStar, 0.916),
    (ServiceGroup::Boostgram, 0.897),
    (ServiceGroup::Hublaagram, 0.923),
];

/// §5.1: first-month long-term conversion rates.
pub const CONVERSION_RATE: [(ServiceGroup, f64); 3] = [
    (ServiceGroup::InstaStar, 0.21),
    (ServiceGroup::Boostgram, 0.12),
    (ServiceGroup::Hublaagram, 0.37),
];

/// Table 8: `(label, paid accounts, monthly revenue in cents)`.
pub const TABLE8: [(&str, u64, u64); 3] = [
    ("Boostgram", 3_016, 29_858_400),
    ("Insta* (Low)", 25_122, 19_501_700),
    ("Insta* (High)", 25_122, 22_378_500),
];

/// Table 9, Hublaagram accounting: one-time fee side.
pub const TABLE9_NO_OUTBOUND: (u64, u64) = (24_420, 36_630_000); // accounts, cents

/// Table 9: monthly like tiers `(accounts, monthly cents)`, Table 3 order.
pub const TABLE9_MONTHLY_TIERS: [(u64, u64); 4] = [
    (11_249, 22_498_000),
    (18_009, 54_027_000),
    (2_488, 9_952_000),
    (155, 1_085_000),
];

/// Table 9: one-time 2,000-like buyers `(accounts, cents)`.
pub const TABLE9_ONE_TIME: (u64, u64) = (182, 182_000);

/// Table 9: ad impressions and the low/high revenue bounds in cents.
pub const TABLE9_ADS: (u64, u64, u64) = (5_769_537, 346_100, 2_307_800);

/// Table 9: monthly revenue total range, cents.
pub const TABLE9_TOTAL_RANGE: (u64, u64) = (88_090_100, 90_051_800);

/// Table 10: `(group, new share, preexisting share)`.
pub const TABLE10: [(ServiceGroup, f64, f64); 3] = [
    (ServiceGroup::InstaStar, 0.314, 0.686),
    (ServiceGroup::Boostgram, 0.108, 0.892),
    (ServiceGroup::Hublaagram, 0.165, 0.835),
];

/// Table 11: action mixes `(group, like, follow, comment, unfollow)`.
pub const TABLE11: [(ServiceGroup, f64, f64, f64, f64); 3] = [
    (ServiceGroup::InstaStar, 0.308, 0.386, 0.056, 0.250),
    (ServiceGroup::Boostgram, 0.640, 0.193, 0.0, 0.167),
    (ServiceGroup::Hublaagram, 0.630, 0.353, 0.017, 0.0),
];

/// Figures 3/4: median degrees `(label, median following, median followers)`.
pub const FIGURE34_MEDIANS: [(&str, f64, f64); 3] = [
    ("Boostgram targets", 684.0, 498.0),
    ("Insta* targets", 554.5, 384.0),
    ("All Instagram", 465.0, 796.0),
];

/// §6.3: Hublaagram's like-block reaction lag, days (~3 weeks).
pub const HUBLAAGRAM_REACTION_LAG_DAYS: u32 = 21;

/// The linear scale factor between a scaled count and the paper's count.
pub fn scale_up(simulated: u64, scale: f64) -> u64 {
    (simulated as f64 / scale).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_long_term_shares_match_prose() {
        // "One third of customers of both Insta* and Boostgram are
        // long-term, while nearly half of Hublaagram users are long-term."
        for (group, total, lt) in TABLE6 {
            let share = lt as f64 / total as f64;
            match group {
                ServiceGroup::InstaStar | ServiceGroup::Boostgram => {
                    assert!((0.30..0.37).contains(&share), "{group}: {share}")
                }
                ServiceGroup::Hublaagram => {
                    assert!((0.45..0.55).contains(&share), "{group}: {share}")
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn table9_total_is_consistent() {
        let tiers: u64 = TABLE9_MONTHLY_TIERS.iter().map(|(_, c)| c).sum();
        let low = tiers + TABLE9_ONE_TIME.1 + TABLE9_ADS.1;
        let high = tiers + TABLE9_ONE_TIME.1 + TABLE9_ADS.2;
        assert_eq!(low, TABLE9_TOTAL_RANGE.0);
        assert_eq!(high, TABLE9_TOTAL_RANGE.1);
    }

    #[test]
    fn table11_rows_sum_to_one() {
        for (g, a, b, c, d) in TABLE11 {
            let total = a + b + c + d;
            assert!((total - 1.0).abs() < 0.005, "{g}: {total}");
        }
    }

    #[test]
    fn scale_up_inverts_the_scale() {
        assert_eq!(scale_up(1_217, 0.01), 121_700);
        assert_eq!(scale_up(0, 0.01), 0);
    }

    #[test]
    fn table5_shape_constants() {
        // Follow→like reciprocation is always zero.
        for (_, _, outbound_likes, like_pct, _) in TABLE5 {
            if !outbound_likes {
                assert_eq!(like_pct, 0.0);
            }
        }
        // Lived-in beats empty for like→like on every service.
        for s in ServiceId::RECIPROCITY {
            let e = TABLE5.iter().find(|r| r.0 == s && !r.1 && r.2).unwrap();
            let l = TABLE5.iter().find(|r| r.0 == s && r.1 && r.2).unwrap();
            assert!(l.3 > e.3, "{s}");
        }
    }
}
