//! Typed results for every table and figure, computed from a [`Study`].
//!
//! Each function takes the study at the phase it needs (asserted) and
//! returns a serde-serialisable value the experiment binaries render.

use crate::study::{Phase, Study};
use footsteps_aas::ledger::PaymentKind;
use footsteps_analysis as analysis;
use footsteps_analysis::{
    ActionMixRow, CountryDistribution, CustomerBaseRow, HublaagramRevenue, NewVsPreexisting,
    ReciprocityRevenueRow, StabilityReport, TargetingFigures,
};
use footsteps_honeypot::reciprocation::{measure, Table5Row};
use footsteps_intervene::{
    eligible_proportion, median_actions_per_user, BinPolicy, DailySeries,
};
use footsteps_sim::enforcement::Direction;
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};

/// Table 5: the measured reciprocation matrix.
pub fn table5(study: &Study) -> Vec<Table5Row> {
    assert!(study.phase >= Phase::Characterized);
    measure(
        &study.framework,
        &study.platform,
        &ServiceId::RECIPROCITY,
        study.timeline.char_start,
        study.timeline.narrow_start,
    )
}

/// The classification with the study's own honeypot accounts removed — the
/// customer-base, geography and revenue analyses describe the services'
/// *real* clientele. (At the paper's scale 150 honeypots among a million
/// customers vanish; at 1/50 they would visibly skew the smaller services.)
pub fn business_classification(study: &Study) -> footsteps_detect::Classification {
    let own: HashSet<AccountId> = study
        .framework
        .records()
        .iter()
        .map(|r| r.account)
        .collect();
    study.pipeline().classification.without_accounts(&own)
}

/// Table 6: customer bases and long/short-term splits.
pub fn table6(study: &Study) -> Vec<CustomerBaseRow> {
    assert!(study.phase >= Phase::Characterized);
    let class = business_classification(study);
    ServiceGroup::BUSINESS
        .iter()
        .map(|&g| analysis::customer_base(&class, g))
        .collect()
}

/// Table 7: operating country vs observed ASN countries.
pub fn table7(study: &Study) -> Vec<analysis::ServiceLocationRow> {
    assert!(study.phase >= Phase::Characterized);
    ServiceGroup::BUSINESS
        .iter()
        .map(|&g| analysis::service_location(&study.platform, &study.pipeline().signatures, g))
        .collect()
}

/// The revenue month: the last 30 days of the characterization window
/// (clamped for compressed test scenarios).
pub fn revenue_month(study: &Study) -> (Day, Day) {
    let end = study.timeline.narrow_start;
    let days = 30.min(study.scenario.characterization_days);
    (Day(end.0 - days), end)
}

/// Table 8 with ground truth: estimated revenue rows plus the ledger's
/// actual take over the same window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table8 {
    /// Estimated rows: Boostgram, Insta* (Low), Insta* (High).
    pub rows: Vec<ReciprocityRevenueRow>,
    /// Ground truth from the ledgers: (Boostgram cents, Insta* cents).
    pub truth_cents: (u64, u64),
}

/// Table 8: reciprocity-service revenue estimates.
pub fn table8(study: &Study) -> Table8 {
    assert!(study.phase >= Phase::Characterized);
    let (start, end) = revenue_month(study);
    let class = business_classification(study);
    let rows = vec![
        analysis::reciprocity_revenue(&class, ServiceGroup::Boostgram, ServiceId::Boostgram, start, end),
        analysis::reciprocity_revenue(&class, ServiceGroup::InstaStar, ServiceId::Instazood, start, end),
        analysis::reciprocity_revenue(&class, ServiceGroup::InstaStar, ServiceId::Instalex, start, end),
    ];
    let truth_boost = study.ledger.gross_in(ServiceId::Boostgram, start, end);
    let truth_insta = study.ledger.gross_in(ServiceId::Instalex, start, end)
        + study.ledger.gross_in(ServiceId::Instazood, start, end);
    Table8 { rows, truth_cents: (truth_boost, truth_insta) }
}

/// Table 9 with ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table9 {
    /// The activity-based estimate.
    pub estimate: HublaagramRevenue,
    /// Ledger truth over the same window, by payment kind, cents:
    /// (no-outbound, monthly, one-time, ads).
    pub truth_cents: (u64, u64, u64, u64),
}

/// Table 9: the Hublaagram revenue accounting.
pub fn table9(study: &Study) -> Table9 {
    assert!(study.phase >= Phase::Characterized);
    let (start, end) = revenue_month(study);
    let asns = study.group_asns(ServiceGroup::Hublaagram);
    let class = business_classification(study);
    let estimate = analysis::hublaagram_revenue_windows(
        &study.platform,
        &class,
        &asns,
        start,
        end,
        study.timeline.char_start,
        study.timeline.narrow_start,
    );
    let s = ServiceId::Hublaagram;
    let truth = (
        study.ledger.gross_kind_in(s, PaymentKind::NoOutbound, start, end),
        study.ledger.gross_kind_in(s, PaymentKind::MonthlyLikes, start, end),
        study.ledger.gross_kind_in(s, PaymentKind::OneTimeLikes, start, end),
        study.ledger.gross_kind_in(s, PaymentKind::Ads, start, end),
    );
    Table9 { estimate, truth_cents: truth }
}

/// Table 10 with ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table10Row {
    /// Business group.
    pub group: ServiceGroup,
    /// Activity-based estimate.
    pub estimate: NewVsPreexisting,
    /// Ledger truth (new share, preexisting share).
    pub truth: (f64, f64),
}

/// Table 10: new vs preexisting payer revenue split.
pub fn table10(study: &Study) -> Vec<Table10Row> {
    assert!(study.phase >= Phase::Characterized);
    let (start, end) = revenue_month(study);
    let class = business_classification(study);
    ServiceGroup::BUSINESS
        .iter()
        .map(|&group| {
            let estimate = analysis::new_vs_preexisting(&class, group, start, end);
            let mut new = 0u64;
            let mut pre = 0u64;
            for &s in group.members() {
                let (n, p) = study.ledger.new_vs_preexisting(s, start, end);
                new += n;
                pre += p;
            }
            let total = (new + pre).max(1) as f64;
            Table10Row {
                group,
                estimate,
                truth: (new as f64 / total, pre as f64 / total),
            }
        })
        .collect()
}

/// Table 11: action mixes.
pub fn table11(study: &Study) -> Vec<ActionMixRow> {
    assert!(study.phase >= Phase::Characterized);
    ServiceGroup::BUSINESS
        .iter()
        .map(|&g| {
            analysis::action_mix(
                &study.platform,
                &study.pipeline().signatures,
                g,
                study.timeline.char_start,
                study.timeline.narrow_start,
            )
        })
        .collect()
}

/// Figure 2: customer country distributions (≥5% buckets).
pub fn figure2(study: &Study) -> Vec<CountryDistribution> {
    assert!(study.phase >= Phase::Characterized);
    let class = business_classification(study);
    ServiceGroup::BUSINESS
        .iter()
        .map(|&g| analysis::customer_countries(&study.platform, &class, g, 0.05))
        .collect()
}

/// Figures 3/4: target-degree CDFs for the reciprocity groups vs baseline.
pub fn figures34(study: &Study) -> TargetingFigures {
    assert!(study.phase >= Phase::Characterized);
    let mut rng = RngFactory::new(study.scenario.seed).stream("analysis.targeting");
    let n = 1_000;
    let boost = analysis::sample_targets(study.boostgram.pool().members(), n, &mut rng);
    let insta = analysis::sample_targets(study.instalex.pool().members(), n, &mut rng);
    let base = analysis::sample_baseline(&study.population, n, &mut rng);
    TargetingFigures {
        services: vec![
            analysis::DegreeSample::from_accounts("Boostgram targets", &study.platform.accounts, &boost),
            analysis::DegreeSample::from_accounts("Insta* targets", &study.platform.accounts, &insta),
        ],
        baseline: analysis::DegreeSample::from_accounts("All Instagram", &study.platform.accounts, &base),
    }
}

/// Customers of a group active in a specific window, identified by running
/// the signature classifier over that window. The paper's pipeline
/// attributed customers *continuously*; the intervention figures must
/// include accounts that enrolled after the characterization window closed.
fn customers_in_window(
    study: &Study,
    group: ServiceGroup,
    start: Day,
    end: Day,
) -> BTreeSet<AccountId> {
    let windowed = footsteps_detect::classify(
        &study.platform,
        &study.pipeline().signatures,
        start,
        end,
    );
    windowed.customers_of_group(group)
}

/// Figure 5 data: per-bin median follows/user/day for Boostgram over the
/// narrow window, plus the threshold line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure5 {
    /// The frozen follow threshold on Boostgram's ASN.
    pub threshold: u32,
    /// Median series for the blocked bin.
    pub block: DailySeries,
    /// Median series for the delay bin.
    pub delay: DailySeries,
    /// Median series for the control bin.
    pub control: DailySeries,
}

/// Figure 5: Boostgram follows under the narrow intervention.
pub fn figure5(study: &Study) -> Figure5 {
    assert!(study.phase >= Phase::NarrowDone);
    let asns = study.group_asns(ServiceGroup::Boostgram);
    let threshold = asns
        .iter()
        .filter_map(|&a| {
            study
                .pipeline()
                .thresholds
                .get(a, ActionType::Follow, Direction::Outbound)
        })
        .max()
        .expect("Boostgram follow threshold");
    let customers = customers_in_window(
        study,
        ServiceGroup::Boostgram,
        study.timeline.narrow_start,
        study.timeline.broad_start,
    );
    let bins = study
        .narrow_plan
        .bins_on(study.timeline.narrow_start)
        .expect("plan covers window");
    let series = |policy| {
        median_actions_per_user(
            &study.platform,
            &customers,
            &bins,
            policy,
            &asns,
            ActionType::Follow,
            Direction::Outbound,
            study.timeline.narrow_start,
            study.timeline.broad_start,
        )
    };
    Figure5 {
        threshold,
        block: series(BinPolicy::Block),
        delay: series(BinPolicy::Delay),
        control: series(BinPolicy::Control),
    }
}

/// Figure 6 data: daily share of Hublaagram likes eligible for a
/// countermeasure, in the treated (block) bin, over the narrow window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure6 {
    /// The inbound like threshold used.
    pub threshold: u32,
    /// Eligible proportion, blocked bin.
    pub block: DailySeries,
    /// Eligible proportion, control bin (no reaction expected).
    pub control: DailySeries,
}

/// Figure 6: Hublaagram's like-eligibility collapse after ~3 weeks.
pub fn figure6(study: &Study) -> Figure6 {
    assert!(study.phase >= Phase::NarrowDone);
    let asns = study.group_asns(ServiceGroup::Hublaagram);
    let threshold = asns
        .iter()
        .filter_map(|&a| {
            study
                .pipeline()
                .thresholds
                .get(a, ActionType::Like, Direction::Inbound)
        })
        .max()
        .expect("Hublaagram like threshold");
    let customers = customers_in_window(
        study,
        ServiceGroup::Hublaagram,
        study.timeline.narrow_start,
        study.timeline.broad_start,
    );
    let bins = study
        .narrow_plan
        .bins_on(study.timeline.narrow_start)
        .expect("plan covers window");
    let series = |policies: &[BinPolicy]| {
        eligible_proportion(
            &study.platform,
            &customers,
            &bins,
            policies,
            &asns,
            ActionType::Like,
            Direction::Inbound,
            threshold,
            study.timeline.narrow_start,
            study.timeline.broad_start,
        )
    };
    Figure6 {
        threshold,
        block: series(&[BinPolicy::Block]),
        control: series(&[BinPolicy::Control]),
    }
}

/// Figure 7 data: Boostgram follow eligibility through the broad experiment
/// (delay week then block week).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure7 {
    /// The outbound follow threshold used.
    pub threshold: u32,
    /// Day the countermeasure switched from delay to block.
    pub switch_day: Day,
    /// Eligible proportion among the treated 90%.
    pub treated: DailySeries,
    /// Eligible proportion in the 10% control bin.
    pub control: DailySeries,
}

/// Figure 7: broad intervention on Boostgram follows.
pub fn figure7(study: &Study) -> Figure7 {
    assert!(study.phase >= Phase::BroadDone);
    let asns = study.group_asns(ServiceGroup::Boostgram);
    let threshold = asns
        .iter()
        .filter_map(|&a| {
            study
                .pipeline()
                .thresholds
                .get(a, ActionType::Follow, Direction::Outbound)
        })
        .max()
        .expect("Boostgram follow threshold");
    let customers = customers_in_window(
        study,
        ServiceGroup::Boostgram,
        study.timeline.broad_start,
        study.timeline.epilogue_start,
    );
    // Week-1 assignment identifies treated accounts (the set is identical in
    // week 2; only the countermeasure changes).
    let bins = study
        .broad_plan
        .bins_on(study.timeline.broad_start)
        .expect("plan covers window");
    let series = |policies: &[BinPolicy]| {
        eligible_proportion(
            &study.platform,
            &customers,
            &bins,
            policies,
            &asns,
            ActionType::Follow,
            Direction::Outbound,
            threshold,
            study.timeline.broad_start,
            study.timeline.epilogue_start,
        )
    };
    Figure7 {
        threshold,
        switch_day: study.timeline.broad_start.plus(7),
        treated: series(&[BinPolicy::Delay, BinPolicy::Block]),
        control: series(&[BinPolicy::Control]),
    }
}

/// §5.1 prose numbers: stability, conversion, overlap, long-term action
/// shares.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Section51 {
    /// Per-group long-term stability dynamics.
    pub stability: Vec<StabilityReport>,
    /// Per-group first-month conversion rate.
    pub conversion: Vec<(ServiceGroup, f64)>,
    /// Per-group share of actions from long-term customers.
    pub long_term_action_share: Vec<(ServiceGroup, f64)>,
    /// Cross-group customer overlaps.
    pub overlaps: Vec<(ServiceGroup, ServiceGroup, usize)>,
}

/// §5.1: user-stability analysis.
pub fn section51(study: &Study) -> Section51 {
    assert!(study.phase >= Phase::Characterized);
    let class = business_classification(study);
    let class = &class;
    let (start, end) = (study.timeline.char_start, study.timeline.narrow_start);
    let stability = ServiceGroup::BUSINESS
        .iter()
        .map(|&g| analysis::stability(class, g, start, end))
        .collect();
    // The conversion cohort starts on day 1: day-0 first-activity is the
    // pre-existing stock, not new users.
    let cohort_start = start.plus(1);
    let cohort_end = Day((cohort_start.0 + 30).min(end.0));
    let conversion = ServiceGroup::BUSINESS
        .iter()
        .map(|&g| (g, analysis::conversion_rate(class, g, cohort_start, cohort_end)))
        .collect();
    let long_term_action_share = ServiceGroup::BUSINESS
        .iter()
        .map(|&g| {
            let asns = study.group_asns(g);
            (
                g,
                analysis::long_term_action_share(&study.platform, class, g, &asns, start, end),
            )
        })
        .collect();
    let overlaps = vec![
        (
            ServiceGroup::InstaStar,
            ServiceGroup::Boostgram,
            analysis::overlap(class, ServiceGroup::InstaStar, ServiceGroup::Boostgram),
        ),
        (
            ServiceGroup::InstaStar,
            ServiceGroup::Hublaagram,
            analysis::overlap(class, ServiceGroup::InstaStar, ServiceGroup::Hublaagram),
        ),
        (
            ServiceGroup::Boostgram,
            ServiceGroup::Hublaagram,
            analysis::overlap(class, ServiceGroup::Boostgram, ServiceGroup::Hublaagram),
        ),
    ];
    Section51 { stability, conversion, long_term_action_share, overlaps }
}

/// Epilogue report (§6.4): who migrated, who folded, who drifted home.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpilogueReport {
    /// ASN migrations per reciprocity service.
    pub reciprocity_migrations: Vec<(ServiceId, u32)>,
    /// Whether Insta* ended with its like traffic on a proxy network.
    pub insta_likes_on_proxy: bool,
    /// Whether Insta* ended with its follow traffic back on the primary ASN.
    pub insta_follows_back_home: bool,
    /// Hublaagram's migration count.
    pub hublaagram_migrations: u32,
    /// The day Hublaagram stopped selling, if it did.
    pub hublaagram_out_of_stock_on: Option<Day>,
}

/// Epilogue: the end-state of the arms race.
pub fn epilogue(study: &Study) -> EpilogueReport {
    assert!(study.phase >= Phase::Finished);
    let insta_like_asn = study.instalex.current_asn(ActionType::Like);
    let insta_follow_asn = study.instalex.current_asn(ActionType::Follow);
    EpilogueReport {
        reciprocity_migrations: vec![
            (ServiceId::Instalex, study.instalex.migrations()),
            (ServiceId::Instazood, study.instazood.migrations()),
            (ServiceId::Boostgram, study.boostgram.migrations()),
        ],
        insta_likes_on_proxy: study.layout.insta_proxies.contains(&insta_like_asn),
        insta_follows_back_home: insta_follow_asn == study.layout.insta_primary,
        hublaagram_migrations: study.hublaagram.migrations(),
        hublaagram_out_of_stock_on: study.hublaagram.out_of_stock_on(),
    }
}

/// Canonical per-service classification summary: customer lists sorted by
/// account id, services in declaration order. Unlike the raw
/// [`footsteps_detect::Classification`] (hash maps, iteration order
/// unspecified), this serializes byte-identically for identical results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationSummary {
    /// The classified service.
    pub service: ServiceId,
    /// Attributed customer accounts, ascending.
    pub customers: Vec<AccountId>,
}

/// The serializable aggregate of a characterized study's headline results.
///
/// This is the reproducibility artifact of the three-phase daily engine
/// (DESIGN.md §4): for a given scenario seed, [`StudyResults::to_json`] is
/// byte-identical for every `worker_threads` value, which the determinism
/// suite asserts with a recorded digest. Every collection inside is either
/// naturally ordered (vectors built in fixed service/row order) or
/// explicitly sorted here — no hash-iteration order escapes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyResults {
    /// Scenario seed the study ran with.
    pub seed: u64,
    /// Table 5: reciprocation matrix.
    pub table5: Vec<Table5Row>,
    /// Table 6: customer bases.
    pub table6: Vec<CustomerBaseRow>,
    /// Table 7: service locations.
    pub table7: Vec<analysis::ServiceLocationRow>,
    /// Table 8: reciprocity revenue with ground truth.
    pub table8: Table8,
    /// Table 9: Hublaagram revenue with ground truth.
    pub table9: Table9,
    /// Table 10: intervention eligibility.
    pub table10: Vec<Table10Row>,
    /// Table 11: action mix per group.
    pub table11: Vec<ActionMixRow>,
    /// Figure 2: customer geography.
    pub figure2: Vec<CountryDistribution>,
    /// Figures 3/4: targeting bias.
    pub figures34: TargetingFigures,
    /// Per-service attributed customers, canonically sorted.
    pub classification: Vec<ClassificationSummary>,
    /// Deterministic metrics snapshot from the study's obs registry.
    /// `#[serde(skip)]`: the snapshot has its own serialization
    /// ([`footsteps_obs::MetricsSnapshot::to_json`]) and is deliberately
    /// excluded from `to_json()`/`digest()` so the golden digest predates
    /// and outlives the obs layer.
    #[serde(skip)]
    pub metrics: Option<footsteps_obs::MetricsSnapshot>,
}

/// The canonical classification summary of a study (sorted customer lists,
/// services in declaration order).
fn classification_summaries(study: &Study) -> Vec<ClassificationSummary> {
    let class = business_classification(study);
    ServiceId::ALL
        .iter()
        .map(|&service| {
            let mut customers: Vec<AccountId> = class.customers_of(service).collect();
            customers.sort_unstable();
            ClassificationSummary { service, customers }
        })
        .collect()
}

impl StudyResults {
    /// Collect every characterization-phase artifact from `study`.
    ///
    /// Each table/figure builder reads the frozen study independently, so
    /// with `worker_threads > 1` they fork-join across scoped threads (one
    /// per builder) and the struct is assembled from the joins in fixed
    /// field order — the output is identical for any thread count.
    pub fn collect(study: &Study) -> Self {
        assert!(study.phase >= Phase::Characterized);
        const PANIC: &str = "results builder panicked";
        let threads = study.platform.config.worker_threads;
        let (t5, t6, t7, t8, t9, t10, t11, f2, f34, classification) = if threads <= 1 {
            (
                table5(study),
                table6(study),
                table7(study),
                table8(study),
                table9(study),
                table10(study),
                table11(study),
                figure2(study),
                figures34(study),
                classification_summaries(study),
            )
        } else {
            std::thread::scope(|s| {
                let h5 = s.spawn(|| table5(study));
                let h6 = s.spawn(|| table6(study));
                let h7 = s.spawn(|| table7(study));
                let h8 = s.spawn(|| table8(study));
                let h9 = s.spawn(|| table9(study));
                let h10 = s.spawn(|| table10(study));
                let h11 = s.spawn(|| table11(study));
                let hf2 = s.spawn(|| figure2(study));
                let hf34 = s.spawn(|| figures34(study));
                let hc = s.spawn(|| classification_summaries(study));
                (
                    h5.join().expect(PANIC),
                    h6.join().expect(PANIC),
                    h7.join().expect(PANIC),
                    h8.join().expect(PANIC),
                    h9.join().expect(PANIC),
                    h10.join().expect(PANIC),
                    h11.join().expect(PANIC),
                    hf2.join().expect(PANIC),
                    hf34.join().expect(PANIC),
                    hc.join().expect(PANIC),
                )
            })
        };
        Self {
            seed: study.scenario.seed,
            table5: t5,
            table6: t6,
            table7: t7,
            table8: t8,
            table9: t9,
            table10: t10,
            table11: t11,
            figure2: f2,
            figures34: f34,
            classification,
            metrics: Some(study.platform.obs.metrics.snapshot()),
        }
    }

    /// Serialize to pretty JSON. Byte-identical across runs and worker
    /// thread counts for the same scenario.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("StudyResults serializes")
    }

    /// Stable FNV-1a digest of the JSON bytes — the recorded golden value
    /// the determinism suite checks. Not a cryptographic hash; it only has
    /// to be stable across platforms and sensitive to any byte change.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in self.to_json().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "study.phase >= Phase::Characterized")]
    fn results_require_their_phase() {
        let study = Study::new(crate::scenario::Scenario::smoke(5));
        // Not characterized yet: accessors panic rather than mislead.
        let _ = table6(&study);
    }

    #[test]
    fn revenue_month_clamps_to_short_scenarios() {
        let study = Study::new(crate::scenario::Scenario::smoke(6));
        let (start, end) = revenue_month(&study);
        assert_eq!(end, study.timeline.narrow_start);
        assert!(end.days_since(start) <= 30);
        assert!(end.days_since(start) > 0);
    }
}
