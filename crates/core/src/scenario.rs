//! Scenario configuration: one value object that fully determines a study.
//!
//! Scenarios are the reproducibility boundary — a `(Scenario, seed)` pair
//! determines every table and figure bit-for-bit.

use serde::{Deserialize, Serialize};

/// Full configuration of a study run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Master seed; all component RNG streams derive from it.
    pub seed: u64,
    /// Linear population scale relative to the paper (1.0 = paper scale).
    /// Applies to service customer populations; see DESIGN.md §4.5.
    pub scale: f64,
    /// Organic (non-customer) population size.
    pub population_size: u32,
    /// Length of the §5 characterization window, days (paper: 90).
    pub characterization_days: u32,
    /// Length of the §6.3 narrow intervention, days (paper: 42).
    pub narrow_days: u32,
    /// Length of the §6.4 broad intervention, days (paper: 14, split 7+7).
    pub broad_days: u32,
    /// Length of the §6.4 epilogue ("additional months"), days.
    pub epilogue_days: u32,
    /// Honeypots registered per service per offered action type (paper: 10).
    pub honeypots_per_type: usize,
    /// Of those, how many purchase paid service (rest use free trials).
    pub paid_honeypots_per_type: usize,
    /// Inactive baseline honeypots (paper: 50).
    pub baseline_accounts: usize,
    /// Days at the end of the characterization window used to calibrate
    /// signatures/classification/thresholds.
    pub calibration_tail_days: u32,
    /// Organic background actors per day.
    pub background_daily_actors: u32,
    /// Of those, how many route through the mixed (Insta*) hosting ASN.
    pub background_blend_actors: u32,
    /// Bin receiving the synchronous-block treatment in the narrow design.
    pub block_bin: u32,
    /// Bin receiving the delayed-removal treatment.
    pub delay_bin: u32,
    /// Control bin (shared by narrow, broad and epilogue phases).
    pub control_bin: u32,
    /// Worker threads for the parallel phases of each simulated day: the
    /// decision phase, the sharded deposit apply phase, and the analysis
    /// epilogue fork-joins. Results are byte-identical for every value
    /// (the route phase and merge sweeps are serial and canonical, and
    /// shard workers draw no randomness); this only trades wall time.
    /// Presets read `FOOTSTEPS_THREADS`, default 1.
    pub worker_threads: usize,
}

impl Scenario {
    /// Worker-thread count from the `FOOTSTEPS_THREADS` environment
    /// variable, clamped to `1..=256`; 1 when unset or unparsable.
    pub fn threads_from_env() -> usize {
        std::env::var("FOOTSTEPS_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map_or(1, |n| n.clamp(1, 256))
    }
    /// The default reproduction scenario: 1/50 linear scale, full paper
    /// timeline. Runs in under a minute on a laptop core; 1/50 keeps each
    /// experiment bin populated enough for stable medians (Figures 5/7).
    pub fn default_scaled(seed: u64) -> Self {
        Self {
            seed,
            scale: 0.02,
            population_size: 25_000,
            characterization_days: 90,
            narrow_days: 42,
            broad_days: 14,
            epilogue_days: 60,
            honeypots_per_type: 10,
            paid_honeypots_per_type: 2,
            baseline_accounts: 50,
            calibration_tail_days: 14,
            background_daily_actors: 1_200,
            background_blend_actors: 120,
            block_bin: 0,
            delay_bin: 1,
            control_bin: 2,
            worker_threads: Self::threads_from_env(),
        }
    }

    /// The paper-scale scenario: 1/1 customer populations (≈1M Hublaagram
    /// customers) over the full timeline. Expect tens of minutes and several
    /// GB of log; intended for one-off validation runs, not CI.
    pub fn paper(seed: u64) -> Self {
        Self {
            scale: 1.0,
            population_size: 200_000,
            background_daily_actors: 8_000,
            background_blend_actors: 800,
            ..Self::default_scaled(seed)
        }
    }

    /// A small smoke scenario for tests: 1/500 scale, compressed timeline.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            scale: 0.002,
            population_size: 5_000,
            characterization_days: 24,
            narrow_days: 14,
            broad_days: 14,
            epilogue_days: 70,
            honeypots_per_type: 4,
            paid_honeypots_per_type: 1,
            baseline_accounts: 10,
            calibration_tail_days: 8,
            background_daily_actors: 300,
            background_blend_actors: 40,
            block_bin: 0,
            delay_bin: 1,
            control_bin: 2,
            worker_threads: Self::threads_from_env(),
        }
    }

    /// The smallest useful scenario: smoke mechanics with a short
    /// epilogue and a thinner background, for orchestrator end-to-end
    /// tests and demos where wall time matters more than statistical
    /// weight. Not tied to any golden digest.
    pub fn quick(seed: u64) -> Self {
        Self {
            population_size: 2_000,
            characterization_days: 16,
            narrow_days: 7,
            broad_days: 8,
            epilogue_days: 7,
            background_daily_actors: 120,
            background_blend_actors: 15,
            ..Self::smoke(seed)
        }
    }

    /// Validate internal consistency.
    pub fn is_valid(&self) -> bool {
        self.scale > 0.0
            && self.population_size >= 1_000
            && self.characterization_days >= self.calibration_tail_days
            && self.calibration_tail_days >= 1
            && self.honeypots_per_type >= 1
            && self.paid_honeypots_per_type <= self.honeypots_per_type
            && self.block_bin < 10
            && self.delay_bin < 10
            && self.control_bin < 10
            && self.block_bin != self.delay_bin
            && self.delay_bin != self.control_bin
            && self.block_bin != self.control_bin
            && self.background_blend_actors <= self.background_daily_actors
            && self.worker_threads >= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(Scenario::default_scaled(7).is_valid());
        assert!(Scenario::smoke(7).is_valid());
        let paper = Scenario::paper(7);
        assert!(paper.is_valid());
        assert_eq!(paper.scale, 1.0);
    }

    #[test]
    fn invalid_scenarios_detected() {
        let mut s = Scenario::smoke(1);
        s.block_bin = s.delay_bin;
        assert!(!s.is_valid());
        let mut s = Scenario::smoke(1);
        s.calibration_tail_days = s.characterization_days + 1;
        assert!(!s.is_valid());
        let mut s = Scenario::smoke(1);
        s.paid_honeypots_per_type = s.honeypots_per_type + 1;
        assert!(!s.is_valid());
    }

    #[test]
    fn scenarios_serialize_roundtrip() {
        let s = Scenario::default_scaled(42);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, 42);
        assert_eq!(back.population_size, s.population_size);
    }
}
