//! The study orchestrator: the paper's methodology end to end.
//!
//! A [`Study`] wires the platform substrate, the five service engines, the
//! honeypot framework, organic background traffic, the detection pipeline
//! and the intervention machinery through the paper's phases:
//!
//! 1. **setup** — world construction, honeypot campaigns, customer seeding;
//! 2. **characterization** (§4/§5) — 90 days of unhindered operation;
//! 3. **pipeline** — signatures, classification and frozen thresholds from
//!    the calibration tail;
//! 4. **narrow intervention** (§6.3) — six weeks, block/delay/control bins;
//! 5. **broad intervention** (§6.4) — one week delay, one week block, 90%;
//! 6. **epilogue** (§6.4) — months of continued enforcement (block likes,
//!    delay follows) during which the services migrate or fold.

use crate::scenario::Scenario;
use crate::world::AsnLayout;
use footsteps_aas::{presets, CollusionService, PaymentLedger, ReciprocityService};
use footsteps_detect::DetectionPipeline;
use footsteps_honeypot::{run_campaign, CampaignReport, HoneypotFramework};
use footsteps_intervene::{EpiloguePolicy, ExperimentPlan, ExperimentPolicy};
use footsteps_sim::background::{run_background_day, BackgroundConfig};
use footsteps_sim::population::{synthesize, PopulationConfig, ResidentialIndex};
use footsteps_sim::prelude::*;
use footsteps_stream::{StreamConfig, StreamOutcome, StreamSink};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::Path;

/// Phase boundaries of a study, in days.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// Characterization start (always day 0).
    pub char_start: Day,
    /// Characterization end / narrow start.
    pub narrow_start: Day,
    /// Narrow end / broad start.
    pub broad_start: Day,
    /// Broad end / epilogue start.
    pub epilogue_start: Day,
    /// Epilogue end (end of the study).
    pub end: Day,
}

impl Timeline {
    fn from_scenario(s: &Scenario) -> Self {
        let char_start = Day(0);
        let narrow_start = char_start.plus(s.characterization_days);
        let broad_start = narrow_start.plus(s.narrow_days);
        let epilogue_start = broad_start.plus(s.broad_days);
        let end = epilogue_start.plus(s.epilogue_days);
        Self { char_start, narrow_start, broad_start, epilogue_start, end }
    }

    /// The calibration window used to build the detection pipeline.
    pub fn calibration(&self, tail_days: u32) -> (Day, Day) {
        let start = Day(self.narrow_start.0.saturating_sub(tail_days));
        (start, self.narrow_start)
    }
}

/// How far a study has progressed. Ordered: later phases compare greater.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Constructed, nothing run.
    Setup,
    /// Characterization complete, pipeline built.
    Characterized,
    /// Narrow intervention complete.
    NarrowDone,
    /// Broad intervention complete.
    BroadDone,
    /// Epilogue complete.
    Finished,
}

/// A full study world.
///
/// The whole struct serializes, which is what makes phase-boundary
/// checkpoints (`footsteps-sweep`) possible: every RNG stream position,
/// arena and pending queue round-trips, so a resumed study replays the
/// exact byte stream of an uninterrupted one. The only non-serialized
/// state is inside [`Platform`] (the installed policy and the metrics
/// recorder), and every phase method reinstalls its policy at entry.
#[derive(Debug, Serialize, Deserialize)]
pub struct Study {
    /// The configuration this study was built from.
    pub scenario: Scenario,
    /// Phase boundaries.
    pub timeline: Timeline,
    /// Progress marker.
    pub phase: Phase,
    /// The platform substrate.
    pub platform: Platform,
    /// Residential-ASN index for account creation.
    pub residential: ResidentialIndex,
    /// The organic population.
    pub population: Population,
    /// Network layout.
    pub layout: AsnLayout,
    /// The Instalex franchise.
    pub instalex: ReciprocityService,
    /// The Instazood franchise.
    pub instazood: ReciprocityService,
    /// Boostgram.
    pub boostgram: ReciprocityService,
    /// Hublaagram.
    pub hublaagram: CollusionService,
    /// Followersgratis.
    pub followersgratis: CollusionService,
    /// The honeypot framework.
    pub framework: HoneypotFramework,
    /// Ground-truth payments across all services.
    pub ledger: PaymentLedger,
    /// Campaign reports from registration.
    pub campaigns: Vec<CampaignReport>,
    /// The detection pipeline, once built.
    pub pipeline: Option<DetectionPipeline>,
    /// The streaming detection outcome, frozen at the calibration
    /// boundary when a sink was attached via [`Study::attach_stream`].
    /// Observability-plus-analysis state: excluded from serialization
    /// (like the platform's policy and recorder) and from every digest.
    #[serde(skip)]
    pub stream: Option<StreamOutcome>,
    /// The narrow experiment plan.
    pub narrow_plan: ExperimentPlan,
    /// The broad experiment plan.
    pub broad_plan: ExperimentPlan,
    background: BackgroundConfig,
    bg_rng: SmallRng,
}

impl Study {
    /// Build the world and register all honeypot campaigns. Deterministic in
    /// the scenario.
    pub fn new(scenario: Scenario) -> Self {
        assert!(scenario.is_valid(), "invalid scenario");
        let timeline = Timeline::from_scenario(&scenario);
        let rngs = RngFactory::new(scenario.seed);
        let mut registry = AsnRegistry::new();
        let layout = AsnLayout::build(&mut registry);
        let residential = ResidentialIndex::build(&registry);
        let mut platform = Platform::new(
            registry,
            PlatformConfig {
                worker_threads: scenario.worker_threads,
                ..PlatformConfig::default()
            },
            rngs.stream("platform"),
        );
        let mut pop_rng = rngs.stream("population");
        let population = synthesize(
            &mut platform.accounts,
            &residential,
            &PopulationConfig {
                size: scenario.population_size,
                ..PopulationConfig::default()
            },
            &mut pop_rng,
        );

        // --- services -------------------------------------------------------
        // The franchises share their parent's automation stack: one
        // fingerprint variant and one hosting network, which is exactly why
        // the paper cannot tell them apart ("Insta*").
        let mut instalex_cfg = presets::instalex_config(scenario.scale);
        instalex_cfg.fingerprint_variant = 1;
        let mut instazood_cfg = presets::instazood_config(scenario.scale);
        instazood_cfg.fingerprint_variant = 1;
        let scale_pool = |size: usize| size.min(scenario.population_size as usize / 4);
        // Instalex curates on the follow-from-like trait, which only ~12% of
        // the population carries; cap its pool by that supply or the
        // curation degenerates to uniform filling and the Table-5 anomaly
        // (and Figures 3/4 bias) washes out at small scales.
        instalex_cfg.pool_size = scale_pool(instalex_cfg.pool_size)
            .min(scenario.population_size as usize / 12);
        instazood_cfg.pool_size = scale_pool(instazood_cfg.pool_size);
        let mut boostgram_cfg = presets::boostgram_config(scenario.scale);
        boostgram_cfg.pool_size = scale_pool(boostgram_cfg.pool_size);
        let instalex = ReciprocityService::new(
            instalex_cfg,
            &platform.accounts,
            &population,
            layout.insta_rotation(),
            rngs.stream("aas.instalex"),
        );
        let instazood = ReciprocityService::new(
            instazood_cfg,
            &platform.accounts,
            &population,
            layout.insta_rotation(),
            rngs.stream("aas.instazood"),
        );
        let boostgram = ReciprocityService::new(
            boostgram_cfg,
            &platform.accounts,
            &population,
            layout.boost_rotation(),
            rngs.stream("aas.boostgram"),
        );
        let hublaagram = CollusionService::with_active_asns(
            presets::hublaagram_config(scenario.scale),
            layout.hubla_asns.clone(),
            layout.hubla_asns.len(),
            rngs.stream("aas.hublaagram"),
        );
        let followersgratis = CollusionService::new(
            presets::followersgratis_config(scenario.scale),
            vec![layout.fg_asn],
            rngs.stream("aas.followersgratis"),
        );

        let framework = HoneypotFramework::new(layout.honeypot_home, rngs.stream("honeypot"));
        let background = BackgroundConfig {
            daily_actors: scenario.background_daily_actors,
            blend: vec![(layout.insta_primary, scenario.background_blend_actors)],
            ..BackgroundConfig::default()
        };
        let narrow_plan = ExperimentPlan::narrow(
            timeline.narrow_start,
            scenario.block_bin,
            scenario.delay_bin,
            scenario.control_bin,
        );
        let broad_plan = ExperimentPlan::broad(timeline.broad_start, scenario.control_bin);
        let bg_rng = rngs.stream("background");

        let mut study = Self {
            scenario,
            timeline,
            phase: Phase::Setup,
            platform,
            residential,
            population,
            layout,
            instalex,
            instazood,
            boostgram,
            hublaagram,
            followersgratis,
            framework,
            ledger: PaymentLedger::new(),
            campaigns: Vec::new(),
            pipeline: None,
            stream: None,
            narrow_plan,
            broad_plan,
            background,
            bg_rng,
        };
        study.setup();
        study
    }

    /// Day-0 setup: celebrities, baseline honeypots, customer stock,
    /// registration campaigns.
    fn setup(&mut self) {
        // The metrics registry opens on an implicit "setup" frame, so
        // everything below lands there without an explicit begin_phase.
        let timer = self.platform.obs.timings.start("phase.setup");
        self.platform.begin_day(Day(0));
        self.framework.setup_celebrities(&mut self.platform, 25);
        self.framework
            .create_baseline(&mut self.platform, self.scenario.baseline_accounts);
        self.instalex
            .seed_initial_customers(&mut self.platform, &self.residential, Day(0));
        self.instazood
            .seed_initial_customers(&mut self.platform, &self.residential, Day(0));
        self.boostgram
            .seed_initial_customers(&mut self.platform, &self.residential, Day(0));
        self.hublaagram.seed_initial_customers(
            &mut self.platform,
            &self.residential,
            &mut self.ledger,
            Day(0),
        );
        self.followersgratis.seed_initial_customers(
            &mut self.platform,
            &self.residential,
            &mut self.ledger,
            Day(0),
        );
        let per = self.scenario.honeypots_per_type;
        let paid = self.scenario.paid_honeypots_per_type;
        let reports = vec![
            run_campaign(
                &mut self.framework, &mut self.platform, &mut self.instalex,
                &mut self.ledger, Day(0), per, paid,
            ),
            run_campaign(
                &mut self.framework, &mut self.platform, &mut self.instazood,
                &mut self.ledger, Day(0), per, paid,
            ),
            run_campaign(
                &mut self.framework, &mut self.platform, &mut self.boostgram,
                &mut self.ledger, Day(0), per, paid,
            ),
            run_campaign(
                &mut self.framework, &mut self.platform, &mut self.hublaagram,
                &mut self.ledger, Day(0), per, paid,
            ),
            run_campaign(
                &mut self.framework, &mut self.platform, &mut self.followersgratis,
                &mut self.ledger, Day(0), per, paid,
            ),
        ];
        self.campaigns = reports;
        self.platform.obs.timings.finish(timer);
    }

    /// Advance the world through one day: day boundary, background traffic,
    /// then every service.
    fn step_day(&mut self, day: Day) {
        let timer = self.platform.obs.timings.start("engine.step_day");
        self.platform.begin_day(day);
        let bg_timer = self.platform.obs.timings.start("engine.background");
        run_background_day(
            &mut self.platform,
            &self.population,
            &self.background,
            &mut self.bg_rng,
        );
        self.platform.obs.timings.finish(bg_timer);
        self.instalex
            .run_day(&mut self.platform, &self.residential, &mut self.ledger, day);
        self.instazood
            .run_day(&mut self.platform, &self.residential, &mut self.ledger, day);
        self.boostgram
            .run_day(&mut self.platform, &self.residential, &mut self.ledger, day);
        self.hublaagram
            .run_day(&mut self.platform, &self.residential, &mut self.ledger, day);
        self.followersgratis
            .run_day(&mut self.platform, &self.residential, &mut self.ledger, day);
        self.platform.obs.timings.finish(timer);
    }

    /// Run the characterization phase (§4/§5) and build the detection
    /// pipeline from the calibration tail.
    pub fn run_characterization(&mut self) {
        assert_eq!(self.phase, Phase::Setup, "phases must run in order");
        self.platform.obs.begin_phase("characterization");
        let timer = self.platform.obs.timings.start("phase.characterization");
        for day in Day::range(self.timeline.char_start, self.timeline.narrow_start) {
            self.step_day(day);
        }
        let (cal_start, cal_end) = self
            .timeline
            .calibration(self.scenario.calibration_tail_days);
        let build_timer = self.platform.obs.timings.start("detect.pipeline_build");
        let build_t0 = self.platform.obs.timings.now_secs();
        let pipeline = DetectionPipeline::build_windows(
            &self.framework,
            &self.platform,
            self.timeline.char_start,
            self.timeline.narrow_start,
            cal_start,
            cal_end,
        );
        pipeline.record_obs(&mut self.platform.obs);
        // Graft the build's fork-join worker lanes while the build span is
        // still the open one.
        pipeline.record_spans(&mut self.platform.obs.timings, build_t0);
        self.platform.obs.timings.finish(build_timer);
        self.pipeline = Some(pipeline);
        // Streaming detection (DESIGN.md §8): deliver the calibration tail
        // to the sink (begin_day only drains strictly-before days, so the
        // last characterization day is still pending) and detach it — the
        // online verdicts froze at the same boundary the batch pipeline
        // was just built on.
        let stream_timer = self.platform.obs.timings.start("stream.freeze");
        self.platform.drain_sink_through(self.timeline.narrow_start);
        if let Some(result) = StreamSink::detach(&mut self.platform) {
            let outcome = result.expect("stream sink finishes at the calibration boundary");
            self.platform.obs.metrics.add("stream.events", outcome.events_processed);
            self.platform.obs.metrics.add("stream.batches", outcome.batches);
            self.platform.obs.metrics.add(
                "stream.customers",
                outcome
                    .verdicts
                    .classification
                    .customers
                    .values()
                    .map(|s| s.len() as u64)
                    .sum::<u64>(),
            );
            self.stream = Some(outcome);
        }
        self.platform.obs.timings.finish(stream_timer);
        self.platform.obs.timings.finish(timer);
        self.phase = Phase::Characterized;
    }

    /// Install the streaming detection harness (DESIGN.md §8): an online
    /// detector fed each day's event batch as the day seals, optionally
    /// recording the replayable event log to `record_to`. Call before
    /// [`Study::run_characterization`]; the frozen [`StreamOutcome`]
    /// lands in `self.stream` when that phase completes.
    ///
    /// Observability-only: the sink never feeds back into simulation
    /// decisions, so the golden digest is unchanged with it installed.
    pub fn attach_stream(
        &mut self,
        record_to: Option<&Path>,
    ) -> Result<(), footsteps_stream::StreamError> {
        assert_eq!(
            self.phase,
            Phase::Setup,
            "attach the stream before characterization"
        );
        let (cal_start, cal_end) = self
            .timeline
            .calibration(self.scenario.calibration_tail_days);
        let config = StreamConfig {
            calibration_start: cal_start,
            calibration_end: cal_end,
            window_days: self.scenario.calibration_tail_days,
        };
        let sink = StreamSink::build(
            &self.platform,
            &self.framework,
            self.scenario.seed,
            config,
            record_to,
        )?;
        self.platform.set_sink(Box::new(sink));
        Ok(())
    }

    /// Detection latency of the online verdicts against the batch
    /// classifier. `None` until both the stream outcome and the pipeline
    /// exist (i.e. a sink was attached and characterization has run).
    pub fn detection_latency(&self) -> Option<footsteps_stream::LatencyReport> {
        let stream = self.stream.as_ref()?;
        let pipeline = self.pipeline.as_ref()?;
        Some(footsteps_stream::latency_report(
            &stream.verdicts.classification,
            &pipeline.classification,
        ))
    }

    /// Run the narrow intervention (§6.3).
    pub fn run_narrow(&mut self) {
        assert_eq!(self.phase, Phase::Characterized, "characterize first");
        self.platform.obs.begin_phase("narrow");
        let timer = self.platform.obs.timings.start("phase.narrow");
        let thresholds = self.pipeline().thresholds.clone();
        let bins = self
            .narrow_plan
            .bins_on(self.timeline.narrow_start)
            .expect("narrow plan covers its window");
        self.platform
            .set_policy(Box::new(ExperimentPolicy::new(thresholds, bins)));
        for day in Day::range(self.timeline.narrow_start, self.timeline.broad_start) {
            self.step_day(day);
        }
        self.platform.obs.timings.finish(timer);
        self.phase = Phase::NarrowDone;
    }

    /// Run the broad intervention (§6.4): delay week, then block week.
    pub fn run_broad(&mut self) {
        assert_eq!(self.phase, Phase::NarrowDone, "narrow first");
        self.platform.obs.begin_phase("broad");
        let timer = self.platform.obs.timings.start("phase.broad");
        let thresholds = self.pipeline().thresholds.clone();
        for day in Day::range(self.timeline.broad_start, self.timeline.epilogue_start) {
            if let Some(bins) = self.broad_plan.bins_on(day) {
                // Re-installing per day is cheap and handles the mid-plan
                // delay→block switch exactly at its boundary.
                self.platform
                    .set_policy(Box::new(ExperimentPolicy::new(thresholds.clone(), bins)));
            }
            self.step_day(day);
        }
        self.platform.obs.timings.finish(timer);
        self.phase = Phase::BroadDone;
    }

    /// Run the epilogue (§6.4): months of continued enforcement (block
    /// likes, delay follows) during which the services adapt or fold.
    pub fn run_epilogue(&mut self) {
        assert_eq!(self.phase, Phase::BroadDone, "broad first");
        self.platform.obs.begin_phase("epilogue");
        let timer = self.platform.obs.timings.start("phase.epilogue");
        let thresholds = self.pipeline().thresholds.clone();
        self.platform.set_policy(Box::new(EpiloguePolicy::new(
            thresholds,
            self.scenario.control_bin,
        )));
        for day in Day::range(self.timeline.epilogue_start, self.timeline.end) {
            self.step_day(day);
        }
        self.platform.obs.timings.finish(timer);
        self.phase = Phase::Finished;
    }

    /// Run every phase in order, then export the Chrome trace if
    /// `FOOTSTEPS_TRACE_OUT` configured one (exporting is observability
    /// only — failures are reported, never fatal).
    pub fn run_to_completion(&mut self) {
        self.run_characterization();
        self.run_narrow();
        self.run_broad();
        self.run_epilogue();
        match self.platform.obs.export_trace() {
            Ok(Some(path)) => {
                footsteps_obs::progress!("chrome trace written to {}", path.display());
            }
            Ok(None) => {}
            Err(err) => footsteps_obs::progress!("chrome trace export failed: {err}"),
        }
    }

    /// The detection pipeline.
    ///
    /// # Panics
    /// Panics before `run_characterization`.
    pub fn pipeline(&self) -> &DetectionPipeline {
        self.pipeline
            .as_ref()
            .expect("pipeline is built by run_characterization")
    }

    /// The signature ASNs of a business group (where its traffic was seen
    /// during calibration).
    pub fn group_asns(&self, group: ServiceGroup) -> BTreeSet<AsnId> {
        self.pipeline()
            .signatures
            .iter()
            .filter(|s| group.members().contains(&s.service))
            .flat_map(|s| s.asns.iter().copied())
            .collect()
    }

    /// The reciprocity service engine for an id.
    ///
    /// # Panics
    /// Panics for collusion services.
    pub fn reciprocity(&self, id: ServiceId) -> &ReciprocityService {
        match id {
            ServiceId::Instalex => &self.instalex,
            ServiceId::Instazood => &self.instazood,
            ServiceId::Boostgram => &self.boostgram,
            other => panic!("{other} is not a reciprocity service"),
        }
    }

    /// The collusion service engine for an id.
    ///
    /// # Panics
    /// Panics for reciprocity services.
    pub fn collusion(&self, id: ServiceId) -> &CollusionService {
        match id {
            ServiceId::Hublaagram => &self.hublaagram,
            ServiceId::Followersgratis => &self.followersgratis,
            other => panic!("{other} is not a collusion service"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_registers_expected_honeypot_counts() {
        let study = Study::new(Scenario::smoke(11));
        // Offered types: Instalex 4, Instazood 5, Boostgram 4, Hublaagram 3,
        // Followersgratis 2 → 18 types × 4 accounts.
        let total: usize = study.campaigns.iter().map(|c| c.total_accounts()).sum();
        assert_eq!(total, 18 * 4);
        // Baseline accounts exist on top.
        assert_eq!(
            study.framework.records().len(),
            total + study.scenario.baseline_accounts
        );
        assert_eq!(study.phase, Phase::Setup);
    }

    #[test]
    fn timeline_phases_are_contiguous() {
        let s = Scenario::smoke(1);
        let t = Timeline::from_scenario(&s);
        assert_eq!(t.char_start, Day(0));
        assert_eq!(t.narrow_start, Day(s.characterization_days));
        assert_eq!(t.broad_start.0, s.characterization_days + s.narrow_days);
        assert_eq!(
            t.end.0,
            s.characterization_days + s.narrow_days + s.broad_days + s.epilogue_days
        );
        let (cal_start, cal_end) = t.calibration(s.calibration_tail_days);
        assert_eq!(cal_end, t.narrow_start);
        assert_eq!(cal_end.days_since(cal_start), s.calibration_tail_days);
    }

    #[test]
    #[should_panic(expected = "phases must run in order")]
    fn phases_enforce_order() {
        let mut study = Study::new(Scenario::smoke(2));
        study.run_characterization();
        study.run_characterization();
    }

    #[test]
    fn franchises_share_fingerprint_and_network() {
        let study = Study::new(Scenario::smoke(3));
        assert_eq!(
            study.instalex.current_asn(ActionType::Like),
            study.instazood.current_asn(ActionType::Like)
        );
    }
}
