//! World construction: the synthetic internet and the service network map.

use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};

/// The network layout of a study world (Table 7's geography plus the
/// evasion infrastructure from the §6.4 epilogue).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsnLayout {
    /// Residential network the honeypot operators work from.
    pub honeypot_home: AsnId,
    /// The Insta* franchises' hosting ASN (US, per Table 7). Benign VPN and
    /// cloud traffic is blended into it, making it a *mixed* ASN for
    /// threshold purposes.
    pub insta_primary: AsnId,
    /// The "extensive proxy network" Insta* migrates to in the epilogue.
    pub insta_proxies: Vec<AsnId>,
    /// Boostgram's hosting ASN (US, pure abuse).
    pub boost_primary: AsnId,
    /// Boostgram's fallback hosting.
    pub boost_backup: AsnId,
    /// Hublaagram's two simultaneous delivery networks (GBR and USA).
    pub hubla_asns: Vec<AsnId>,
    /// Followersgratis's small Indonesian network (tiny IP pool).
    pub fg_asn: AsnId,
}

impl AsnLayout {
    /// Register the whole layout (plus one residential network per country)
    /// into a fresh registry.
    pub fn build(registry: &mut AsnRegistry) -> Self {
        for c in Country::ALL {
            registry.register(
                &format!("res-{}", c.code().to_lowercase()),
                c,
                AsnKind::Residential,
                200_000,
            );
        }
        let honeypot_home = registry
            .by_name("res-us")
            .expect("US residential registered");
        let insta_primary = registry.register("insta-host-us", Country::Us, AsnKind::Hosting, 60_000);
        let insta_proxies = (0..5)
            .map(|i| {
                registry.register(
                    &format!("proxy-net-{i}"),
                    Country::Us,
                    AsnKind::Proxy,
                    30_000,
                )
            })
            .collect();
        let boost_primary = registry.register("boost-host-us", Country::Us, AsnKind::Hosting, 40_000);
        let boost_backup = registry.register("boost-host-us-2", Country::Us, AsnKind::Hosting, 40_000);
        let hubla_asns = vec![
            registry.register("hubla-host-gb", Country::Gb, AsnKind::Hosting, 40_000),
            registry.register("hubla-host-us", Country::Us, AsnKind::Hosting, 40_000),
        ];
        let fg_asn = registry.register("fg-host-id", Country::Id, AsnKind::Hosting, 256);
        Self {
            honeypot_home,
            insta_primary,
            insta_proxies,
            boost_primary,
            boost_backup,
            hubla_asns,
            fg_asn,
        }
    }

    /// The Insta* rotation: primary first, then the proxy escape route.
    pub fn insta_rotation(&self) -> Vec<AsnId> {
        let mut v = vec![self.insta_primary];
        v.extend(self.insta_proxies.iter().copied());
        v
    }

    /// The Boostgram rotation.
    pub fn boost_rotation(&self) -> Vec<AsnId> {
        vec![self.boost_primary, self.boost_backup]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_registers_all_networks() {
        let mut reg = AsnRegistry::new();
        let layout = AsnLayout::build(&mut reg);
        // 11 residential + 1 insta + 5 proxies + 2 boost + 2 hubla + 1 fg.
        assert_eq!(reg.len(), 22);
        assert_eq!(reg.get(layout.insta_primary).country, Country::Us);
        assert_eq!(reg.get(layout.hubla_asns[0]).country, Country::Gb);
        assert_eq!(reg.get(layout.hubla_asns[1]).country, Country::Us);
        assert_eq!(reg.get(layout.fg_asn).country, Country::Id);
        assert_eq!(reg.get(layout.fg_asn).block_len, 256, "tiny IP pool");
        assert_eq!(layout.insta_rotation().len(), 6);
        assert_eq!(layout.boost_rotation().len(), 2);
        assert!(layout
            .insta_proxies
            .iter()
            .all(|&a| reg.get(a).kind == AsnKind::Proxy));
    }

    #[test]
    fn honeypot_home_is_residential() {
        let mut reg = AsnRegistry::new();
        let layout = AsnLayout::build(&mut reg);
        assert_eq!(reg.get(layout.honeypot_home).kind, AsnKind::Residential);
        assert_eq!(reg.get(layout.honeypot_home).country, Country::Us);
    }
}
