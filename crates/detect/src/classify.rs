//! Customer identification (§5).
//!
//! "Using our service characterizations we were then able to identify all
//! accounts used by customers of each service." The classifier scans the
//! platform's daily aggregates and attributes an account to a service when
//! its traffic matches the service's signature:
//!
//! * outbound records whose `(ASN, fingerprint)` key matches — customers of
//!   reciprocity services and collusion-network participants;
//! * inbound records sourced from a collusion service's ASNs — which also
//!   catches Hublaagram's no-outbound (receive-only) customers.
//!
//! Because signatures are a *lower bound* on service activity (the paper
//! makes the same caveat), the classifier is scored against the simulator's
//! ground truth; precision should be ≈1 and recall high but not necessarily
//! perfect.

use crate::signature::ServiceSignature;
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// The classifier's verdicts over a window.
///
/// All containers are BTree-based: the classification is iterated by the
/// business analyses and serialized into results, so its order must be
/// deterministic (DESIGN.md §6).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Classification {
    /// Accounts attributed to each service.
    pub customers: BTreeMap<ServiceId, BTreeSet<AccountId>>,
    /// First day each (service, account) pair was observed active.
    pub first_seen: BTreeMap<(ServiceId, AccountId), Day>,
    /// Last day each (service, account) pair was observed active.
    pub last_seen: BTreeMap<(ServiceId, AccountId), Day>,
    /// Days on which each (service, account) pair was active.
    pub active_days: BTreeMap<(ServiceId, AccountId), Vec<Day>>,
}

impl Classification {
    /// Accounts attributed to `service` (empty set if none).
    pub fn customers_of(&self, service: ServiceId) -> impl Iterator<Item = AccountId> + '_ {
        self.customers
            .get(&service)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of customers attributed to `service`.
    pub fn customer_count(&self, service: ServiceId) -> usize {
        self.customers.get(&service).map_or(0, |s| s.len())
    }

    /// Accounts attributed to *any* service in a group (Insta* combines the
    /// franchises because their actions cannot be told apart, §5).
    pub fn customers_of_group(&self, group: ServiceGroup) -> BTreeSet<AccountId> {
        let mut set = BTreeSet::new();
        for &s in group.members() {
            if let Some(c) = self.customers.get(&s) {
                set.extend(c.iter().copied());
            }
        }
        set
    }

    /// Whether an account was attributed to any service.
    pub fn is_abusive(&self, account: AccountId) -> bool {
        self.customers.values().any(|s| s.contains(&account))
    }

    /// A copy of this classification with the given accounts removed — used
    /// to strip the measurement's own honeypot accounts out of the business
    /// analyses (negligible at the paper's scale, visible at 1/100).
    pub fn without_accounts(&self, exclude: &HashSet<AccountId>) -> Classification {
        let mut out = Classification::default();
        for (service, set) in &self.customers {
            let filtered: BTreeSet<AccountId> =
                set.iter().copied().filter(|a| !exclude.contains(a)).collect();
            if !filtered.is_empty() {
                out.customers.insert(*service, filtered);
            }
        }
        for (&(s, a), &d) in &self.first_seen {
            if !exclude.contains(&a) {
                out.first_seen.insert((s, a), d);
            }
        }
        for (&(s, a), &d) in &self.last_seen {
            if !exclude.contains(&a) {
                out.last_seen.insert((s, a), d);
            }
        }
        for (&(s, a), days) in &self.active_days {
            if !exclude.contains(&a) {
                out.active_days.insert((s, a), days.clone());
            }
        }
        out
    }

    /// The longest run of *consecutive* active days for `(service, account)`.
    /// The long-term/short-term split keys on this (§5.1).
    pub fn longest_consecutive_days(&self, service: ServiceId, account: AccountId) -> u32 {
        let Some(days) = self.active_days.get(&(service, account)) else {
            return 0;
        };
        let mut best = 0u32;
        let mut run = 0u32;
        let mut prev: Option<Day> = None;
        for &d in days {
            run = match prev {
                Some(p) if d.0 == p.0 + 1 => run + 1,
                _ => 1,
            };
            best = best.max(run);
            prev = Some(d);
        }
        best
    }
}

/// Run the classifier over `[start, end)`.
pub fn classify(
    platform: &Platform,
    signatures: &[ServiceSignature],
    start: Day,
    end: Day,
) -> Classification {
    let mut out = Classification::default();
    for (day, log) in platform.log.iter_range(start, end) {
        for (key, counts) in log.outbound() {
            if counts.total_attempted() == 0 {
                continue;
            }
            for sig in signatures {
                if sig.matches_outbound(key.asn, key.fingerprint) {
                    note(&mut out, sig.service, key.account, day);
                }
            }
        }
        for ((account, source), counts) in log.inbound() {
            let Some(asn) = source else { continue };
            if counts.total_attempted() == 0 {
                continue;
            }
            for sig in signatures {
                if sig.matches_inbound(*asn) {
                    note(&mut out, sig.service, *account, day);
                }
            }
        }
    }
    // Active-day lists must be sorted for the consecutive-run computation;
    // they are inserted in day order, but dedupe defensively.
    for days in out.active_days.values_mut() {
        days.dedup();
    }
    out
}

fn note(c: &mut Classification, service: ServiceId, account: AccountId, day: Day) {
    c.customers.entry(service).or_default().insert(account);
    c.first_seen.entry((service, account)).or_insert(day);
    c.last_seen.insert((service, account), day);
    let days = c.active_days.entry((service, account)).or_default();
    if days.last() != Some(&day) {
        days.push(day);
    }
}

/// Precision/recall of the classifier against simulator ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Score {
    /// True positives: classified and ground-truth abusive for the service.
    pub tp: usize,
    /// False positives: classified but not ground-truth.
    pub fp: usize,
    /// False negatives: ground-truth but not classified.
    pub fn_: usize,
}

impl Score {
    /// Precision (1.0 when nothing classified).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (1.0 when nothing to find).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

/// Score the classification for a business group against ground truth.
///
/// The franchises of a group share infrastructure and client stacks, so
/// per-franchise attribution is impossible ("we cannot differentiate actions
/// performed by individual franchises", §5); scoring is meaningful at group
/// granularity.
pub fn score_group(
    platform: &Platform,
    classification: &Classification,
    group: ServiceGroup,
) -> Score {
    let classified = classification.customers_of_group(group);
    let mut truth = BTreeSet::new();
    for a in platform.accounts.iter() {
        let services = platform.ground_truth_services(a.id);
        if services.iter().any(|s| group.members().contains(s)) {
            truth.insert(a.id);
        }
    }
    let tp = classified.intersection(&truth).count();
    let fp = classified.difference(&truth).count();
    let fn_ = truth.difference(&classified).count();
    Score { tp, fp, fn_ }
}

/// [`score_group`] restricted to accounts created before `cutoff` — for
/// scoring a classification built over a window that ended at `cutoff`
/// (ground truth keeps accumulating afterwards; unclassifiable-by-
/// construction accounts should not count as false negatives).
pub fn score_group_before(
    platform: &Platform,
    classification: &Classification,
    group: ServiceGroup,
    cutoff: footsteps_sim::time::SimTime,
) -> Score {
    let classified: BTreeSet<AccountId> = classification
        .customers_of_group(group)
        .into_iter()
        .filter(|&a| platform.accounts.get(a).created_at < cutoff)
        .collect();
    let mut truth = BTreeSet::new();
    for a in platform.accounts.iter() {
        if a.created_at >= cutoff {
            continue;
        }
        let services = platform.ground_truth_services(a.id);
        if services.iter().any(|s| group.members().contains(s)) {
            truth.insert(a.id);
        }
    }
    let tp = classified.intersection(&truth).count();
    let fp = classified.difference(&truth).count();
    let fn_ = truth.difference(&classified).count();
    Score { tp, fp, fn_ }
}

/// Score the classification for one service against ground truth.
pub fn score(platform: &Platform, classification: &Classification, service: ServiceId) -> Score {
    let classified: BTreeSet<AccountId> = classification.customers_of(service).collect();
    // Ground truth: every account the service actually drove.
    let mut truth = BTreeSet::new();
    for a in platform.accounts.iter() {
        if platform.ground_truth_services(a.id).contains(&service) {
            truth.insert(a.id);
        }
    }
    let tp = classified.intersection(&truth).count();
    let fp = classified.difference(&truth).count();
    let fn_ = truth.difference(&classified).count();
    Score { tp, fp, fn_ }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_math() {
        let s = Score { tp: 90, fp: 10, fn_: 30 };
        assert!((s.precision() - 0.9).abs() < 1e-9);
        assert!((s.recall() - 0.75).abs() < 1e-9);
        let empty = Score { tp: 0, fp: 0, fn_: 0 };
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }

    #[test]
    fn consecutive_day_runs() {
        let mut c = Classification::default();
        let key = (ServiceId::Boostgram, AccountId(1));
        c.active_days.insert(
            key,
            vec![Day(1), Day(2), Day(3), Day(7), Day(8), Day(9), Day(10), Day(20)],
        );
        assert_eq!(c.longest_consecutive_days(key.0, key.1), 4);
        assert_eq!(c.longest_consecutive_days(ServiceId::Instalex, AccountId(1)), 0);
    }

    #[test]
    fn group_union_combines_franchises() {
        let mut c = Classification::default();
        c.customers
            .entry(ServiceId::Instalex)
            .or_default()
            .insert(AccountId(1));
        c.customers
            .entry(ServiceId::Instazood)
            .or_default()
            .insert(AccountId(2));
        c.customers
            .entry(ServiceId::Instazood)
            .or_default()
            .insert(AccountId(1));
        let group = c.customers_of_group(ServiceGroup::InstaStar);
        assert_eq!(group.len(), 2);
        assert!(c.is_abusive(AccountId(1)));
        assert!(!c.is_abusive(AccountId(3)));
    }
}
