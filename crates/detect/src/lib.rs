//! # footsteps-detect
//!
//! The abuse-detection side of *Following Their Footsteps*: service
//! signatures learned from honeypot ground truth (ASN + client fingerprint,
//! §5), customer classification with precision/recall scoring against
//! simulator ground truth, and the frozen per-ASN daily activity thresholds
//! of §6.2 (99th percentile of benign traffic on mixed ASNs, 25th percentile
//! of abuse traffic on pure ASNs; outbound side for reciprocity services,
//! inbound side for collusion networks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classify;
pub mod pipeline;
pub mod signature;
pub mod threshold;

pub use classify::{classify, score, score_group, score_group_before, Classification, Score};
pub use pipeline::DetectionPipeline;
pub use signature::{extract_all, extract_signature, ServiceSignature};
pub use threshold::{
    asn_traffic_kind, compute_thresholds, false_positive_account_days, percentile_u32,
    AsnTraffic, ThresholdTable,
};
