//! The assembled detection pipeline: honeypot ground truth → signatures →
//! customer classification → frozen thresholds.
//!
//! This is the glue the study orchestrator calls at the end of the
//! characterization phase; it also carries the end-to-end test proving the
//! pipeline works against live service engines.

use crate::classify::{classify, score, Classification, Score};
use crate::signature::{extract_all_timed, ServiceSignature};
use crate::threshold::{compute_thresholds_timed, ThresholdTable};
use footsteps_honeypot::HoneypotFramework;
use footsteps_obs::{Stopwatch, Timings, WorkerSpan};
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};

/// One fork-join stage of the pipeline build, as wall-clock worker lanes
/// offset from build entry. Observability-only: skipped by serde so
/// checkpointed pipelines never carry wall-clock.
#[derive(Debug, Clone, Default)]
pub struct BuildStageLanes {
    /// The span-tree node name (e.g. `detect.extract.worker`).
    pub name: String,
    /// Stage entry, seconds after build entry.
    pub offset_secs: f64,
    /// Per-worker busy intervals, offset from stage entry.
    pub lanes: Vec<WorkerSpan>,
}

/// Everything the detection side learned from a calibration window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionPipeline {
    /// Per-service network+client signatures.
    pub signatures: Vec<ServiceSignature>,
    /// Customer attribution.
    pub classification: Classification,
    /// Frozen per-ASN thresholds.
    pub thresholds: ThresholdTable,
    /// Wall-clock worker lanes of the build's fork-join stages, stashed for
    /// [`DetectionPipeline::record_spans`].
    #[serde(skip)]
    pub build_lanes: Vec<BuildStageLanes>,
}

impl DetectionPipeline {
    /// Build the full pipeline over one window `[start, end)` (signatures,
    /// classification and thresholds all from the same days).
    pub fn build(
        framework: &HoneypotFramework,
        platform: &Platform,
        start: Day,
        end: Day,
    ) -> Self {
        Self::build_windows(framework, platform, start, end, start, end)
    }

    /// Build with separate windows: customer classification over the whole
    /// measurement period, thresholds calibrated on a recent tail (the paper
    /// identified customers over 90 days but froze thresholds "at the start
    /// of each experiment").
    pub fn build_windows(
        framework: &HoneypotFramework,
        platform: &Platform,
        class_start: Day,
        class_end: Day,
        cal_start: Day,
        cal_end: Day,
    ) -> Self {
        // Each fork-join stage's worker lanes are timestamped as offsets
        // from build entry so `record_spans` can graft them under the
        // orchestrator's build span later.
        let build = Stopwatch::start();
        let mut build_lanes = Vec::new();
        let offset_secs = build.elapsed_secs();
        let (signatures, lanes) = extract_all_timed(framework, platform, class_start, class_end);
        build_lanes.push(BuildStageLanes {
            name: "detect.extract.worker".to_string(),
            offset_secs,
            lanes,
        });
        let classification = classify(platform, &signatures, class_start, class_end);
        let offset_secs = build.elapsed_secs();
        let (thresholds, lanes) =
            compute_thresholds_timed(platform, &classification, &signatures, cal_start, cal_end);
        build_lanes.push(BuildStageLanes {
            name: "detect.thresholds.worker".to_string(),
            offset_secs,
            lanes,
        });
        Self {
            signatures,
            classification,
            thresholds,
            build_lanes,
        }
    }

    /// Score the classifier for one service against ground truth.
    pub fn score(&self, platform: &Platform, service: ServiceId) -> Score {
        score(platform, &self.classification, service)
    }

    /// The signature for one service, if learned.
    pub fn signature_of(&self, service: ServiceId) -> Option<&ServiceSignature> {
        self.signatures.iter().find(|s| s.service == service)
    }

    /// Record what the pipeline learned into the observability registry:
    /// per-service customer tallies, signature count, and the frozen
    /// threshold table's shape (per-direction entry counts plus a histogram
    /// of the threshold values themselves). Deterministic: everything here
    /// derives from the pipeline's own frozen state.
    pub fn record_obs(&self, rec: &mut footsteps_obs::Recorder) {
        rec.metrics.add("detect.signatures", self.signatures.len() as u64);
        for service in ServiceId::ALL {
            rec.metrics.add(
                &format!("detect.customers.{}", service.slug()),
                self.classification.customer_count(service) as u64,
            );
        }
        for (&(_asn, _action, direction), &threshold) in self.thresholds.iter() {
            let key = match direction {
                Direction::Outbound => "detect.thresholds.outbound",
                Direction::Inbound => "detect.thresholds.inbound",
            };
            rec.metrics.incr(key);
            rec.metrics
                .observe("detect.threshold_value", THRESHOLD_VALUE_BOUNDS, u64::from(threshold));
        }
    }

    /// Graft the build's fork-join worker lanes onto the span tree, under
    /// the currently open span. `build_start_secs` is the tree-timebase
    /// instant of build entry (the caller captures `timings.now_secs()`
    /// right before calling [`DetectionPipeline::build_windows`]).
    pub fn record_spans(&self, timings: &mut Timings, build_start_secs: f64) {
        for stage in &self.build_lanes {
            timings.attach_workers(&stage.name, build_start_secs + stage.offset_secs, &stage.lanes);
        }
    }
}

/// Histogram bounds for frozen per-ASN daily thresholds (actions/day).
const THRESHOLD_VALUE_BOUNDS: &[u64] = &[5, 10, 25, 50, 100, 250, 1000];

#[cfg(test)]
mod tests {
    use super::*;
    use footsteps_aas::{presets, CollusionService, PaymentLedger, ReciprocityService};
    use footsteps_honeypot::{run_campaign, HoneypotFramework};
    use footsteps_sim::enforcement::Direction;
    use footsteps_sim::population::{synthesize, PopulationConfig, ResidentialIndex};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// End-to-end: stand up Boostgram (pure-abuse ASN) and Hublaagram
    /// (collusion) plus organic background traffic on a mixed ASN, register
    /// honeypots, run two weeks, build the pipeline, and validate the §5/§6.2
    /// properties.
    #[test]
    fn pipeline_end_to_end() {
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 50_000);
        }
        let bg_host = reg.register("bg-host", Country::Us, AsnKind::Hosting, 10_000);
        let hg_host = reg.register("hg-host", Country::Gb, AsnKind::Hosting, 10_000);
        // Insta*-style mixed ASN: also carries benign VPN/cloud traffic.
        let mixed = reg.register("mixed-host", Country::Us, AsnKind::Hosting, 10_000);
        let residential = ResidentialIndex::build(&reg);
        let mut platform =
            Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(60));
        let mut rng = SmallRng::seed_from_u64(61);
        let pop = synthesize(
            &mut platform.accounts,
            &residential,
            &PopulationConfig { size: 6_000, ..PopulationConfig::default() },
            &mut rng,
        );
        let mut instalex = {
            let mut cfg = presets::instalex_config(0.002);
            cfg.pool_size = 500;
            ReciprocityService::new(
                cfg,
                &platform.accounts,
                &pop,
                vec![mixed],
                SmallRng::seed_from_u64(62),
            )
        };
        let mut boostgram = {
            let mut cfg = presets::boostgram_config(0.01);
            cfg.pool_size = 500;
            ReciprocityService::new(
                cfg,
                &platform.accounts,
                &pop,
                vec![bg_host],
                SmallRng::seed_from_u64(63),
            )
        };
        let mut hublaagram = {
            let mut cfg = presets::hublaagram_config(0.0005);
            cfg.lifecycle.arrival_rate = 3.0;
            cfg.lifecycle.initial_long_term = 50;
            CollusionService::new(cfg, vec![hg_host], SmallRng::seed_from_u64(64))
        };
        let mut framework = HoneypotFramework::new(AsnId(0), SmallRng::seed_from_u64(65));
        let mut ledger = PaymentLedger::new();
        platform.begin_day(Day(0));
        framework.setup_celebrities(&mut platform, 20);
        boostgram.seed_initial_customers(&mut platform, &residential, Day(0));
        instalex.seed_initial_customers(&mut platform, &residential, Day(0));
        hublaagram.seed_initial_customers(&mut platform, &residential, &mut ledger, Day(0));
        run_campaign(&mut framework, &mut platform, &mut boostgram, &mut ledger, Day(0), 3, 0);
        run_campaign(&mut framework, &mut platform, &mut instalex, &mut ledger, Day(0), 3, 0);
        run_campaign(&mut framework, &mut platform, &mut hublaagram, &mut ledger, Day(0), 3, 0);
        let bg_cfg = footsteps_sim::background::BackgroundConfig {
            daily_actors: 600,
            blend: vec![(mixed, 80)],
            ..Default::default()
        };
        let mut bg_rng = SmallRng::seed_from_u64(66);
        for d in 0..14u32 {
            platform.begin_day(Day(d));
            footsteps_sim::background::run_background_day(&mut platform, &pop, &bg_cfg, &mut bg_rng);
            boostgram.run_day(&mut platform, &residential, &mut ledger, Day(d));
            instalex.run_day(&mut platform, &residential, &mut ledger, Day(d));
            hublaagram.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }

        let pipeline = DetectionPipeline::build(&framework, &platform, Day(0), Day(14));

        // Signatures learned for all three services.
        for s in [ServiceId::Boostgram, ServiceId::Instalex, ServiceId::Hublaagram] {
            assert!(pipeline.signature_of(s).is_some(), "signature for {s}");
        }
        assert!(pipeline.signature_of(ServiceId::Hublaagram).unwrap().collusion);

        // Classifier: near-perfect precision, high recall.
        for s in [ServiceId::Boostgram, ServiceId::Instalex, ServiceId::Hublaagram] {
            let score = pipeline.score(&platform, s);
            assert!(
                score.precision() > 0.98,
                "{s} precision {}",
                score.precision()
            );
            assert!(score.recall() > 0.9, "{s} recall {}", score.recall());
            assert!(score.tp > 10, "{s} found {} customers", score.tp);
        }

        // No-outbound Hublaagram customers are caught via inbound matching.
        let hg_customers = pipeline
            .classification
            .customer_count(ServiceId::Hublaagram);
        assert!(hg_customers > 50, "hublaagram customers {hg_customers}");

        // ASN kinds: Boostgram's host is pure abuse; the shared host is mixed.
        use crate::threshold::AsnTraffic;
        assert_eq!(pipeline.thresholds.asn_kinds[&bg_host], AsnTraffic::PureAbuse);
        assert_eq!(pipeline.thresholds.asn_kinds[&mixed], AsnTraffic::Mixed);

        // Thresholds: pure ASN gets the 25th-percentile-of-abuse rule, so the
        // threshold must sit *below* Boostgram's typical per-account volume;
        // the mixed ASN's 99th-percentile-of-benign rule must sit *below*
        // Instalex's automation volumes but *above* the benign median.
        let bg_thr = pipeline
            .thresholds
            .get(bg_host, ActionType::Follow, Direction::Outbound)
            .expect("pure ASN follow threshold");
        assert!(
            (20..200).contains(&bg_thr),
            "Boostgram follow threshold {bg_thr} below its ~96/day volume"
        );
        let ix_thr = pipeline
            .thresholds
            .get(mixed, ActionType::Follow, Direction::Outbound)
            .expect("mixed ASN follow threshold");
        assert!(
            ix_thr < 150,
            "mixed threshold {ix_thr} must catch Instalex's 185/day follows"
        );
        assert!(ix_thr >= 3, "mixed threshold {ix_thr} above benign median");
        // Collusion threshold exists on the inbound side.
        assert!(pipeline
            .thresholds
            .get(hg_host, ActionType::Like, Direction::Inbound)
            .is_some());

        // False-positive exposure on the mixed ASN is bounded near 1%.
        let (over, total) = crate::threshold::false_positive_account_days(
            &platform,
            &pipeline.classification,
            &pipeline.thresholds,
            mixed,
            ActionType::Follow,
            Day(0),
            Day(14),
        );
        assert!(total > 0);
        let rate = over as f64 / total as f64;
        assert!(rate <= 0.02, "false-positive rate {rate}");

        // Obs: the pipeline can report what it learned, and the tallies
        // agree with its own frozen state.
        let mut rec = footsteps_obs::Recorder::new();
        pipeline.record_obs(&mut rec);
        let snap = rec.metrics.snapshot();
        assert!(snap.counter("detect.customers.boostgram") > 10);
        assert_eq!(
            snap.counter("detect.signatures"),
            pipeline.signatures.len() as u64
        );
        assert_eq!(
            snap.counter("detect.thresholds.outbound") + snap.counter("detect.thresholds.inbound"),
            pipeline.thresholds.len() as u64
        );
        let h = &snap.totals.histograms["detect.threshold_value"];
        assert_eq!(h.count, pipeline.thresholds.len() as u64);
    }
}