//! Service signatures from honeypot ground truth.
//!
//! "Based on features gathered from our honeypot accounts, such as the type
//! of action, commonly tracked information about the client (e.g., IP
//! address, ASN), and additional signals produced within Instagram, we can
//! identify the actions initiated by each AAS" (§5).
//!
//! A signature is the set of `(ASN, client fingerprint)` pairs observed
//! driving honeypot accounts enrolled with a service. Extraction uses
//! *only* honeypot-observable data (the event streams of tracked accounts),
//! never the simulator's ground-truth attribution.

use footsteps_honeypot::HoneypotFramework;
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};

/// Network+client signature of one service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceSignature {
    /// The service this signature describes.
    pub service: ServiceId,
    /// ASNs the service's platform traffic originates from. A `BTreeSet`
    /// so that every consumer's iteration order is deterministic.
    pub asns: BTreeSet<AsnId>,
    /// Client fingerprints of its automation stack.
    pub fingerprints: HashSet<ClientFingerprint>,
    /// Whether the service's signature traffic is *inbound* to customer
    /// accounts (collusion networks) in addition to outbound.
    pub collusion: bool,
}

impl ServiceSignature {
    /// Whether an outbound record key matches this signature.
    pub fn matches_outbound(&self, asn: AsnId, fingerprint: ClientFingerprint) -> bool {
        self.asns.contains(&asn) && self.fingerprints.contains(&fingerprint)
    }

    /// Whether inbound traffic from `asn` matches this signature (collusion
    /// services only — reciprocity services do not deliver inbound actions
    /// themselves).
    pub fn matches_inbound(&self, asn: AsnId) -> bool {
        self.collusion && self.asns.contains(&asn)
    }
}

/// Extract the signature of `service` from the honeypot event streams over
/// `[start, end)`.
///
/// Returns `None` if no honeypot of that service saw any automation traffic
/// in the window (no ground truth to build a signature from).
pub fn extract_signature(
    framework: &HoneypotFramework,
    platform: &Platform,
    service: ServiceId,
    start: Day,
    end: Day,
) -> Option<ServiceSignature> {
    let honeypots: Vec<(AccountId, AsnId)> = framework
        .records_for(service)
        .map(|r| (r.account, platform.accounts.get(r.account).home_asn))
        .collect();
    if honeypots.is_empty() {
        return None;
    }
    let mut asns = BTreeSet::new();
    let mut fingerprints = HashSet::new();
    for &(account, home) in &honeypots {
        for ev in platform.log.events_in(start, end, |e| e.actor == account) {
            // The framework's own management traffic (photo uploads,
            // lived-in setup) comes from the home network with first-party
            // clients; everything else on the account is the service.
            if ev.asn == home && ev.fingerprint.is_organic_client() {
                continue;
            }
            asns.insert(ev.asn);
            fingerprints.insert(ev.fingerprint);
        }
    }
    if asns.is_empty() {
        return None;
    }
    Some(ServiceSignature {
        service,
        asns,
        fingerprints,
        collusion: service.is_collusion(),
    })
}

/// Extract signatures for every service with registered honeypots.
///
/// Extraction is read-only per service, so the five services fan out over
/// the platform's worker threads ([`footsteps_aas::plan_parallel`] joins in
/// `ServiceId::ALL` order — the output is deterministic for any thread
/// count).
pub fn extract_all(
    framework: &HoneypotFramework,
    platform: &Platform,
    start: Day,
    end: Day,
) -> Vec<ServiceSignature> {
    extract_all_timed(framework, platform, start, end).0
}

/// [`extract_all`] plus the decision workers' wall-clock lanes, for the
/// span tree (`detect.extract.worker` under the pipeline-build span).
pub fn extract_all_timed(
    framework: &HoneypotFramework,
    platform: &Platform,
    start: Day,
    end: Day,
) -> (Vec<ServiceSignature>, Vec<footsteps_obs::WorkerSpan>) {
    let (raw, lanes) =
        footsteps_aas::plan_parallel_timed(&ServiceId::ALL, platform.config.worker_threads, |&s| {
            extract_signature(framework, platform, s, start, end)
        });
    (raw.into_iter().flatten().collect(), lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use footsteps_aas::{presets, PaymentLedger, ReciprocityService};
    use footsteps_honeypot::{run_campaign, HoneypotFramework};
    use footsteps_sim::population::{synthesize, PopulationConfig, ResidentialIndex};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn signature_is_learned_from_honeypots_only() {
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 50_000);
        }
        let host = reg.register("bg-host", Country::Us, AsnKind::Hosting, 10_000);
        let residential = ResidentialIndex::build(&reg);
        let mut platform =
            Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(50));
        let mut rng = SmallRng::seed_from_u64(51);
        let pop = synthesize(
            &mut platform.accounts,
            &residential,
            &PopulationConfig { size: 3_000, ..PopulationConfig::default() },
            &mut rng,
        );
        let mut svc = {
            let mut cfg = presets::boostgram_config(0.01);
            cfg.pool_size = 400;
            cfg.lifecycle.arrival_rate = 1.0;
            cfg.lifecycle.initial_long_term = 5;
            ReciprocityService::new(
                cfg,
                &platform.accounts,
                &pop,
                vec![host],
                SmallRng::seed_from_u64(52),
            )
        };
        let mut framework = HoneypotFramework::new(AsnId(0), SmallRng::seed_from_u64(53));
        let mut ledger = PaymentLedger::new();
        platform.begin_day(Day(0));
        framework.setup_celebrities(&mut platform, 20);
        svc.seed_initial_customers(&mut platform, &residential, Day(0));
        run_campaign(&mut framework, &mut platform, &mut svc, &mut ledger, Day(0), 3, 0);
        for d in 0..4u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        let sig = extract_signature(&framework, &platform, ServiceId::Boostgram, Day(0), Day(4))
            .expect("signature extracted");
        assert!(sig.asns.contains(&host));
        assert_eq!(sig.asns.len(), 1, "only the service's hosting ASN");
        assert!(sig
            .fingerprints
            .iter()
            .all(|f| f.is_spoofed()), "only spoofed private-API clients");
        assert!(!sig.collusion);
        assert!(sig.matches_outbound(host, ClientFingerprint::SpoofedMobile { variant: 3 }));
        assert!(!sig.matches_outbound(AsnId(0), ClientFingerprint::OfficialApp));
        assert!(!sig.matches_inbound(host), "reciprocity signatures are outbound-only");
        // No honeypots with Instalex → no signature.
        assert!(
            extract_signature(&framework, &platform, ServiceId::Instalex, Day(0), Day(4))
                .is_none()
        );
    }
}
