//! Per-ASN daily activity thresholds (§6.2).
//!
//! "We define a per-account daily activity threshold for each ASN, and only
//! actions above that threshold are candidates for a countermeasure. […]
//! For ASNs with both AAS and benign traffic, we measure the daily 99th
//! percentile of likes and follows produced by Instagram accounts that are
//! not participating in AASs. […] For ASNs with only AAS traffic, we use a
//! threshold of the daily 25th percentile of actions."
//!
//! Thresholds are computed once over a calibration window and **frozen**
//! ("we computed the activity level thresholds at the start of each
//! experiment and did not change them to prevent an adversary from
//! affecting the false positive rate").

use crate::classify::Classification;
use crate::signature::ServiceSignature;
use footsteps_sim::enforcement::Direction;
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// How an ASN's traffic breaks down between abusive and benign accounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsnTraffic {
    /// Effectively all traffic is from classified AAS accounts.
    PureAbuse,
    /// Both AAS and benign traffic.
    Mixed,
    /// No meaningful AAS presence.
    Benign,
}

/// Classify an ASN's outbound traffic over a window by the share produced by
/// classified-abusive accounts.
pub fn asn_traffic_kind(
    platform: &Platform,
    classification: &Classification,
    asn: AsnId,
    start: Day,
    end: Day,
) -> AsnTraffic {
    let mut abusive = 0u64;
    let mut benign = 0u64;
    for (_, log) in platform.log.iter_range(start, end) {
        for (key, counts) in log.outbound() {
            if key.asn != asn {
                continue;
            }
            let n = u64::from(counts.total_attempted());
            if classification.is_abusive(key.account) {
                abusive += n;
            } else {
                benign += n;
            }
        }
    }
    let total = abusive + benign;
    if total == 0 || abusive == 0 {
        return AsnTraffic::Benign;
    }
    // A sliver of benign traffic (<2%) still counts as pure: in practice a
    // handful of stray requests do not make a hosting ASN "mixed".
    if benign * 50 < total {
        AsnTraffic::PureAbuse
    } else {
        AsnTraffic::Mixed
    }
}

/// The frozen threshold table used by the intervention policies.
///
/// Thresholds live in a `BTreeMap` so that iteration (reporting, policy
/// sweeps) and serialization are deterministic.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThresholdTable {
    thresholds: BTreeMap<(AsnId, ActionType, Direction), u32>,
    /// Traffic kind per ASN, retained for reporting.
    pub asn_kinds: HashMap<AsnId, AsnTraffic>,
}

impl ThresholdTable {
    /// Threshold for `(asn, action, direction)`, if one was computed.
    pub fn get(&self, asn: AsnId, action: ActionType, direction: Direction) -> Option<u32> {
        self.thresholds.get(&(asn, action, direction)).copied()
    }

    /// Insert/override a threshold (tests and ablations).
    pub fn set(&mut self, asn: AsnId, action: ActionType, direction: Direction, value: u32) {
        self.thresholds.insert((asn, action, direction), value);
    }

    /// Number of thresholds in the table.
    pub fn len(&self) -> usize {
        self.thresholds.len()
    }

    /// True if no thresholds were computed.
    pub fn is_empty(&self) -> bool {
        self.thresholds.is_empty()
    }

    /// Iterate all thresholds.
    pub fn iter(&self) -> impl Iterator<Item = (&(AsnId, ActionType, Direction), &u32)> {
        self.thresholds.iter()
    }
}

// The nearest-rank percentile used by every threshold rule below. Shared
// with the analyses and the streaming detector so the batch and online
// threshold paths can never drift apart (see `footsteps_aas::stats`);
// re-exported here to keep the crate's historical API surface.
pub use footsteps_aas::stats::percentile_u32;

/// Compute the frozen threshold table for all signature ASNs over the
/// calibration window `[start, end)`.
///
/// Only `Like` and `Follow` get thresholds (the countermeasures of §6
/// target those two types). Directions follow §6.2: outbound thresholds on
/// reciprocity-service ASNs, inbound thresholds on collusion-service ASNs.
pub fn compute_thresholds(
    platform: &Platform,
    classification: &Classification,
    signatures: &[ServiceSignature],
    start: Day,
    end: Day,
) -> ThresholdTable {
    compute_thresholds_timed(platform, classification, signatures, start, end).0
}

/// [`compute_thresholds`] plus the percentile workers' wall-clock lanes,
/// for the span tree (`detect.thresholds.worker` under the pipeline-build
/// span).
pub fn compute_thresholds_timed(
    platform: &Platform,
    classification: &Classification,
    signatures: &[ServiceSignature],
    start: Day,
    end: Day,
) -> (ThresholdTable, Vec<footsteps_obs::WorkerSpan>) {
    // One work item per (signature, ASN), in deterministic signature order;
    // each item's percentile scans are independent reads of the frozen log,
    // so they fan out over the worker threads and merge back in item order.
    let items: Vec<(AsnId, Direction)> = signatures
        .iter()
        .flat_map(|sig| {
            let direction = if sig.collusion {
                Direction::Inbound
            } else {
                Direction::Outbound
            };
            sig.asns.iter().map(move |&asn| (asn, direction))
        })
        .collect();
    let (computed, lanes) = footsteps_aas::plan_parallel_timed(
        &items,
        platform.config.worker_threads,
        |&(asn, direction)| {
            let kind = asn_traffic_kind(platform, classification, asn, start, end);
            let mut rows: Vec<(ActionType, u32)> = Vec::new();
            for ty in [ActionType::Like, ActionType::Follow] {
                let threshold = match kind {
                    AsnTraffic::Benign => continue,
                    AsnTraffic::Mixed => {
                        // 99th percentile of daily per-account counts of
                        // *non-AAS* accounts on this ASN.
                        let mut samples = per_account_daily_outbound(
                            platform,
                            asn,
                            ty,
                            start,
                            end,
                            |a| !classification.is_abusive(a),
                        );
                        match percentile_u32(&mut samples, 0.99) {
                            Some(v) => v.max(1),
                            None => continue,
                        }
                    }
                    AsnTraffic::PureAbuse => {
                        // 25th percentile of the AAS's own per-account daily
                        // counts, on the side the abuse flows.
                        let mut samples = match direction {
                            Direction::Outbound => per_account_daily_outbound(
                                platform,
                                asn,
                                ty,
                                start,
                                end,
                                |a| classification.is_abusive(a),
                            ),
                            Direction::Inbound => per_account_daily_inbound(
                                platform, asn, ty, start, end,
                            ),
                        };
                        match percentile_u32(&mut samples, 0.25) {
                            Some(v) => v.max(1),
                            None => continue,
                        }
                    }
                };
                rows.push((ty, threshold));
            }
            (kind, rows)
        },
    );
    let mut table = ThresholdTable::default();
    for (&(asn, direction), (kind, rows)) in items.iter().zip(&computed) {
        table.asn_kinds.insert(asn, *kind);
        for &(ty, threshold) in rows {
            table.set(asn, ty, direction, threshold);
        }
    }
    (table, lanes)
}

/// Per-account daily outbound counts of `ty` on `asn`, filtered by account
/// predicate. Zero-count days are not included (the percentile is over
/// active account-days, matching how such pipelines aggregate).
fn per_account_daily_outbound(
    platform: &Platform,
    asn: AsnId,
    ty: ActionType,
    start: Day,
    end: Day,
    mut include: impl FnMut(AccountId) -> bool,
) -> Vec<u32> {
    let mut samples = Vec::new();
    for (_, log) in platform.log.iter_range(start, end) {
        let mut per_account: HashMap<AccountId, u32> = HashMap::new();
        for (key, counts) in log.outbound() {
            if key.asn == asn {
                let n = counts.attempted_of(ty);
                if n > 0 {
                    *per_account.entry(key.account).or_insert(0) += n;
                }
            }
        }
        samples.extend(
            per_account
                // footsteps-lint: allow(nondet-iter) — samples are sorted by percentile_u32 before use
                .into_iter()
                .filter(|&(a, _)| include(a))
                .map(|(_, n)| n),
        );
    }
    samples
}

/// Per-recipient daily inbound counts of `ty` sourced from `asn`.
fn per_account_daily_inbound(
    platform: &Platform,
    asn: AsnId,
    ty: ActionType,
    start: Day,
    end: Day,
) -> Vec<u32> {
    let mut samples = Vec::new();
    for (_, log) in platform.log.iter_range(start, end) {
        for ((_, source), counts) in log.inbound() {
            if *source == Some(asn) {
                let n = counts.attempted_of(ty);
                if n > 0 {
                    samples.push(n);
                }
            }
        }
    }
    samples
}

/// Count account-days of *benign* accounts exceeding a threshold on a mixed
/// ASN — the false-positive exposure of the countermeasure. With a 99th
/// percentile threshold this is bounded at ~1% of benign account-days.
pub fn false_positive_account_days(
    platform: &Platform,
    classification: &Classification,
    table: &ThresholdTable,
    asn: AsnId,
    ty: ActionType,
    start: Day,
    end: Day,
) -> (u64, u64) {
    let Some(threshold) = table.get(asn, ty, Direction::Outbound) else {
        return (0, 0);
    };
    let samples = per_account_daily_outbound(platform, asn, ty, start, end, |a| {
        !classification.is_abusive(a)
    });
    let over = samples.iter().filter(|&&n| n > threshold).count() as u64;
    (over, samples.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::ServiceSignature;
    use footsteps_sim::net::{AsnKind, AsnRegistry};
    use footsteps_sim::platform::{Platform, PlatformConfig};
    use footsteps_sim::prelude::{
        ActionOutcome, ClientFingerprint, Country, ServiceId,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::{BTreeSet, HashSet};

    /// Build a platform with one pure-abuse ASN, one mixed ASN and one
    /// collusion ASN, with hand-written daily logs.
    fn synthetic_world() -> (Platform, Classification, Vec<ServiceSignature>, AsnId, AsnId, AsnId) {
        let mut reg = AsnRegistry::new();
        reg.register("res", Country::Us, AsnKind::Residential, 1_000);
        let pure = reg.register("pure", Country::Us, AsnKind::Hosting, 1_000);
        let mixed = reg.register("mixed", Country::Us, AsnKind::Hosting, 1_000);
        let collusion = reg.register("coll", Country::Gb, AsnKind::Hosting, 1_000);
        let mut p = Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(1));
        let spoof = ClientFingerprint::SpoofedMobile { variant: 3 };
        let coll_fp = ClientFingerprint::SpoofedMobile { variant: 4 };
        let app = ClientFingerprint::OfficialApp;
        let mut class = Classification::default();

        // Pure ASN: 8 abusive accounts doing 100,200,…,800 follows/day.
        for i in 0..8u32 {
            let a = AccountId(i);
            class.customers.entry(ServiceId::Boostgram).or_default().insert(a);
            for d in 0..5u32 {
                p.log.record_outbound(
                    Day(d), a, pure, spoof, ActionType::Follow,
                    ActionOutcome::Delivered, 100 * (i + 1),
                );
                p.log.record_outbound(
                    Day(d), a, pure, spoof, ActionType::Like,
                    ActionOutcome::Delivered, 100 * (i + 1),
                );
            }
        }
        // Mixed ASN: the same abusers plus 100 benign accounts doing
        // 1..=100 follows/day (99th pct = 100).
        for i in 0..8u32 {
            let a = AccountId(i);
            class.customers.entry(ServiceId::Instalex).or_default().insert(a);
            for d in 0..5u32 {
                p.log.record_outbound(
                    Day(d), a, mixed, spoof, ActionType::Follow,
                    ActionOutcome::Delivered, 500,
                );
                p.log.record_outbound(
                    Day(d), a, mixed, spoof, ActionType::Like,
                    ActionOutcome::Delivered, 500,
                );
            }
        }
        for i in 0..100u32 {
            let a = AccountId(1_000 + i);
            for d in 0..5u32 {
                p.log.record_outbound(
                    Day(d), a, mixed, app, ActionType::Follow,
                    ActionOutcome::Delivered, i + 1,
                );
                p.log.record_outbound(
                    Day(d), a, mixed, app, ActionType::Like,
                    ActionOutcome::Delivered, i + 1,
                );
            }
        }
        // Collusion ASN: recipients receiving 40,80,…,320 likes/day inbound.
        for i in 0..8u32 {
            let a = AccountId(2_000 + i);
            class.customers.entry(ServiceId::Hublaagram).or_default().insert(a);
            for d in 0..5u32 {
                p.log.record_inbound(Day(d), a, Some(collusion), ActionType::Like, 40 * (i + 1));
                // Participants' outbound keeps the ASN pure-abusive.
                p.log.record_outbound(
                    Day(d), a, collusion, coll_fp, ActionType::Like,
                    ActionOutcome::Delivered, 40,
                );
                p.log.record_outbound(
                    Day(d), a, collusion, coll_fp, ActionType::Follow,
                    ActionOutcome::Delivered, 40,
                );
            }
        }
        let signatures = vec![
            ServiceSignature {
                service: ServiceId::Boostgram,
                asns: BTreeSet::from([pure]),
                fingerprints: HashSet::from([spoof]),
                collusion: false,
            },
            ServiceSignature {
                service: ServiceId::Instalex,
                asns: BTreeSet::from([mixed]),
                fingerprints: HashSet::from([spoof]),
                collusion: false,
            },
            ServiceSignature {
                service: ServiceId::Hublaagram,
                asns: BTreeSet::from([collusion]),
                fingerprints: HashSet::from([coll_fp]),
                collusion: true,
            },
        ];
        (p, class, signatures, pure, mixed, collusion)
    }

    #[test]
    fn threshold_rules_match_section_6_2() {
        let (p, class, sigs, pure, mixed, collusion) = synthetic_world();
        let table = compute_thresholds(&p, &class, &sigs, Day(0), Day(5));
        // ASN kinds.
        assert_eq!(table.asn_kinds[&pure], AsnTraffic::PureAbuse);
        assert_eq!(table.asn_kinds[&mixed], AsnTraffic::Mixed);
        assert_eq!(table.asn_kinds[&collusion], AsnTraffic::PureAbuse);
        // Pure rule: 25th percentile of the abusers' own daily counts
        // (samples 100..800 ×5 days → 25th pct = 200).
        assert_eq!(table.get(pure, ActionType::Follow, Direction::Outbound), Some(200));
        // Mixed rule: 99th percentile of the *benign* accounts (1..=100,
        // nearest rank → 99), leaving exactly the top 1% above threshold.
        assert_eq!(table.get(mixed, ActionType::Follow, Direction::Outbound), Some(99));
        // Collusion rule: 25th percentile of per-recipient inbound
        // (40..320 → 80), on the inbound side only.
        assert_eq!(table.get(collusion, ActionType::Like, Direction::Inbound), Some(80));
        assert_eq!(table.get(collusion, ActionType::Like, Direction::Outbound), None);
    }

    #[test]
    fn mixed_asn_false_positive_rate_is_bounded() {
        let (p, class, sigs, _pure, mixed, _c) = synthetic_world();
        let table = compute_thresholds(&p, &class, &sigs, Day(0), Day(5));
        let (over, total) = false_positive_account_days(
            &p, &class, &table, mixed, ActionType::Follow, Day(0), Day(5),
        );
        assert_eq!(total, 500, "100 benign accounts × 5 days");
        // Exactly the top 1% of benign account-days sit above the 99th-pct
        // threshold — the paper's "upper bound of 1% false positives".
        assert_eq!(over, 5);
        assert!((over as f64 / total as f64) <= 0.01 + 1e-9);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v: Vec<u32> = (1..=100).collect();
        assert_eq!(percentile_u32(&mut v, 0.99), Some(99));
        assert_eq!(percentile_u32(&mut v, 0.25), Some(25));
        assert_eq!(percentile_u32(&mut v, 1.0), Some(100));
        assert_eq!(percentile_u32(&mut v, 0.0), Some(1), "clamped to rank 1");
        let mut empty: Vec<u32> = vec![];
        assert_eq!(percentile_u32(&mut empty, 0.5), None);
    }

    #[test]
    fn table_set_get() {
        let mut t = ThresholdTable::default();
        assert!(t.is_empty());
        t.set(AsnId(1), ActionType::Follow, Direction::Outbound, 30);
        assert_eq!(t.get(AsnId(1), ActionType::Follow, Direction::Outbound), Some(30));
        assert_eq!(t.get(AsnId(1), ActionType::Follow, Direction::Inbound), None);
        assert_eq!(t.get(AsnId(2), ActionType::Follow, Direction::Outbound), None);
        assert_eq!(t.len(), 1);
    }
}
