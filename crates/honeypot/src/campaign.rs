//! Registration campaigns (§4.1.2).
//!
//! "We registered 10 honeypot accounts for every service type offered by
//! each AAS […] Among each set of 10 accounts, nine are empty and one is
//! lived-in."
//!
//! The campaign layer sits between the framework (which owns accounts) and
//! the service engines (which own enrollments). A [`Registrar`] adapter
//! hides the difference between the two engine types.

use crate::framework::{HoneypotFramework, HoneypotKind};
use footsteps_aas::catalog::offerings;
use footsteps_aas::{CollusionService, PaymentLedger, ReciprocityService};
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};

/// Anything a honeypot can register with.
pub trait Registrar {
    /// The service being registered with.
    fn service_id(&self) -> ServiceId;

    /// Enroll an account requesting one action type. `paid` purchases
    /// service immediately instead of (or on top of) the free tier.
    fn register(
        &mut self,
        account: AccountId,
        requested: ActionType,
        paid: bool,
        day: Day,
        ledger: &mut PaymentLedger,
    );

    /// Action types this service sells (Table 1).
    fn offered_types(&self) -> Vec<ActionType> {
        offerings(self.service_id()).offered_types()
    }
}

impl Registrar for ReciprocityService {
    fn service_id(&self) -> ServiceId {
        self.id()
    }

    fn register(
        &mut self,
        account: AccountId,
        requested: ActionType,
        paid: bool,
        day: Day,
        ledger: &mut PaymentLedger,
    ) {
        self.enroll_honeypot(account, requested, paid, day, ledger);
    }
}

impl Registrar for CollusionService {
    fn service_id(&self) -> ServiceId {
        self.id()
    }

    fn register(
        &mut self,
        account: AccountId,
        requested: ActionType,
        paid: bool,
        day: Day,
        ledger: &mut PaymentLedger,
    ) {
        // Paid collusion probes buy the cheapest monthly like tier — the
        // probes behind the 160 likes/hour finding (§5.2).
        let tier = if paid { Some(0) } else { None };
        self.enroll_honeypot(account, requested, tier, day, ledger);
    }
}

/// Outcome of one campaign: the accounts registered per action type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Service targeted.
    pub service: ServiceId,
    /// `(requested type, accounts)` per offered service type.
    pub cohorts: Vec<(ActionType, Vec<AccountId>)>,
}

impl CampaignReport {
    /// Total accounts registered in this campaign.
    pub fn total_accounts(&self) -> usize {
        self.cohorts.iter().map(|(_, a)| a.len()).sum()
    }
}

/// Register a full measurement campaign against one service: for every
/// offered action type, `per_type` accounts (one lived-in, the rest empty).
/// `paid_per_type` of each cohort purchase service instead of relying on the
/// trial.
pub fn run_campaign<R: Registrar>(
    framework: &mut HoneypotFramework,
    platform: &mut Platform,
    service: &mut R,
    ledger: &mut PaymentLedger,
    day: Day,
    per_type: usize,
    paid_per_type: usize,
) -> CampaignReport {
    assert!(per_type >= 1);
    assert!(paid_per_type <= per_type);
    let mut cohorts = Vec::new();
    for ty in service.offered_types() {
        let mut accounts = Vec::with_capacity(per_type);
        for i in 0..per_type {
            // One lived-in account per cohort of ten (§4.1.2). It goes
            // first, which also makes it one of the paying accounts when
            // `paid_per_type > 0` — paid service runs longer than the trial
            // and gives the lived-in measurements a usable sample size.
            let kind = if i == 0 {
                HoneypotKind::LivedIn
            } else {
                HoneypotKind::Empty
            };
            let account = framework.create_account(platform, kind);
            let paid = i < paid_per_type;
            service.register(account, ty, paid, day, ledger);
            framework.note_registration(account, service.service_id(), ty, paid, day);
            accounts.push(account);
        }
        cohorts.push((ty, accounts));
    }
    CampaignReport {
        service: service.service_id(),
        cohorts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::HoneypotFramework;
    use footsteps_aas::presets;
    use footsteps_sim::population::{synthesize, PopulationConfig, ResidentialIndex};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn world() -> (
        Platform,
        ResidentialIndex,
        HoneypotFramework,
        ReciprocityService,
        PaymentLedger,
    ) {
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 50_000);
        }
        let host = reg.register("ix-host", Country::Us, AsnKind::Hosting, 10_000);
        let residential = ResidentialIndex::build(&reg);
        let mut platform =
            Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(10));
        let mut rng = SmallRng::seed_from_u64(11);
        let pop = synthesize(
            &mut platform.accounts,
            &residential,
            &PopulationConfig { size: 3_000, ..PopulationConfig::default() },
            &mut rng,
        );
        let mut cfg = presets::instalex_config(0.01);
        cfg.pool_size = 500;
        let svc = ReciprocityService::new(
            cfg,
            &platform.accounts,
            &pop,
            vec![host],
            SmallRng::seed_from_u64(12),
        );
        let mut framework = HoneypotFramework::new(AsnId(0), SmallRng::seed_from_u64(13));
        platform.begin_day(Day(0));
        framework.setup_celebrities(&mut platform, 20);
        (platform, residential, framework, svc, PaymentLedger::new())
    }

    #[test]
    fn campaign_covers_every_offered_type() {
        let (mut platform, _res, mut framework, mut svc, mut ledger) = world();
        let report = run_campaign(
            &mut framework,
            &mut platform,
            &mut svc,
            &mut ledger,
            Day(0),
            10,
            2,
        );
        // Instalex offers like, follow, post, unfollow (Table 1): 4 types.
        assert_eq!(report.cohorts.len(), 4);
        assert_eq!(report.total_accounts(), 40);
        for (ty, accounts) in &report.cohorts {
            assert_eq!(accounts.len(), 10, "{ty}");
            // Exactly one lived-in per cohort.
            let lived_in = accounts
                .iter()
                .filter(|&&a| {
                    platform.accounts.get(a).kind == ProfileKind::HoneypotLivedIn
                })
                .count();
            assert_eq!(lived_in, 1, "{ty}");
        }
        // Paid registrations hit the ledger: 2 per cohort × 4 cohorts.
        assert_eq!(
            ledger.distinct_payers_in(ServiceId::Instalex, Day(0), Day(1)),
            8
        );
    }

    #[test]
    fn registered_honeypots_receive_service() {
        let (mut platform, residential, mut framework, mut svc, mut ledger) = world();
        let report = run_campaign(
            &mut framework,
            &mut platform,
            &mut svc,
            &mut ledger,
            Day(0),
            3,
            0,
        );
        for d in 0..3u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        let (ty, accounts) = &report.cohorts[0];
        for &a in accounts {
            assert!(
                platform.log.total_outbound(a, *ty, Day(0), Day(3)) > 0,
                "honeypot {a} must be driven for {ty}"
            );
        }
    }
}
