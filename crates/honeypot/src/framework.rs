//! The honeypot account framework (§4.1).
//!
//! "We developed a honeypot account framework to programmatically manage a
//! large number of Instagram accounts. Our framework supports
//! campaign-specific accounts, account creation, posting content, deletion,
//! and data collection of all inbound and outbound actions on the account."
//!
//! Honeypots come in three flavours:
//! * **empty** — minimum viable profile, ≥10 themed photos, follows nobody;
//! * **lived-in** — fully populated profile following 10–20 high-profile
//!   (>1M-follower) accounts;
//! * **inactive** — never registered with any service; the background-noise
//!   baseline (§4.1.3).
//!
//! Every honeypot account is graph-tracked and event-tracked on the platform
//! so the full inbound/outbound event stream is retained.

use footsteps_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Thematic photo categories used to populate honeypot accounts ("dogs,
/// cats, lizards, and food", §4.1.1).
pub const PHOTO_THEMES: [&str; 4] = ["dogs", "cats", "lizards", "food"];

/// A honeypot flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HoneypotKind {
    /// Minimum viable profile.
    Empty,
    /// Fully populated profile.
    LivedIn,
    /// Baseline account, never enrolled anywhere.
    Inactive,
}

impl HoneypotKind {
    /// The platform profile kind for this flavour.
    pub fn profile_kind(self) -> ProfileKind {
        match self {
            HoneypotKind::Empty => ProfileKind::HoneypotEmpty,
            HoneypotKind::LivedIn => ProfileKind::HoneypotLivedIn,
            HoneypotKind::Inactive => ProfileKind::HoneypotInactive,
        }
    }
}

/// Ledger entry for one honeypot account.
#[derive(Debug, Clone, Serialize)]
pub struct HoneypotRecord {
    /// The platform account.
    pub account: AccountId,
    /// Flavour.
    pub kind: HoneypotKind,
    /// Photo theme assigned at creation.
    pub theme: &'static str,
    /// Service the account was registered with, if any.
    pub service: Option<ServiceId>,
    /// Action type requested from the service, if registered.
    pub requested: Option<ActionType>,
    /// Whether the registration paid for service (vs. free trial).
    pub paid: bool,
    /// Day of registration, if registered.
    pub enrolled_on: Option<Day>,
    /// Whether the account has been deleted.
    pub deleted: bool,
}

/// `theme` is a `&'static str` drawn from [`PHOTO_THEMES`]; deserialization
/// re-interns the stored string against that table so checkpointed records
/// round-trip without owning the theme text.
impl serde::Deserialize for HoneypotRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: serde::Deserialize>(
            v: &serde::Value,
            name: &str,
        ) -> Result<T, serde::Error> {
            let f = v
                .get_field(name)
                .ok_or_else(|| serde::Error::custom(format!("missing field `{name}`")))?;
            T::from_value(f)
                .map_err(|e| serde::Error::custom(format!("field `{name}`: {e}")))
        }
        let theme_owned: String = field(v, "theme")?;
        let theme = PHOTO_THEMES
            .iter()
            .copied()
            .find(|t| *t == theme_owned)
            .ok_or_else(|| {
                serde::Error::custom(format!("unknown honeypot theme `{theme_owned}`"))
            })?;
        Ok(Self {
            account: field(v, "account")?,
            kind: field(v, "kind")?,
            theme,
            service: field(v, "service")?,
            requested: field(v, "requested")?,
            paid: field(v, "paid")?,
            enrolled_on: field(v, "enrolled_on")?,
            deleted: field(v, "deleted")?,
        })
    }
}

/// The framework: a factory and registry for honeypot accounts.
#[derive(Debug, Serialize, Deserialize)]
pub struct HoneypotFramework {
    records: Vec<HoneypotRecord>,
    celebrities: Vec<AccountId>,
    home_asn: AsnId,
    rng: SmallRng,
}

impl HoneypotFramework {
    /// Create the framework. `home_asn` is the (residential) network the
    /// operators create and manage accounts from; a diverse set of
    /// commercial/residential addresses within it is used per account
    /// (§4.1.2).
    pub fn new(home_asn: AsnId, rng: SmallRng) -> Self {
        Self {
            records: Vec::new(),
            celebrities: Vec::new(),
            home_asn,
            rng,
        }
    }

    /// All honeypot records.
    pub fn records(&self) -> &[HoneypotRecord] {
        &self.records
    }

    /// Records for a given service.
    pub fn records_for(&self, service: ServiceId) -> impl Iterator<Item = &HoneypotRecord> {
        self.records
            .iter()
            .filter(move |r| r.service == Some(service))
    }

    /// The high-profile accounts lived-in honeypots follow.
    pub fn celebrities(&self) -> &[AccountId] {
        &self.celebrities
    }

    /// Create `n` high-profile (>1M followers) accounts for lived-in
    /// honeypots to follow. Call once before creating lived-in accounts.
    pub fn setup_celebrities(&mut self, platform: &mut Platform, n: usize) {
        for _ in 0..n {
            let followers = 1_000_000 + (self.rng.gen::<f64>() * 9e6) as u32;
            let id = platform.accounts.create(
                platform.clock.now(),
                ProfileKind::Organic,
                Country::Us,
                self.home_asn,
                (self.rng.gen::<f64>() * 900.0) as u32,
                followers,
                // Celebrities do not reciprocate unsolicited follows.
                ReciprocityProfile::SILENT,
            );
            self.celebrities.push(id);
        }
    }

    /// Create one honeypot account: platform account + tracking + ≥10 themed
    /// photos; lived-in accounts additionally follow 10–20 celebrities.
    pub fn create_account(&mut self, platform: &mut Platform, kind: HoneypotKind) -> AccountId {
        let theme = PHOTO_THEMES[self.rng.gen_range(0..PHOTO_THEMES.len())];
        let account = platform.accounts.create(
            platform.clock.now(),
            kind.profile_kind(),
            Country::Us,
            self.home_asn,
            0,
            0,
            // Honeypots neither generate nor receive organic actions of
            // their own volition.
            ReciprocityProfile::SILENT,
        );
        platform.graph.track(account);
        platform.log.track_events_for(account);
        // ≥10 photos at creation (§4.1.3), uploaded from the home network.
        let ip = platform.asns.ip_in(self.home_asn, account.0);
        let photos = 10 + self.rng.gen_range(0..4);
        for _ in 0..photos {
            platform.post_media(account, self.home_asn, ip);
        }
        if kind == HoneypotKind::LivedIn {
            assert!(
                !self.celebrities.is_empty(),
                "call setup_celebrities before creating lived-in accounts"
            );
            let n = 10 + self.rng.gen_range(0usize..=10).min(self.celebrities.len() - 1);
            for k in 0..n.min(self.celebrities.len()) {
                let celeb = self.celebrities[k];
                platform.submit_event(EventRequest {
                    actor: account,
                    action: ActionType::Follow,
                    target: celeb,
                    asn: self.home_asn,
                    ip,
                    fingerprint: ClientFingerprint::OfficialApp,
                    service: None,
                });
            }
        }
        self.records.push(HoneypotRecord {
            account,
            kind,
            theme,
            service: None,
            requested: None,
            paid: false,
            enrolled_on: None,
            deleted: false,
        });
        account
    }

    /// Create `n` inactive baseline accounts (§4.1.3).
    pub fn create_baseline(&mut self, platform: &mut Platform, n: usize) -> Vec<AccountId> {
        (0..n)
            .map(|_| self.create_account(platform, HoneypotKind::Inactive))
            .collect()
    }

    /// Mark a honeypot as registered with a service. The actual service-side
    /// enrollment is performed by the campaign layer; this records the
    /// framework's view.
    pub fn note_registration(
        &mut self,
        account: AccountId,
        service: ServiceId,
        requested: ActionType,
        paid: bool,
        day: Day,
    ) {
        let rec = self
            .records
            .iter_mut()
            .find(|r| r.account == account)
            .expect("unknown honeypot account");
        assert!(rec.service.is_none(), "honeypot already registered");
        assert!(
            rec.kind != HoneypotKind::Inactive,
            "baseline accounts must never be registered"
        );
        rec.service = Some(service);
        rec.requested = Some(requested);
        rec.paid = paid;
        rec.enrolled_on = Some(day);
    }

    /// Delete all honeypot accounts ("we deleted our honeypot accounts after
    /// the measurement period, which removed all of their actions", §4.1.2).
    pub fn delete_all(&mut self, platform: &mut Platform) {
        for rec in &mut self.records {
            if !rec.deleted {
                platform.delete_account(rec.account);
                rec.deleted = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn platform() -> Platform {
        let mut reg = AsnRegistry::new();
        reg.register("res-us", Country::Us, AsnKind::Residential, 100_000);
        Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(1))
    }

    fn framework() -> HoneypotFramework {
        HoneypotFramework::new(AsnId(0), SmallRng::seed_from_u64(2))
    }

    #[test]
    fn empty_accounts_have_photos_and_no_follows() {
        let mut p = platform();
        let mut f = framework();
        p.begin_day(Day(0));
        let a = f.create_account(&mut p, HoneypotKind::Empty);
        let acct = p.accounts.get(a);
        assert!(acct.media.len() >= 10, "≥10 photos");
        assert_eq!(acct.following, 0);
        assert_eq!(acct.followers, 0);
        assert!(p.graph.is_tracked(a));
        assert!(p.log.is_event_tracked(a));
        assert_eq!(acct.kind, ProfileKind::HoneypotEmpty);
    }

    #[test]
    fn lived_in_accounts_follow_celebrities() {
        let mut p = platform();
        let mut f = framework();
        p.begin_day(Day(0));
        f.setup_celebrities(&mut p, 20);
        let a = f.create_account(&mut p, HoneypotKind::LivedIn);
        let acct = p.accounts.get(a);
        assert!(
            (10..=20).contains(&acct.following),
            "follows 10-20 high-profile accounts, got {}",
            acct.following
        );
        for &c in f.celebrities() {
            assert!(p.accounts.get(c).followers >= 1, "celebs gained follows");
            assert!(p.accounts.get(c).followers < 20_000_000);
        }
        // Celebrities are high-profile.
        assert!(p.accounts.get(f.celebrities()[0]).followers >= 1_000_000);
    }

    #[test]
    #[should_panic(expected = "setup_celebrities")]
    fn lived_in_without_celebrities_panics() {
        let mut p = platform();
        let mut f = framework();
        f.create_account(&mut p, HoneypotKind::LivedIn);
    }

    #[test]
    fn registration_bookkeeping() {
        let mut p = platform();
        let mut f = framework();
        p.begin_day(Day(0));
        let a = f.create_account(&mut p, HoneypotKind::Empty);
        f.note_registration(a, ServiceId::Boostgram, ActionType::Like, false, Day(2));
        let rec = &f.records()[0];
        assert_eq!(rec.service, Some(ServiceId::Boostgram));
        assert_eq!(rec.requested, Some(ActionType::Like));
        assert_eq!(rec.enrolled_on, Some(Day(2)));
        assert_eq!(f.records_for(ServiceId::Boostgram).count(), 1);
        assert_eq!(f.records_for(ServiceId::Instalex).count(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_registration_rejected() {
        let mut p = platform();
        let mut f = framework();
        let a = f.create_account(&mut p, HoneypotKind::Empty);
        f.note_registration(a, ServiceId::Boostgram, ActionType::Like, false, Day(0));
        f.note_registration(a, ServiceId::Instalex, ActionType::Like, false, Day(1));
    }

    #[test]
    #[should_panic(expected = "baseline accounts")]
    fn baseline_accounts_cannot_be_registered() {
        let mut p = platform();
        let mut f = framework();
        let a = f.create_account(&mut p, HoneypotKind::Inactive);
        f.note_registration(a, ServiceId::Boostgram, ActionType::Like, false, Day(0));
    }

    #[test]
    fn deletion_tombstones_and_purges() {
        let mut p = platform();
        let mut f = framework();
        p.begin_day(Day(0));
        f.setup_celebrities(&mut p, 20);
        let a = f.create_account(&mut p, HoneypotKind::LivedIn);
        let celeb_followers_before: u32 = f
            .celebrities()
            .iter()
            .map(|&c| p.accounts.get(c).followers)
            .sum();
        p.begin_day(Day(5));
        f.delete_all(&mut p);
        assert!(f.records()[0].deleted);
        assert!(p.accounts.get(a).deleted_at.is_some());
        // The honeypot's follows were removed from the celebrities.
        let celeb_followers_after: u32 = f
            .celebrities()
            .iter()
            .map(|&c| p.accounts.get(c).followers)
            .sum();
        assert!(celeb_followers_after < celeb_followers_before);
        assert_eq!(p.accounts.get(a).following, 0);
    }
}
