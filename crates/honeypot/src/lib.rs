//! # footsteps-honeypot
//!
//! The honeypot account framework of *Following Their Footsteps* (§4):
//! programmatic management of empty / lived-in / inactive-baseline honeypot
//! accounts, registration campaigns against the account-automation services
//! (10 accounts per offered service type, one lived-in per cohort),
//! inbound/outbound monitoring with attribution validation, advertised- vs
//! delivered-trial verification, and the reciprocation measurement behind
//! Table 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod framework;
pub mod monitor;
pub mod reciprocation;

pub use campaign::{run_campaign, CampaignReport, Registrar};
pub use framework::{HoneypotFramework, HoneypotKind, HoneypotRecord, PHOTO_THEMES};
pub use monitor::{
    baseline_inbound, observed_trial_days, summarize, unrequested_action_types, ActivitySummary,
};
pub use reciprocation::{find_row, measure, ReciprocationCell, Table5Row};
