//! Monitoring and attribution (§4.1.3, §4.2).
//!
//! Honeypots are useful because "since they neither generate nor receive
//! organic actions, we can attribute all activity to the linked AAS". The
//! monitor validates that premise against the inactive baseline, verifies
//! advertised vs delivered trial lengths, and summarises per-honeypot
//! activity.

use crate::framework::{HoneypotFramework, HoneypotKind};
use footsteps_sim::prelude::*;

/// Activity summary for one honeypot over a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivitySummary {
    /// Outbound actions attempted from the account (all types).
    pub outbound: u64,
    /// Inbound actions delivered to the account (all types).
    pub inbound: u64,
    /// First day with outbound activity, if any.
    pub first_active: Option<Day>,
    /// Last day with outbound activity, if any.
    pub last_active: Option<Day>,
}

/// Summarise a honeypot's activity over `[start, end)`.
pub fn summarize(
    platform: &Platform,
    account: AccountId,
    start: Day,
    end: Day,
) -> ActivitySummary {
    let mut s = ActivitySummary::default();
    for (day, log) in platform.log.iter_range(start, end) {
        let out: u64 = ActionType::ALL
            .iter()
            .map(|&ty| u64::from(log.outbound_attempted(account, ty)))
            .sum();
        if out > 0 {
            s.outbound += out;
            if s.first_active.is_none() {
                s.first_active = Some(day);
            }
            s.last_active = Some(day);
        }
        if let Some(inb) = log.inbound_of(account) {
            s.inbound += u64::from(inb.total_attempted());
        }
    }
    s
}

/// Total inbound actions received by the inactive baseline accounts over a
/// window. The attribution premise requires this to be **zero**: "for the
/// duration of our study, we did not observe any activity on any of the
/// inactive honeypot accounts" (§4.1.3).
pub fn baseline_inbound(framework: &HoneypotFramework, platform: &Platform, start: Day, end: Day) -> u64 {
    framework
        .records()
        .iter()
        .filter(|r| r.kind == HoneypotKind::Inactive)
        .map(|r| summarize(platform, r.account, start, end).inbound)
        .sum()
}

/// Measured trial length for a service (§4.2): the longest observed span of
/// outbound activity on *free* (unpaid) honeypots registered with it. The
/// paper found every service matches its advertised period except Instazood
/// (advertises 3 days, delivers 7).
pub fn observed_trial_days(
    framework: &HoneypotFramework,
    platform: &Platform,
    service: ServiceId,
    horizon: Day,
) -> Option<u32> {
    framework
        .records_for(service)
        .filter(|r| !r.paid)
        .filter_map(|r| {
            let enrolled = r.enrolled_on?;
            let s = summarize(platform, r.account, enrolled, horizon);
            let last = s.last_active?;
            Some(last.days_since(enrolled) + 1)
        })
        .max()
}

/// §4.2 "How Accounts Are Used": verify the services only perform actions of
/// the requested types. Returns, per honeypot, any outbound action types
/// observed that were *not* requested (excluding the setup actions the
/// framework itself performs: posts and — for unfollow requests — the
/// follow/unfollow pairs the service must create).
pub fn unrequested_action_types(
    framework: &HoneypotFramework,
    platform: &Platform,
    start: Day,
    end: Day,
) -> Vec<(AccountId, Vec<ActionType>)> {
    let mut offenders = Vec::new();
    for r in framework.records() {
        let Some(requested) = r.requested else { continue };
        let enrolled = r.enrolled_on.unwrap_or(start);
        let from = enrolled.max(start);
        // The framework's own management actions (photo uploads, lived-in
        // setup follows) originate from the honeypot's home network; only
        // traffic from other ASNs is the service's doing.
        let home = platform.accounts.get(r.account).home_asn;
        let mut unexpected = Vec::new();
        for ty in ActionType::ALL {
            if ty == requested {
                continue;
            }
            // An unfollow service necessarily produces follows as well.
            if requested == ActionType::Unfollow && ty == ActionType::Follow {
                continue;
            }
            let n: u64 = platform
                .log
                .iter_range(from, end)
                .flat_map(|(_, log)| log.outbound())
                .filter(|(k, _)| k.account == r.account && k.asn != home)
                .map(|(_, c)| u64::from(c.attempted_of(ty)))
                .sum();
            if n > 0 {
                unexpected.push(ty);
            }
        }
        if !unexpected.is_empty() {
            offenders.push((r.account, unexpected));
        }
    }
    offenders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::framework::HoneypotFramework;
    use footsteps_aas::{presets, PaymentLedger, ReciprocityService};
    use footsteps_sim::population::{synthesize, PopulationConfig, ResidentialIndex};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct World {
        platform: Platform,
        residential: ResidentialIndex,
        framework: HoneypotFramework,
        instalex: ReciprocityService,
        instazood: ReciprocityService,
        ledger: PaymentLedger,
    }

    fn world() -> World {
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 50_000);
        }
        let host = reg.register("host", Country::Us, AsnKind::Hosting, 10_000);
        let residential = ResidentialIndex::build(&reg);
        let mut platform =
            Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(20));
        let mut rng = SmallRng::seed_from_u64(21);
        let pop = synthesize(
            &mut platform.accounts,
            &residential,
            &PopulationConfig { size: 3_000, ..PopulationConfig::default() },
            &mut rng,
        );
        let mk = |cfg: footsteps_aas::ReciprocityConfig, seed: u64, accounts: &_, pop: &_| {
            let mut cfg = cfg;
            cfg.pool_size = 400;
            cfg.lifecycle.arrival_rate = 0.0;
            cfg.lifecycle.initial_long_term = 0;
            ReciprocityService::new(cfg, accounts, pop, vec![host], SmallRng::seed_from_u64(seed))
        };
        let instalex = mk(presets::instalex_config(0.01), 22, &platform.accounts, &pop);
        let instazood = mk(presets::instazood_config(0.01), 23, &platform.accounts, &pop);
        let mut framework = HoneypotFramework::new(AsnId(0), SmallRng::seed_from_u64(24));
        platform.begin_day(Day(0));
        framework.setup_celebrities(&mut platform, 20);
        World { platform, residential, framework, instalex, instazood, ledger: PaymentLedger::new() }
    }

    #[test]
    fn baseline_accounts_stay_silent() {
        let mut w = world();
        w.framework.create_baseline(&mut w.platform, 50);
        let _ = run_campaign(
            &mut w.framework,
            &mut w.platform,
            &mut w.instalex,
            &mut w.ledger,
            Day(0),
            3,
            0,
        );
        for d in 0..10u32 {
            w.platform.begin_day(Day(d));
            w.instalex
                .run_day(&mut w.platform, &w.residential, &mut w.ledger, Day(d));
        }
        assert_eq!(
            baseline_inbound(&w.framework, &w.platform, Day(0), Day(10)),
            0,
            "inactive honeypots must see zero inbound activity"
        );
    }

    #[test]
    fn instazood_delivers_seven_days_despite_advertising_three() {
        let mut w = world();
        let _ = run_campaign(
            &mut w.framework,
            &mut w.platform,
            &mut w.instazood,
            &mut w.ledger,
            Day(0),
            3,
            0,
        );
        for d in 0..15u32 {
            w.platform.begin_day(Day(d));
            w.instazood
                .run_day(&mut w.platform, &w.residential, &mut w.ledger, Day(d));
        }
        let measured =
            observed_trial_days(&w.framework, &w.platform, ServiceId::Instazood, Day(15))
                .expect("trial activity observed");
        assert_eq!(measured, 7, "delivered trial is 7 days, not the advertised 3");
        assert_eq!(
            footsteps_aas::catalog::reciprocity_pricing(ServiceId::Instazood)
                .advertised_trial_days,
            3
        );
    }

    #[test]
    fn services_perform_only_requested_actions() {
        let mut w = world();
        let _ = run_campaign(
            &mut w.framework,
            &mut w.platform,
            &mut w.instalex,
            &mut w.ledger,
            Day(0),
            3,
            0,
        );
        for d in 0..8u32 {
            w.platform.begin_day(Day(d));
            w.instalex
                .run_day(&mut w.platform, &w.residential, &mut w.ledger, Day(d));
        }
        let offenders =
            unrequested_action_types(&w.framework, &w.platform, Day(0), Day(8));
        assert!(
            offenders.is_empty(),
            "services perform as advertised; offenders: {offenders:?}"
        );
    }

    #[test]
    fn summarize_tracks_activity_span() {
        let mut w = world();
        let _ = run_campaign(
            &mut w.framework,
            &mut w.platform,
            &mut w.instalex,
            &mut w.ledger,
            Day(0),
            2,
            0,
        );
        for d in 0..12u32 {
            w.platform.begin_day(Day(d));
            w.instalex
                .run_day(&mut w.platform, &w.residential, &mut w.ledger, Day(d));
        }
        let account = w.framework.records()[0].account;
        let s = summarize(&w.platform, account, Day(0), Day(12));
        assert!(s.outbound > 0);
        assert_eq!(s.first_active, Some(Day(0)));
        // Instalex trial is 7 days: activity on days 0..=6.
        assert_eq!(s.last_active, Some(Day(6)));
    }
}
