//! Quantifying reciprocation (§4.3, Table 5).
//!
//! For each reciprocity service and each outbound action type (likes,
//! follows), the honeypot cohorts measure the probability that an outbound
//! action spontaneously generates a reciprocated inbound like or follow —
//! split by empty vs lived-in honeypots.

use crate::framework::{HoneypotFramework, HoneypotKind};
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};

/// One cell of Table 5: honeypots of one (service, outbound type, profile
/// kind) cohort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReciprocationCell {
    /// Outbound actions of the requested type that visibly succeeded.
    pub outbound: u64,
    /// Inbound likes received.
    pub inbound_likes: u64,
    /// Inbound follows received.
    pub inbound_follows: u64,
}

impl ReciprocationCell {
    /// P(inbound like | outbound action).
    pub fn like_rate(&self) -> f64 {
        if self.outbound == 0 {
            0.0
        } else {
            self.inbound_likes as f64 / self.outbound as f64
        }
    }

    /// P(inbound follow | outbound action).
    pub fn follow_rate(&self) -> f64 {
        if self.outbound == 0 {
            0.0
        } else {
            self.inbound_follows as f64 / self.outbound as f64
        }
    }
}

/// A Table 5 row: service × outbound type × profile kind, with rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Service measured.
    pub service: ServiceId,
    /// Whether the cohort is lived-in (vs empty).
    pub lived_in: bool,
    /// Outbound action type the cohort requested.
    pub outbound: ActionType,
    /// Measured cell.
    pub cell: ReciprocationCell,
}

/// Measure reciprocation for every (service, like/follow, empty/lived-in)
/// cohort registered in the framework, over `[start, end)`.
pub fn measure(
    framework: &HoneypotFramework,
    platform: &Platform,
    services: &[ServiceId],
    start: Day,
    end: Day,
) -> Vec<Table5Row> {
    let mut rows = Vec::new();
    for &service in services {
        for outbound in [ActionType::Like, ActionType::Follow] {
            for lived_in in [false, true] {
                let mut cell = ReciprocationCell::default();
                for r in framework.records_for(service) {
                    if r.requested != Some(outbound) {
                        continue;
                    }
                    let is_lived_in = r.kind == HoneypotKind::LivedIn;
                    if is_lived_in != lived_in {
                        continue;
                    }
                    // Outbound: the service's delivered+deferred actions of
                    // the requested type. Inbound: everything that landed.
                    for (_, log) in platform.log.iter_range(start, end) {
                        for (k, counts) in log.outbound() {
                            if k.account == r.account {
                                cell.outbound += u64::from(counts.visible_success_of(outbound));
                            }
                        }
                        if let Some(inb) = log.inbound_of(r.account) {
                            cell.inbound_likes +=
                                u64::from(inb.delivered[ActionType::Like.index()]);
                            cell.inbound_follows +=
                                u64::from(inb.delivered[ActionType::Follow.index()]);
                        }
                    }
                }
                if cell.outbound > 0 {
                    rows.push(Table5Row { service, lived_in, outbound, cell });
                }
            }
        }
    }
    rows
}

/// Convenience lookup into a measured table.
pub fn find_row(
    rows: &[Table5Row],
    service: ServiceId,
    outbound: ActionType,
    lived_in: bool,
) -> Option<&Table5Row> {
    rows.iter()
        .find(|r| r.service == service && r.outbound == outbound && r.lived_in == lived_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::framework::HoneypotFramework;
    use footsteps_aas::{presets, PaymentLedger, ReciprocityService};
    use footsteps_sim::population::{synthesize, PopulationConfig, ResidentialIndex};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// End-to-end Table 5 shape test: register cohorts with Boostgram and
    /// Instalex, run the trial, and check the paper's qualitative findings.
    #[test]
    fn table5_shape_holds_end_to_end() {
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 50_000);
        }
        let host_bg = reg.register("bg-host", Country::Us, AsnKind::Hosting, 10_000);
        let host_ix = reg.register("ix-host", Country::Us, AsnKind::Hosting, 10_000);
        let residential = ResidentialIndex::build(&reg);
        let mut platform =
            Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(230));
        let mut rng = SmallRng::seed_from_u64(231);
        let pop = synthesize(
            &mut platform.accounts,
            &residential,
            &PopulationConfig { size: 12_000, ..PopulationConfig::default() },
            &mut rng,
        );
        let mut boostgram = {
            let mut cfg = presets::boostgram_config(0.01);
            cfg.pool_size = 2_000;
            cfg.lifecycle.arrival_rate = 0.0;
            cfg.lifecycle.initial_long_term = 0;
            ReciprocityService::new(
                cfg,
                &platform.accounts,
                &pop,
                vec![host_bg],
                SmallRng::seed_from_u64(232),
            )
        };
        let mut instalex = {
            let mut cfg = presets::instalex_config(0.01);
            cfg.pool_size = 1_000;
            cfg.lifecycle.arrival_rate = 0.0;
            cfg.lifecycle.initial_long_term = 0;
            ReciprocityService::new(
                cfg,
                &platform.accounts,
                &pop,
                vec![host_ix],
                SmallRng::seed_from_u64(233),
            )
        };
        let mut framework = HoneypotFramework::new(AsnId(0), SmallRng::seed_from_u64(234));
        let mut ledger = PaymentLedger::new();
        platform.begin_day(Day(0));
        framework.setup_celebrities(&mut platform, 20);
        // Larger cohorts than the paper's 10 to tame sampling noise in a
        // single-seed test.
        run_campaign(&mut framework, &mut platform, &mut boostgram, &mut ledger, Day(0), 12, 0);
        run_campaign(&mut framework, &mut platform, &mut instalex, &mut ledger, Day(0), 12, 0);
        // Trials run ≤7 days; monitor through day 16 to drain responses.
        for d in 0..16u32 {
            platform.begin_day(Day(d));
            boostgram.run_day(&mut platform, &residential, &mut ledger, Day(d));
            instalex.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        let rows = measure(
            &framework,
            &platform,
            &[ServiceId::Boostgram, ServiceId::Instalex],
            Day(0),
            Day(16),
        );

        // --- The paper's qualitative findings -----------------------------
        let bg_like_e = find_row(&rows, ServiceId::Boostgram, ActionType::Like, false).unwrap();
        let bg_like_l = find_row(&rows, ServiceId::Boostgram, ActionType::Like, true).unwrap();
        let bg_follow_e =
            find_row(&rows, ServiceId::Boostgram, ActionType::Follow, false).unwrap();
        let ix_like_e = find_row(&rows, ServiceId::Instalex, ActionType::Like, false).unwrap();

        // 1. Likes→likes rates sit in the low single-digit percent range.
        let r = bg_like_e.cell.like_rate();
        assert!((0.005..0.06).contains(&r), "empty like→like rate {r}");

        // 2. Lived-in accounts draw notably more reciprocal likes.
        assert!(
            bg_like_l.cell.like_rate() > 1.25 * bg_like_e.cell.like_rate(),
            "lived-in {} vs empty {}",
            bg_like_l.cell.like_rate(),
            bg_like_e.cell.like_rate()
        );

        // 3. Follows reciprocate at ~10%+, an order of magnitude above likes.
        let fr = bg_follow_e.cell.follow_rate();
        assert!((0.05..0.25).contains(&fr), "follow→follow rate {fr}");
        assert!(fr > 3.0 * bg_like_e.cell.like_rate());

        // 4. Users never like back after being followed.
        assert_eq!(bg_follow_e.cell.inbound_likes, 0, "follow→like is zero");

        // 5. The Instalex anomaly: its like campaigns earn far more
        //    follow-backs than Boostgram's.
        assert!(
            ix_like_e.cell.follow_rate() > 3.0 * bg_like_e.cell.follow_rate(),
            "Instalex {} vs Boostgram {}",
            ix_like_e.cell.follow_rate(),
            bg_like_e.cell.follow_rate()
        );
    }

    #[test]
    fn cell_rates_handle_zero_outbound() {
        let c = ReciprocationCell::default();
        assert_eq!(c.like_rate(), 0.0);
        assert_eq!(c.follow_rate(), 0.0);
    }
}
