//! Deterministic account binning (§6.3).
//!
//! "We deterministically partition Instagram accounts into 10 equally-sized
//! bins. We assign separate bins for each countermeasure response (block and
//! delay) and another for a control." The partition is a pure function of
//! the account id, so the same account always lands in the same bin, across
//! experiments and runs.

use footsteps_sim::prelude::{stable_bin, AccountId, Countermeasure};
use serde::{Deserialize, Serialize};

/// Number of bins used by both experiments.
pub const NUM_BINS: u32 = 10;

/// What happens to eligible actions of accounts in a bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinPolicy {
    /// Explicit control: never receives a countermeasure, and is the
    /// comparison group in the figures.
    Control,
    /// Eligible actions are synchronously blocked.
    Block,
    /// Eligible follows are removed one day later.
    Delay,
    /// Not part of the experiment (narrow design leaves 7 bins untouched).
    Untreated,
}

impl BinPolicy {
    /// The platform countermeasure this policy maps to.
    pub fn countermeasure(self) -> Countermeasure {
        match self {
            BinPolicy::Block => Countermeasure::Block,
            BinPolicy::Delay => Countermeasure::DelayRemoval,
            BinPolicy::Control | BinPolicy::Untreated => Countermeasure::None,
        }
    }
}

/// The bin an account falls in (0..NUM_BINS), a pure function of its id.
pub fn bin_of(account: AccountId) -> u32 {
    stable_bin(u64::from(account.0), NUM_BINS)
}

/// A full assignment of policies to the ten bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinAssignment {
    policies: [BinPolicy; NUM_BINS as usize],
}

impl BinAssignment {
    /// Everything untreated (the characterization phase).
    pub fn none() -> Self {
        Self { policies: [BinPolicy::Untreated; NUM_BINS as usize] }
    }

    /// The narrow design (§6.3): one block bin, one delay bin, one control
    /// bin; the remaining seven untouched. At most 20% of customers receive
    /// a countermeasure.
    pub fn narrow(block_bin: u32, delay_bin: u32, control_bin: u32) -> Self {
        assert!(block_bin < NUM_BINS && delay_bin < NUM_BINS && control_bin < NUM_BINS);
        assert!(
            block_bin != delay_bin && delay_bin != control_bin && block_bin != control_bin,
            "bins must be distinct"
        );
        let mut policies = [BinPolicy::Untreated; NUM_BINS as usize];
        policies[block_bin as usize] = BinPolicy::Block;
        policies[delay_bin as usize] = BinPolicy::Delay;
        policies[control_bin as usize] = BinPolicy::Control;
        Self { policies }
    }

    /// The broad design (§6.4): 90% of accounts treated with one policy,
    /// keeping the same control bin as the narrow experiment.
    pub fn broad(control_bin: u32, treatment: BinPolicy) -> Self {
        assert!(control_bin < NUM_BINS);
        assert!(matches!(treatment, BinPolicy::Block | BinPolicy::Delay));
        let mut policies = [treatment; NUM_BINS as usize];
        policies[control_bin as usize] = BinPolicy::Control;
        Self { policies }
    }

    /// Policy for one bin index.
    pub fn policy_of_bin(&self, bin: u32) -> BinPolicy {
        self.policies[bin as usize]
    }

    /// Policy for one account.
    pub fn policy_for(&self, account: AccountId) -> BinPolicy {
        self.policy_of_bin(bin_of(account))
    }

    /// Bins carrying a given policy.
    pub fn bins_with(&self, policy: BinPolicy) -> Vec<u32> {
        (0..NUM_BINS)
            .filter(|&b| self.policies[b as usize] == policy)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_are_deterministic_and_roughly_uniform() {
        let mut counts = [0u32; NUM_BINS as usize];
        for i in 0..100_000u32 {
            let b = bin_of(AccountId(i));
            assert_eq!(b, bin_of(AccountId(i)), "deterministic");
            counts[b as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.05, "bin {i}: {c}");
        }
    }

    #[test]
    fn narrow_assignment_treats_at_most_two_bins() {
        let a = BinAssignment::narrow(0, 1, 2);
        assert_eq!(a.bins_with(BinPolicy::Block), vec![0]);
        assert_eq!(a.bins_with(BinPolicy::Delay), vec![1]);
        assert_eq!(a.bins_with(BinPolicy::Control), vec![2]);
        assert_eq!(a.bins_with(BinPolicy::Untreated).len(), 7);
    }

    #[test]
    fn broad_assignment_treats_nine_bins() {
        let a = BinAssignment::broad(2, BinPolicy::Delay);
        assert_eq!(a.bins_with(BinPolicy::Delay).len(), 9);
        assert_eq!(a.bins_with(BinPolicy::Control), vec![2]);
        // Switching to block keeps the same control bin (§6.4).
        let b = BinAssignment::broad(2, BinPolicy::Block);
        assert_eq!(b.bins_with(BinPolicy::Control), vec![2]);
        assert_eq!(b.bins_with(BinPolicy::Block).len(), 9);
    }

    #[test]
    #[should_panic(expected = "bins must be distinct")]
    fn narrow_rejects_overlapping_bins() {
        BinAssignment::narrow(1, 1, 2);
    }

    #[test]
    fn policies_map_to_countermeasures() {
        use footsteps_sim::prelude::Countermeasure;
        assert_eq!(BinPolicy::Block.countermeasure(), Countermeasure::Block);
        assert_eq!(BinPolicy::Delay.countermeasure(), Countermeasure::DelayRemoval);
        assert_eq!(BinPolicy::Control.countermeasure(), Countermeasure::None);
        assert_eq!(BinPolicy::Untreated.countermeasure(), Countermeasure::None);
    }
}
