//! Experiment plans (§6.3, §6.4).
//!
//! An [`ExperimentPlan`] describes *when* which bin assignment is in force;
//! the study orchestrator installs the corresponding
//! [`ExperimentPolicy`](crate::policy::ExperimentPolicy) on the platform at
//! each phase boundary. The module also carries the
//! crate-level end-to-end test demonstrating the paper's central §6 result
//! against a live service engine.

use crate::bins::{BinAssignment, BinPolicy};
use footsteps_sim::prelude::Day;
use serde::{Deserialize, Serialize};

/// One phase of an experiment: an assignment in force over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentPhase {
    /// First day of the phase.
    pub start: Day,
    /// One past the last day.
    pub end: Day,
    /// Bin assignment in force.
    pub bins: BinAssignment,
}

/// A sequence of phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentPlan {
    /// Phases, contiguous and in order.
    pub phases: Vec<ExperimentPhase>,
}

impl ExperimentPlan {
    /// The narrow intervention: block/delay/control bins for six weeks.
    pub fn narrow(start: Day, block_bin: u32, delay_bin: u32, control_bin: u32) -> Self {
        Self {
            phases: vec![ExperimentPhase {
                start,
                end: start.plus(42),
                bins: BinAssignment::narrow(block_bin, delay_bin, control_bin),
            }],
        }
    }

    /// The broad intervention: one week of delay on 90% of accounts, then
    /// one week of block, keeping the same control bin.
    pub fn broad(start: Day, control_bin: u32) -> Self {
        Self {
            phases: vec![
                ExperimentPhase {
                    start,
                    end: start.plus(7),
                    bins: BinAssignment::broad(control_bin, BinPolicy::Delay),
                },
                ExperimentPhase {
                    start: start.plus(7),
                    end: start.plus(14),
                    bins: BinAssignment::broad(control_bin, BinPolicy::Block),
                },
            ],
        }
    }

    /// The assignment in force on `day`, if any phase covers it.
    pub fn bins_on(&self, day: Day) -> Option<BinAssignment> {
        self.phases
            .iter()
            .find(|p| day >= p.start && day < p.end)
            .map(|p| p.bins)
    }

    /// Overall end of the plan.
    pub fn end(&self) -> Day {
        self.phases.last().map(|p| p.end).unwrap_or(Day(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::{bin_of, NUM_BINS};
    use crate::policy::ExperimentPolicy;
    use crate::series::{eligible_proportion, median_actions_per_user};
    use footsteps_aas::{presets, PaymentLedger, ReciprocityService};
    use footsteps_detect::DetectionPipeline;
    use footsteps_honeypot::{run_campaign, HoneypotFramework};
    use footsteps_sim::enforcement::Direction;
    use footsteps_sim::population::{synthesize, PopulationConfig, ResidentialIndex};
    use footsteps_sim::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    #[test]
    fn plan_phase_lookup() {
        let plan = ExperimentPlan::broad(Day(10), 2);
        assert!(plan.bins_on(Day(9)).is_none());
        let week1 = plan.bins_on(Day(10)).unwrap();
        assert_eq!(week1.bins_with(BinPolicy::Delay).len(), 9);
        let week2 = plan.bins_on(Day(17)).unwrap();
        assert_eq!(week2.bins_with(BinPolicy::Block).len(), 9);
        assert!(plan.bins_on(Day(24)).is_none());
        assert_eq!(plan.end(), Day(24));
        assert_eq!(ExperimentPlan::narrow(Day(0), 0, 1, 2).end(), Day(42));
    }

    /// The §6.3 headline result, end-to-end: under the narrow experiment,
    /// the blocked bin's median follows drop to the threshold (the service
    /// detects blocking and adapts), the delay bin stays at the control
    /// level (the service cannot see deferred removals), and the delayed
    /// follows really are removed.
    #[test]
    fn narrow_experiment_reproduces_figure5_dynamics() {
        // --- world -----------------------------------------------------------
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 50_000);
        }
        let host = reg.register("bg-host", Country::Us, AsnKind::Hosting, 10_000);
        let residential = ResidentialIndex::build(&reg);
        let mut platform =
            Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(70));
        let mut rng = SmallRng::seed_from_u64(71);
        let pop = synthesize(
            &mut platform.accounts,
            &residential,
            &PopulationConfig { size: 5_000, ..PopulationConfig::default() },
            &mut rng,
        );
        let mut svc = {
            let mut cfg = presets::boostgram_config(0.05);
            cfg.pool_size = 800;
            ReciprocityService::new(
                cfg,
                &platform.accounts,
                &pop,
                vec![host],
                SmallRng::seed_from_u64(72),
            )
        };
        let mut framework = HoneypotFramework::new(AsnId(0), SmallRng::seed_from_u64(73));
        let mut ledger = PaymentLedger::new();
        platform.begin_day(Day(0));
        framework.setup_celebrities(&mut platform, 20);
        svc.seed_initial_customers(&mut platform, &residential, Day(0));
        run_campaign(&mut framework, &mut platform, &mut svc, &mut ledger, Day(0), 3, 0);

        // --- characterization window (10 days) -------------------------------
        for d in 0..10u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }
        let pipeline = DetectionPipeline::build(&framework, &platform, Day(0), Day(10));
        let threshold = pipeline
            .thresholds
            .get(host, ActionType::Follow, Direction::Outbound)
            .expect("follow threshold on the service ASN");

        // --- narrow intervention (4 weeks is enough for the dynamics) -------
        let plan = ExperimentPlan::narrow(Day(10), 0, 1, 2);
        let bins = plan.bins_on(Day(10)).unwrap();
        platform.set_policy(Box::new(ExperimentPolicy::new(
            pipeline.thresholds.clone(),
            bins,
        )));
        for d in 10..38u32 {
            platform.begin_day(Day(d));
            svc.run_day(&mut platform, &residential, &mut ledger, Day(d));
        }

        // --- measure ----------------------------------------------------------
        let customers: BTreeSet<AccountId> = pipeline
            .classification
            .customers_of(ServiceId::Boostgram)
            .collect();
        assert!(customers.len() > 100, "enough customers: {}", customers.len());
        // Ensure each experimental bin actually contains customers.
        for bin in 0..3u32 {
            let n = customers.iter().filter(|&&a| bin_of(a) == bin).count();
            assert!(n >= 5, "bin {bin} has {n} customers");
        }
        let _ = NUM_BINS;
        let asns: BTreeSet<AsnId> = [host].into();
        let series = |policy: BinPolicy| {
            median_actions_per_user(
                &platform, &customers, &bins, policy, &asns,
                ActionType::Follow, Direction::Outbound, Day(10), Day(38),
            )
        };
        let blocked = series(BinPolicy::Block);
        let delayed = series(BinPolicy::Delay);
        let control = series(BinPolicy::Control);

        // Pre-intervention the service ran well above the threshold; the
        // control group keeps doing so.
        let control_late = control.mean_over(Day(24), Day(38));
        assert!(
            control_late > f64::from(threshold) * 1.1,
            "control median {control_late} stays above threshold {threshold}"
        );
        // The blocked bin collapses to ~the threshold once the service's
        // block detector reacts (immediately) — §6.3, Figure 5.
        let blocked_late = blocked.mean_over(Day(24), Day(38));
        assert!(
            blocked_late < f64::from(threshold) * 1.25,
            "blocked median {blocked_late} near threshold {threshold}"
        );
        // The gap to control is bounded by where the 25th-percentile
        // threshold sits relative to typical volume (~0.8×): the blocked
        // group's median collapses onto the threshold, not to zero.
        assert!(
            blocked_late < 0.88 * control_late,
            "blocked {blocked_late} vs control {control_late}"
        );
        // The delay bin is indistinguishable from control to the service.
        let delayed_late = delayed.mean_over(Day(24), Day(38));
        assert!(
            delayed_late > 0.7 * control_late,
            "delay median {delayed_late} vs control {control_late}"
        );
        // …but the countermeasure works: follows were actually removed.
        let removed: u64 = (10..39u32)
            .map(|d| u64::from(platform.metrics(Day(d)).removed_follows))
            .sum();
        assert!(removed > 1_000, "removed follows: {removed}");

        // Eligible-proportion view (the Figure 6/7 metric): the blocked
        // group's eligible share collapses, the delay group's does not.
        let eligible = |policies: &[BinPolicy]| {
            eligible_proportion(
                &platform, &customers, &bins, policies, &asns,
                ActionType::Follow, Direction::Outbound, threshold, Day(10), Day(38),
            )
        };
        let blocked_elig = eligible(&[BinPolicy::Block]).mean_over(Day(24), Day(38));
        let delay_elig = eligible(&[BinPolicy::Delay]).mean_over(Day(24), Day(38));
        assert!(
            blocked_elig < 0.5 * delay_elig,
            "blocked eligible {blocked_elig} vs delay {delay_elig}"
        );
    }
}
