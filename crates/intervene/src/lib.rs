//! # footsteps-intervene
//!
//! The controlled intervention experiments of *Following Their Footsteps*
//! (§6): deterministic ten-bin account partitioning, the threshold+bin
//! enforcement policy combining `footsteps-detect`'s frozen thresholds with
//! per-bin countermeasures (synchronous block vs delayed removal), the
//! narrow (6-week, ≤20% treated) and broad (2-week, 90% treated) experiment
//! plans, and the daily series extraction behind Figures 5–7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bins;
pub mod experiment;
pub mod policy;
pub mod series;

pub use bins::{bin_of, BinAssignment, BinPolicy, NUM_BINS};
pub use experiment::{ExperimentPhase, ExperimentPlan};
pub use policy::{EpiloguePolicy, ExperimentPolicy};
pub use series::{eligible_proportion, median_actions_per_user, DailySeries};
