//! The experiment enforcement policy.
//!
//! Combines the frozen [`ThresholdTable`] from `footsteps-detect` with a
//! [`BinAssignment`]: an action is *eligible* when it pushes the account's
//! daily count past the per-ASN threshold (outbound for reciprocity ASNs,
//! inbound for collusion ASNs — the table is keyed by direction); whether an
//! eligible action is blocked, delay-removed or left alone depends on the
//! account's bin.

use crate::bins::BinAssignment;
use footsteps_detect::ThresholdTable;
use footsteps_sim::enforcement::{
    EnforcementContext, EnforcementDecision, EnforcementPolicy,
};
use footsteps_sim::prelude::Countermeasure;

/// Threshold+bin enforcement, installed on the platform for the duration of
/// an experiment.
#[derive(Debug, Clone)]
pub struct ExperimentPolicy {
    thresholds: ThresholdTable,
    bins: BinAssignment,
}

impl ExperimentPolicy {
    /// Build the policy. The threshold table is cloned and frozen inside.
    pub fn new(thresholds: ThresholdTable, bins: BinAssignment) -> Self {
        Self { thresholds, bins }
    }

    /// The bin assignment in force.
    pub fn bins(&self) -> &BinAssignment {
        &self.bins
    }

    /// The frozen thresholds in force.
    pub fn thresholds(&self) -> &ThresholdTable {
        &self.thresholds
    }
}

impl EnforcementPolicy for ExperimentPolicy {
    fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
        let Some(threshold) = self.thresholds.get(ctx.asn, ctx.action, ctx.direction) else {
            // No threshold for this (ASN, type, direction): not an
            // enforcement target.
            return EnforcementDecision::allow_all(ctx.requested);
        };
        let bin = crate::bins::bin_of(ctx.actor);
        let cm = self.bins.policy_for(ctx.actor).countermeasure();
        if cm == Countermeasure::None {
            // Control/untreated bins still tag the verdict so the obs layer
            // can attribute the (unenforced) traffic to its bin.
            return EnforcementDecision::allow_all(ctx.requested).with_bin(bin);
        }
        EnforcementDecision::threshold(ctx.requested, ctx.prior_today, threshold, cm).with_bin(bin)
    }
}

/// The epilogue enforcement (§6.4): after the broad experiment, the
/// countermeasures "remained active, continuing to block likes and delay
/// follows above the activity threshold for additional months" — a per-type
/// policy applied to everything except the control bin.
#[derive(Debug, Clone)]
pub struct EpiloguePolicy {
    thresholds: ThresholdTable,
    bins: BinAssignment,
}

impl EpiloguePolicy {
    /// Build the epilogue policy with the same control bin as the
    /// experiments (treatment = all other bins).
    pub fn new(thresholds: ThresholdTable, control_bin: u32) -> Self {
        Self {
            thresholds,
            bins: BinAssignment::broad(control_bin, crate::bins::BinPolicy::Block),
        }
    }
}

impl EnforcementPolicy for EpiloguePolicy {
    fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
        let Some(threshold) = self.thresholds.get(ctx.asn, ctx.action, ctx.direction) else {
            return EnforcementDecision::allow_all(ctx.requested);
        };
        let bin = crate::bins::bin_of(ctx.actor);
        if self.bins.policy_for(ctx.actor) == crate::bins::BinPolicy::Control {
            return EnforcementDecision::allow_all(ctx.requested).with_bin(bin);
        }
        let cm = match ctx.action {
            footsteps_sim::prelude::ActionType::Follow => Countermeasure::DelayRemoval,
            _ => Countermeasure::Block,
        };
        EnforcementDecision::threshold(ctx.requested, ctx.prior_today, threshold, cm).with_bin(bin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::{bin_of, BinPolicy, NUM_BINS};
    use footsteps_sim::enforcement::Direction;
    use footsteps_sim::prelude::*;

    fn ctx(
        account: AccountId,
        asn: AsnId,
        action: ActionType,
        direction: Direction,
        prior: u32,
        requested: u32,
    ) -> EnforcementContext {
        EnforcementContext {
            actor: account,
            asn,
            action,
            direction,
            day: Day(0),
            prior_today: prior,
            requested,
        }
    }

    fn account_in_bin(bin: u32) -> AccountId {
        (0..).map(AccountId).find(|&a| bin_of(a) == bin).unwrap()
    }

    fn policy() -> ExperimentPolicy {
        let mut t = ThresholdTable::default();
        t.set(AsnId(5), ActionType::Follow, Direction::Outbound, 30);
        t.set(AsnId(6), ActionType::Like, Direction::Inbound, 40);
        ExperimentPolicy::new(t, BinAssignment::narrow(0, 1, 2))
    }

    #[test]
    fn unthresholded_traffic_is_untouched() {
        let p = policy();
        let a = account_in_bin(0); // block bin
        // Wrong ASN.
        let d = p.evaluate(&ctx(a, AsnId(9), ActionType::Follow, Direction::Outbound, 100, 50));
        assert_eq!(d.pass, 50);
        // Wrong direction.
        let d = p.evaluate(&ctx(a, AsnId(5), ActionType::Follow, Direction::Inbound, 100, 50));
        assert_eq!(d.pass, 50);
        // Wrong type.
        let d = p.evaluate(&ctx(a, AsnId(5), ActionType::Like, Direction::Outbound, 100, 50));
        assert_eq!(d.pass, 50);
    }

    #[test]
    fn block_bin_gets_blocked_above_threshold() {
        let p = policy();
        let a = account_in_bin(0);
        let d = p.evaluate(&ctx(a, AsnId(5), ActionType::Follow, Direction::Outbound, 20, 50));
        assert_eq!(d.pass, 10);
        assert_eq!(d.excess, Countermeasure::Block);
    }

    #[test]
    fn delay_bin_gets_deferred_removal() {
        let p = policy();
        let a = account_in_bin(1);
        let d = p.evaluate(&ctx(a, AsnId(5), ActionType::Follow, Direction::Outbound, 0, 100));
        assert_eq!(d.pass, 30);
        assert_eq!(d.excess, Countermeasure::DelayRemoval);
    }

    #[test]
    fn control_and_untreated_bins_pass_everything() {
        let p = policy();
        for bin in [2u32, 3, 9] {
            let a = account_in_bin(bin);
            let d =
                p.evaluate(&ctx(a, AsnId(5), ActionType::Follow, Direction::Outbound, 500, 50));
            assert_eq!(d.pass, 50, "bin {bin}");
            assert_eq!(d.excess, Countermeasure::None);
        }
    }

    #[test]
    fn enforcement_targets_carry_their_bin_tag() {
        let p = policy();
        let treated = account_in_bin(0);
        let control = account_in_bin(2);
        let d = p.evaluate(&ctx(treated, AsnId(5), ActionType::Follow, Direction::Outbound, 20, 50));
        assert_eq!(d.bin, Some(0));
        // Control traffic is untouched but still attributed to its bin.
        let d = p.evaluate(&ctx(control, AsnId(5), ActionType::Follow, Direction::Outbound, 20, 50));
        assert_eq!(d.bin, Some(2));
        assert_eq!(d.pass, 50);
        // Traffic outside the threshold table is not an experiment subject.
        let d = p.evaluate(&ctx(treated, AsnId(9), ActionType::Follow, Direction::Outbound, 20, 50));
        assert_eq!(d.bin, None);
    }

    #[test]
    fn inbound_collusion_threshold_applies() {
        let p = policy();
        let a = account_in_bin(0);
        let d = p.evaluate(&ctx(a, AsnId(6), ActionType::Like, Direction::Inbound, 35, 20));
        assert_eq!(d.pass, 5);
        assert_eq!(d.excess, Countermeasure::Block);
    }

    #[test]
    fn epilogue_blocks_likes_and_delays_follows() {
        let mut t = ThresholdTable::default();
        t.set(AsnId(5), ActionType::Follow, Direction::Outbound, 30);
        t.set(AsnId(5), ActionType::Like, Direction::Outbound, 30);
        let p = super::EpiloguePolicy::new(t, 2);
        let a = account_in_bin(0);
        let d = p.evaluate(&ctx(a, AsnId(5), ActionType::Follow, Direction::Outbound, 30, 10));
        assert_eq!(d.excess, Countermeasure::DelayRemoval);
        let d = p.evaluate(&ctx(a, AsnId(5), ActionType::Like, Direction::Outbound, 30, 10));
        assert_eq!(d.excess, Countermeasure::Block);
        // Control bin exempt.
        let c = account_in_bin(2);
        let d = p.evaluate(&ctx(c, AsnId(5), ActionType::Like, Direction::Outbound, 500, 10));
        assert_eq!(d.pass, 10);
    }

    #[test]
    fn broad_policy_treats_ninety_percent() {
        let mut t = ThresholdTable::default();
        t.set(AsnId(5), ActionType::Follow, Direction::Outbound, 30);
        let p = ExperimentPolicy::new(t, BinAssignment::broad(2, BinPolicy::Delay));
        let mut treated = 0;
        for bin in 0..NUM_BINS {
            let a = account_in_bin(bin);
            let d =
                p.evaluate(&ctx(a, AsnId(5), ActionType::Follow, Direction::Outbound, 100, 10));
            if d.pass == 0 && d.excess == Countermeasure::DelayRemoval {
                treated += 1;
            }
        }
        assert_eq!(treated, 9);
    }
}
