//! Daily series extraction for the intervention figures.
//!
//! * Figure 5 — median follows per user per day, per bin, against the
//!   threshold line;
//! * Figures 6/7 — the proportion of a service's daily actions that are
//!   *eligible* for a countermeasure (above the threshold), per bin group.
//!
//! All series are measured out of the platform log; nothing is read from
//! service internals.

use crate::bins::{BinAssignment, BinPolicy};
use footsteps_sim::enforcement::Direction;
use footsteps_sim::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A per-day numeric series over `[start, end)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailySeries {
    /// First day of the series.
    pub start: Day,
    /// One value per day.
    pub values: Vec<f64>,
}

impl DailySeries {
    /// Value on a given day, if within range.
    pub fn on(&self, day: Day) -> Option<f64> {
        let idx = day.0.checked_sub(self.start.0)? as usize;
        self.values.get(idx).copied()
    }

    /// Mean over a sub-range (days clamped to the series).
    pub fn mean_over(&self, from: Day, to: Day) -> f64 {
        let vals: Vec<f64> = Day::range(from, to).filter_map(|d| self.on(d)).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

/// Daily per-account action counts for `accounts` via `asns`, on the given
/// side of the traffic.
fn daily_counts(
    platform: &Platform,
    accounts: &BTreeSet<AccountId>,
    asns: &BTreeSet<AsnId>,
    ty: ActionType,
    direction: Direction,
    day_log: &DayLog,
) -> BTreeMap<AccountId, u32> {
    let _ = platform;
    let mut per_account: BTreeMap<AccountId, u32> = BTreeMap::new();
    match direction {
        Direction::Outbound => {
            for (key, counts) in day_log.outbound() {
                if accounts.contains(&key.account) && asns.contains(&key.asn) {
                    let n = counts.attempted_of(ty);
                    if n > 0 {
                        *per_account.entry(key.account).or_insert(0) += n;
                    }
                }
            }
        }
        Direction::Inbound => {
            for ((account, source), counts) in day_log.inbound() {
                let Some(asn) = source else { continue };
                if accounts.contains(account) && asns.contains(asn) {
                    let n = counts.attempted_of(ty);
                    if n > 0 {
                        *per_account.entry(*account).or_insert(0) += n;
                    }
                }
            }
        }
    }
    per_account
}

/// Figure-5 style series: the median daily action count per active account,
/// restricted to accounts in `accounts` whose bin policy is `policy`.
#[allow(clippy::too_many_arguments)]
pub fn median_actions_per_user(
    platform: &Platform,
    accounts: &BTreeSet<AccountId>,
    bins: &BinAssignment,
    policy: BinPolicy,
    asns: &BTreeSet<AsnId>,
    ty: ActionType,
    direction: Direction,
    start: Day,
    end: Day,
) -> DailySeries {
    let group: BTreeSet<AccountId> = accounts
        .iter()
        .copied()
        .filter(|&a| bins.policy_for(a) == policy)
        .collect();
    let mut values = Vec::new();
    for day in Day::range(start, end) {
        let v = match platform.log.day(day) {
            Some(log) => {
                let day_counts: BTreeMap<AccountId, u32> =
                    daily_counts(platform, &group, asns, ty, direction, log);
                let mut counts: Vec<u32> = day_counts.into_values().collect();
                if counts.is_empty() {
                    0.0
                } else {
                    counts.sort_unstable();
                    f64::from(counts[counts.len() / 2])
                }
            }
            None => 0.0,
        };
        values.push(v);
    }
    DailySeries { start, values }
}

/// Figures-6/7 style series: the proportion of the group's daily actions
/// sitting *above* the threshold (i.e. eligible for a countermeasure).
#[allow(clippy::too_many_arguments)]
pub fn eligible_proportion(
    platform: &Platform,
    accounts: &BTreeSet<AccountId>,
    bins: &BinAssignment,
    policies: &[BinPolicy],
    asns: &BTreeSet<AsnId>,
    ty: ActionType,
    direction: Direction,
    threshold: u32,
    start: Day,
    end: Day,
) -> DailySeries {
    let group: BTreeSet<AccountId> = accounts
        .iter()
        .copied()
        .filter(|&a| policies.contains(&bins.policy_for(a)))
        .collect();
    let mut values = Vec::new();
    for day in Day::range(start, end) {
        let v = match platform.log.day(day) {
            Some(log) => {
                let counts: BTreeMap<AccountId, u32> =
                    daily_counts(platform, &group, asns, ty, direction, log);
                let total: u64 = counts.values().map(|&n| u64::from(n)).sum();
                let eligible: u64 = counts
                    .values()
                    .map(|&n| u64::from(n.saturating_sub(threshold)))
                    .sum();
                if total == 0 {
                    0.0
                } else {
                    eligible as f64 / total as f64
                }
            }
            None => 0.0,
        };
        values.push(v);
    }
    DailySeries { start, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::bin_of;
    use footsteps_sim::actions::ActionOutcome;
    use footsteps_sim::platform::{Platform, PlatformConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn platform() -> Platform {
        let mut reg = AsnRegistry::new();
        reg.register("res", Country::Us, AsnKind::Residential, 1_000);
        reg.register("host", Country::Us, AsnKind::Hosting, 1_000);
        Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(1))
    }

    #[test]
    fn series_indexing() {
        let s = DailySeries { start: Day(5), values: vec![1.0, 2.0, 3.0] };
        assert_eq!(s.on(Day(5)), Some(1.0));
        assert_eq!(s.on(Day(7)), Some(3.0));
        assert_eq!(s.on(Day(8)), None);
        assert_eq!(s.on(Day(4)), None);
        assert!((s.mean_over(Day(5), Day(8)) - 2.0).abs() < 1e-12);
        assert_eq!(s.mean_over(Day(20), Day(30)), 0.0);
    }

    #[test]
    fn median_series_reads_outbound_log() {
        let mut p = platform();
        let host = AsnId(1);
        let fp = ClientFingerprint::SpoofedMobile { variant: 1 };
        // Three accounts, one bin each; put 10/20/30 follows on day 0.
        let accounts: Vec<AccountId> = (0..3).map(AccountId).collect();
        for (i, &a) in accounts.iter().enumerate() {
            p.log.record_outbound(
                Day(0),
                a,
                host,
                fp,
                ActionType::Follow,
                ActionOutcome::Delivered,
                10 * (i as u32 + 1),
            );
        }
        let set: BTreeSet<AccountId> = accounts.iter().copied().collect();
        let asns: BTreeSet<AsnId> = [host].into();
        // All in one policy group: everything untreated.
        let bins = BinAssignment::none();
        let s = median_actions_per_user(
            &p,
            &set,
            &bins,
            BinPolicy::Untreated,
            &asns,
            ActionType::Follow,
            Direction::Outbound,
            Day(0),
            Day(2),
        );
        assert_eq!(s.on(Day(0)), Some(20.0));
        assert_eq!(s.on(Day(1)), Some(0.0), "no activity day");
    }

    #[test]
    fn eligible_proportion_math() {
        let mut p = platform();
        let host = AsnId(1);
        let fp = ClientFingerprint::SpoofedMobile { variant: 1 };
        let a = AccountId(0);
        let b = AccountId(1);
        // a: 50 follows, b: 10 follows; threshold 30 → eligible = 20 of 60.
        p.log.record_outbound(Day(0), a, host, fp, ActionType::Follow, ActionOutcome::Delivered, 50);
        p.log.record_outbound(Day(0), b, host, fp, ActionType::Follow, ActionOutcome::Delivered, 10);
        let set: BTreeSet<AccountId> = [a, b].into();
        let asns: BTreeSet<AsnId> = [host].into();
        let s = eligible_proportion(
            &p,
            &set,
            &BinAssignment::none(),
            &[BinPolicy::Untreated],
            &asns,
            ActionType::Follow,
            Direction::Outbound,
            30,
            Day(0),
            Day(1),
        );
        assert!((s.on(Day(0)).unwrap() - 20.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn bin_filtering_respects_assignment() {
        let mut p = platform();
        let host = AsnId(1);
        let fp = ClientFingerprint::SpoofedMobile { variant: 1 };
        // Find accounts in bins 0 and 1.
        let a0 = (0..).map(AccountId).find(|&a| bin_of(a) == 0).unwrap();
        let a1 = (0..).map(AccountId).find(|&a| bin_of(a) == 1).unwrap();
        p.log.record_outbound(Day(0), a0, host, fp, ActionType::Follow, ActionOutcome::Delivered, 100);
        p.log.record_outbound(Day(0), a1, host, fp, ActionType::Follow, ActionOutcome::Delivered, 7);
        let set: BTreeSet<AccountId> = [a0, a1].into();
        let asns: BTreeSet<AsnId> = [host].into();
        let bins = BinAssignment::narrow(0, 1, 2);
        let block = median_actions_per_user(
            &p, &set, &bins, BinPolicy::Block, &asns,
            ActionType::Follow, Direction::Outbound, Day(0), Day(1),
        );
        let delay = median_actions_per_user(
            &p, &set, &bins, BinPolicy::Delay, &asns,
            ActionType::Follow, Direction::Outbound, Day(0), Day(1),
        );
        assert_eq!(block.on(Day(0)), Some(100.0));
        assert_eq!(delay.on(Day(0)), Some(7.0));
    }
}
