//! The effect lattice and its transitive propagation over the call graph.
//!
//! Each product-code function gets a bitset of effects seeded from the
//! same token patterns the lexical detectors use (wall-clock idents,
//! ambient RNG constructors, `env::var`, observability tokens, panic
//! sites, hash-order iteration, float accumulation). Seeds are then
//! propagated over resolved call edges — the union over callees, iterated
//! to a fixpoint — so `apply_shard → log_outcome → Instant::now` is
//! visible at `apply_shard` even though the clock read lives two files
//! away. Each function records a *witness* (the seed or the first call
//! edge that introduced a bit), which is enough to reconstruct the full
//! chain printed in findings.
//!
//! Three deliberate asymmetries with the lexical rules:
//!
//! * files that are lexically *allowed* an effect (obs/bench for
//!   wall-clock, `sim::rng` for seeding, the env entry points) do not
//!   seed it — reaching a sanctioned helper is not a violation;
//! * a seed whose own line carries a valid pragma for the corresponding
//!   rule does not propagate: the annotation vouches for the site, and
//!   callers should not have to re-justify an audited sink;
//! * barrier functions ([`crate::rules::PANIC_FREE_FNS`], the canonical
//!   merge helpers) have the corresponding bit stripped after every
//!   round, so routing through them launders the effect by design.

use crate::graph::{CallGraph, FnId, Resolution};
use crate::lexer::{Lexed, Token, TokenKind};
use crate::rules::{self, NameClassifier, SymbolTable};

/// Bit indices of the effect lattice.
pub mod bits {
    /// `Instant`/`SystemTime`/`.elapsed()` outside the sanctioned crates.
    pub const WALL_CLOCK: u8 = 0;
    /// `thread_rng`/`from_entropy`/`from_rng`/raw `seed_from_u64`.
    pub const AMBIENT_RNG: u8 = 1;
    /// `env::var` / `env::var_os` outside the entry points.
    pub const ENV_READ: u8 = 2;
    /// Observability access (metrics/timings/trace/progress recorders).
    pub const METRICS_WRITE: u8 = 3;
    /// `unwrap`/`expect`/`panic!`-family reachability.
    pub const PANICS: u8 = 4;
    /// Order-observing iteration over hash containers.
    pub const ORDER_ITER: u8 = 5;
    /// `f32`/`f64` `+=` / `.sum::<f32|f64>()` accumulation.
    pub const FLOAT_ACCUM: u8 = 6;
    /// Number of bits in the lattice.
    pub const COUNT: usize = 7;
}

/// A small bitset over the effect lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Effects(pub u16);

impl Effects {
    /// Set one bit.
    pub fn set(&mut self, bit: u8) {
        self.0 |= 1 << bit;
    }

    /// Is one bit set?
    pub fn has(self, bit: u8) -> bool {
        self.0 & (1 << bit) != 0
    }

    /// Bits present in `self` but not in `other`.
    pub fn minus(self, other: Effects) -> Effects {
        Effects(self.0 & !other.0)
    }

    /// Union.
    pub fn union(self, other: Effects) -> Effects {
        Effects(self.0 | other.0)
    }

    /// No bits set?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over the set bit indices.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..bits::COUNT as u8).filter(move |b| self.has(*b))
    }

    /// Human-readable lattice name of one bit.
    pub fn name(bit: u8) -> &'static str {
        match bit {
            bits::WALL_CLOCK => "WallClock",
            bits::AMBIENT_RNG => "AmbientRng",
            bits::ENV_READ => "EnvRead",
            bits::METRICS_WRITE => "MetricsWrite",
            bits::PANICS => "Panics",
            bits::ORDER_ITER => "OrderSensitiveIter",
            _ => "FloatAccumOrder",
        }
    }
}

/// One effect seed found in a function body.
#[derive(Debug)]
pub struct Seed {
    /// Lattice bit.
    pub bit: u8,
    /// 1-based source line.
    pub line: u32,
    /// Token index (for shard-region membership tests).
    pub at: usize,
    /// Chain-terminal description (`Instant::now`, `.unwrap()`, …).
    pub desc: String,
    /// A valid pragma covers this line for the corresponding rule: the
    /// seed is still reported locally but does not propagate.
    pub allowed: bool,
}

/// Why a function carries a bit: its own seed, or the first call edge
/// that introduced it.
#[derive(Debug, Clone)]
pub enum Witness {
    /// Index into the function's own seed list.
    Seed(usize),
    /// Call edge: display label and the callee it came from.
    Call {
        /// Call-site display label.
        label: String,
        /// Callee the bit was inherited from.
        callee: FnId,
    },
}

/// Per-function effects after propagation, with witnesses and raw seeds.
#[derive(Debug)]
pub struct EffectTable {
    /// Fixpoint effects per function (pragma-allowed seeds excluded).
    pub effects: Vec<Effects>,
    /// All seeds per function, including pragma-allowed ones.
    pub seeds: Vec<Vec<Seed>>,
    /// Witness per function per bit, parallel to `effects`.
    pub witness: Vec<Vec<Option<Witness>>>,
    /// Propagation rounds until the fixpoint was reached.
    pub iterations: usize,
}

impl EffectTable {
    /// Reconstruct the call chain that gives `from` the bit, as display
    /// labels ending in the seed description. Empty if `from` lacks it.
    pub fn chain(&self, graph: &CallGraph, from: FnId, bit: u8) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = from;
        let mut hops = 0usize;
        loop {
            match &self.witness[cur][bit as usize] {
                Some(Witness::Seed(idx)) => {
                    out.push(self.seeds[cur][*idx].desc.clone());
                    break;
                }
                Some(Witness::Call { label, callee }) => {
                    out.push(label.clone());
                    cur = *callee;
                }
                None => break,
            }
            hops += 1;
            if hops > graph.fns.len() {
                break; // cycle guard; witnesses are acyclic by construction
            }
        }
        out
    }

    /// Does the barrier list strip `bit` from function `f`? (Used by the
    /// rule passes so own-body seeds of barrier functions are skipped.)
    pub fn barred(&self, graph: &CallGraph, relpaths: &[&str], f: FnId, bit: u8) -> bool {
        barrier(relpaths[graph.fns[f].file], &graph.fns[f]).has(bit)
    }
}

/// Bits stripped from a function after every propagation round.
fn barrier(relpath: &str, f: &crate::graph::FnDef) -> Effects {
    let mut out = Effects::default();
    if rules::CANONICAL_MERGE_FILES.contains(&relpath) {
        out.set(bits::FLOAT_ACCUM);
    }
    let display = f.display();
    if rules::PANIC_FREE_FNS.iter().any(|p| *p == f.name || *p == display) {
        out.set(bits::PANICS);
    }
    out
}

/// Compute seeds and propagate to a fixpoint. `refs` pairs each scanned
/// file's relative path with its lexed tokens; `seed_allowed(file, line,
/// bit)` reports whether a valid pragma covers the seed's line for the
/// bit's rule.
pub(crate) fn compute(
    graph: &CallGraph,
    refs: &[(&str, &Lexed)],
    symbols: &SymbolTable,
    seed_allowed: &dyn Fn(usize, u32, u8) -> bool,
) -> EffectTable {
    let classifiers: Vec<NameClassifier<'_>> =
        refs.iter().map(|(_, l)| NameClassifier::new(symbols, &l.tokens)).collect();

    let n = graph.fns.len();
    let mut effects = vec![Effects::default(); n];
    let mut seeds: Vec<Vec<Seed>> = Vec::with_capacity(n);
    let mut witness: Vec<Vec<Option<Witness>>> = vec![vec![None; bits::COUNT]; n];

    for (id, f) in graph.fns.iter().enumerate() {
        let (rel, lexed) = refs[f.file];
        let mut own = collect_seeds(rel, &lexed.tokens, f, &classifiers[f.file]);
        let bar = barrier(rel, f);
        for k in 0..own.len() {
            own[k].allowed = seed_allowed(f.file, own[k].line, own[k].bit);
            let bit = own[k].bit;
            if !own[k].allowed && !bar.has(bit) && !effects[id].has(bit) {
                effects[id].set(bit);
                witness[id][bit as usize] = Some(Witness::Seed(k));
            }
        }
        seeds.push(own);
    }

    // Fixpoint: union over resolved call edges, barriers re-applied each
    // round. Monotone over a finite lattice, so termination is immediate.
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut changed = false;
        for id in 0..n {
            let bar = barrier(refs[graph.fns[id].file].0, &graph.fns[id]);
            for site in &graph.calls[id] {
                let Resolution::Resolved(cands) = &site.resolution else { continue };
                for &c in cands {
                    let new_bits = effects[c].minus(effects[id]).minus(bar);
                    if new_bits.is_empty() {
                        continue;
                    }
                    for bit in new_bits.iter() {
                        witness[id][bit as usize] =
                            Some(Witness::Call { label: site.label.clone(), callee: c });
                    }
                    effects[id] = effects[id].union(new_bits);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    EffectTable { effects, seeds, witness, iterations }
}

/// Chain-terminal description for an identifier seed: `Ident::next` when
/// the token starts a path, the bare text otherwise.
fn path_desc(tokens: &[Token], i: usize) -> String {
    if tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
        && tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
    {
        format!("{}::{}", tokens[i].text, tokens[i + 2].text)
    } else {
        tokens[i].text.clone()
    }
}

/// Macro names whose invocation can panic (debug_assert* excluded: absent
/// in release, which is what the digest gate runs).
const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Scan one function body for effect seeds.
fn collect_seeds(
    relpath: &str,
    tokens: &[Token],
    f: &crate::graph::FnDef,
    names: &NameClassifier<'_>,
) -> Vec<Seed> {
    let mut out: Vec<Seed> = Vec::new();
    let Some((open, close)) = f.body else { return out };
    let class = crate::graph::classify(relpath);
    let wall_clock_ok = rules::WALL_CLOCK_CRATES.contains(&class.krate.as_str())
        || rules::WALL_CLOCK_FILES.contains(&relpath);
    let env_ok = class.krate == "obs" || rules::ENV_READ_FILES.contains(&relpath);
    let metrics_src = rules::OBS_RECORDING_FILES.contains(&relpath);
    let push = |bit: u8, line: u32, at: usize, desc: String, out: &mut Vec<Seed>| {
        if !out.iter().any(|s| s.bit == bit && s.at == at) {
            out.push(Seed { bit, line, at, desc, allowed: false });
        }
    };

    // Functions defined in the obs recording modules *are* the metrics
    // sink: give them the bit at their own definition so a shard calling
    // `reg.incr(…)` through any binding name is caught.
    if metrics_src {
        push(
            bits::METRICS_WRITE,
            f.line,
            f.sig,
            format!("{} (obs recorder)", f.display()),
            &mut out,
        );
    }

    for i in (open + 1)..close {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident {
            if !wall_clock_ok && (t.text == "Instant" || t.text == "SystemTime") {
                push(bits::WALL_CLOCK, t.line, i, path_desc(tokens, i), &mut out);
            }
            if relpath != rules::RNG_MODULE {
                if rules::AMBIENT_RNG_BANNED.contains(&t.text.as_str()) {
                    push(bits::AMBIENT_RNG, t.line, i, t.text.clone(), &mut out);
                }
                if t.text == "seed_from_u64" {
                    push(bits::AMBIENT_RNG, t.line, i, "seed_from_u64".to_string(), &mut out);
                }
            }
            if !env_ok
                && t.text == "env"
                && tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && tokens
                    .get(i + 2)
                    .is_some_and(|n| n.is_ident("var") || n.is_ident("var_os"))
            {
                push(bits::ENV_READ, tokens[i + 2].line, i + 2, "env::var".to_string(), &mut out);
            }
            if !metrics_src && rules::OBS_TOKENS.contains(&t.text.as_str()) {
                push(bits::METRICS_WRITE, t.line, i, format!("`{}`", t.text), &mut out);
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                push(bits::PANICS, t.line, i, format!("{}!", t.text), &mut out);
            }
        }
        // `.unwrap(` / `.expect(` / `.elapsed(` / order-observing methods.
        if t.is_punct(".")
            && tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident)
            && tokens.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            let m = tokens[i + 1].text.as_str();
            let line = tokens[i + 1].line;
            if m == "unwrap" || m == "expect" {
                push(bits::PANICS, line, i + 1, format!(".{m}()"), &mut out);
            }
            if !wall_clock_ok && m == "elapsed" {
                push(bits::WALL_CLOCK, line, i + 1, ".elapsed()".to_string(), &mut out);
            }
            let receiver = i
                .checked_sub(1)
                .map(|r| &tokens[r])
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.as_str());
            if rules::ORDER_METHODS_ANY_RECEIVER.contains(&m) {
                if !receiver.is_some_and(|r| names.is_btree_only(r)) {
                    push(bits::ORDER_ITER, line, i + 1, format!(".{m}()"), &mut out);
                }
            } else if rules::ORDER_METHODS_KNOWN_RECEIVER.contains(&m)
                && receiver.is_some_and(|r| names.is_hash(r))
            {
                push(bits::ORDER_ITER, line, i + 1, format!(".{m}()"), &mut out);
            }
            // `.sum::<f32|f64>()` — but the pattern above requires `(`
            // right after the ident, so the turbofish form is separate.
        }
        if t.is_punct(".")
            && tokens.get(i + 1).is_some_and(|n| n.is_ident("sum"))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct("::"))
            && tokens
                .get(i + 4)
                .is_some_and(|n| n.is_ident("f32") || n.is_ident("f64"))
        {
            push(
                bits::FLOAT_ACCUM,
                tokens[i + 1].line,
                i + 1,
                format!(".sum::<{}>()", tokens[i + 4].text),
                &mut out,
            );
        }
        // `for … in <hash-typed binding>`.
        if t.is_ident("for") {
            if let Some((line, name)) =
                rules::for_in_hash_target(tokens, i, &|n| names.is_hash(n))
            {
                push(bits::ORDER_ITER, line, i, format!("for … in {name}"), &mut out);
            }
        }
        // Float accumulation: `lhs += …` where `lhs` is exclusively
        // float-declared in scope.
        if t.is_punct("+")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("="))
            && i > 0
            && tokens[i - 1].kind == TokenKind::Ident
            && names.is_float(&tokens[i - 1].text)
        {
            push(
                bits::FLOAT_ACCUM,
                t.line,
                i,
                format!("`{} +=` (f32/f64)", tokens[i - 1].text),
                &mut out,
            );
        }
    }
    out
}
