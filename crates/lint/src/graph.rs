//! Workspace symbol table and call graph, built from lexed token streams.
//!
//! The interprocedural rules (DESIGN.md §6) need to know *what calls what*
//! so effects seeded by the lexical detectors can be propagated
//! transitively: a helper that reads the wall clock and is called from
//! `apply_shard` is a violation even though neither file shows the whole
//! story. Without `syn` the graph is a token-level approximation; its
//! resolution policy is deliberately explicit so coverage is auditable
//! via `--stats`:
//!
//! * free calls `f(...)` resolve to free functions — same file first,
//!   then same crate, then anywhere in the workspace;
//! * `Type::m(...)` and `recv.m(...)` with a known receiver type (from the
//!   per-function variable/parameter table, or `self`) resolve to that
//!   type's inherent and trait-impl methods;
//! * `Trait::m(...)` / `dyn Trait` receivers conservatively merge *every*
//!   `impl Trait for _` method of that name (counted as trait-merged);
//! * method calls on unknown receivers resolve only when exactly one
//!   method of that name exists in the workspace; more than one is
//!   **unresolved** — treated as no-effect but counted, so the gap is
//!   visible in `--stats`;
//! * everything else (std, `vendor/` work-alikes, macros) is **opaque**:
//!   assumed effect-free, never an error.
//!
//! Only product code (`crates/<k>/src`, outside `#[test]`/`#[cfg(test)]`
//! items) is indexed; test-like sections never contribute nodes or edges.

use crate::lexer::{Lexed, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// Where a file sits in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `crates/<k>/src` — product code.
    Src,
    /// `crates/<k>/{tests,examples,benches}` or the `tests/` member.
    TestLike,
}

/// Crate + section of one scanned file.
#[derive(Debug)]
pub struct FileClass {
    /// Crate name (`"tests"` for the integration member).
    pub krate: String,
    /// Product code or test-like.
    pub section: Section,
}

/// Classify a workspace-relative path.
pub fn classify(relpath: &str) -> FileClass {
    let parts: Vec<&str> = relpath.split('/').collect();
    match parts.as_slice() {
        ["crates", k, "src", ..] => FileClass { krate: (*k).to_string(), section: Section::Src },
        ["crates", k, ..] => FileClass { krate: (*k).to_string(), section: Section::TestLike },
        _ => FileClass { krate: "tests".to_string(), section: Section::TestLike },
    }
}

/// Index of the token matching the opener at `open_at` (which must hold
/// `open`), honouring nesting.
pub fn matching(tokens: &[Token], open_at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open_at) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Token-index ranges of items marked `#[test]` / `#[cfg(test)]` (and any
/// `cfg` attribute mentioning `test`, e.g. `cfg(all(test, unix))`). A
/// file-level inner `#![cfg(test)]` (modules included via `mod x;`, like
/// `sim::proptests`) marks the whole file.
pub fn test_item_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    // Inner attributes first: `#![cfg(test)]` anywhere gates the file.
    let mut i = 0usize;
    while i + 3 < tokens.len() {
        if tokens[i].is_punct("#") && tokens[i + 1].is_punct("!") && tokens[i + 2].is_punct("[")
        {
            if let Some(end) = matching(tokens, i + 2, "[", "]") {
                let attr = &tokens[i + 3..end];
                if attr.first().is_some_and(|t| t.is_ident("cfg"))
                    && attr.iter().any(|t| t.is_ident("test"))
                {
                    return vec![(0, tokens.len().saturating_sub(1))];
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }

    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && i + 1 < tokens.len() && tokens[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = matching(tokens, i + 1, "[", "]") else {
            break;
        };
        let attr = &tokens[i + 2..attr_end];
        let is_test_attr = match attr.first() {
            Some(t) if t.is_ident("test") => attr.len() == 1,
            Some(t) if t.is_ident("cfg") => attr.iter().any(|t| t.is_ident("test")),
            _ => false,
        };
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then span the annotated item.
        let mut j = attr_end + 1;
        while j + 1 < tokens.len() && tokens[j].is_punct("#") && tokens[j + 1].is_punct("[") {
            match matching(tokens, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        let mut depth = 0i32;
        let mut end = tokens.len().saturating_sub(1);
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                end = matching(tokens, j, "{", "}").unwrap_or(end);
                break;
            } else if t.is_punct(";") && depth == 0 {
                end = j;
                break;
            }
            j += 1;
        }
        out.push((attr_start, end));
        i = end + 1;
    }
    out
}

/// Resolve the type identifier that follows a declaration `:`: skip
/// `&`/`mut`/`dyn`/`impl`/lifetime noise, then follow the path
/// (`std::collections::HashMap<..>`) to its final segment before any
/// generics.
pub fn type_after_colon(tokens: &[Token], colon: usize) -> Option<&Token> {
    let mut j = colon + 1;
    while tokens.get(j).is_some_and(|t| {
        t.is_punct("&")
            || t.is_ident("mut")
            || t.is_ident("dyn")
            || t.is_ident("impl")
            || t.kind == TokenKind::Lifetime
    }) {
        j += 1;
    }
    if tokens.get(j)?.kind != TokenKind::Ident {
        return None;
    }
    let mut last = j;
    while tokens.get(last + 1).is_some_and(|t| t.is_punct("::"))
        && tokens.get(last + 2).is_some_and(|t| t.kind == TokenKind::Ident)
    {
        last += 2;
    }
    Some(&tokens[last])
}

/// Is the identifier at `i` the start of a `let [mut] name` binding?
pub(crate) fn after_let(tokens: &[Token], i: usize) -> bool {
    match i.checked_sub(1).map(|p| &tokens[p]) {
        Some(p) if p.is_ident("let") => true,
        Some(p) if p.is_ident("mut") => i >= 2 && tokens[i - 2].is_ident("let"),
        _ => false,
    }
}

/// Identifier of a function in the [`CallGraph`] (index into its `fns`).
pub type FnId = usize;

/// One indexed function definition (product code only).
#[derive(Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// `impl` self type for inherent and trait-impl methods.
    pub self_ty: Option<String>,
    /// Trait name for `impl Trait for T` methods and trait defaults.
    pub trait_name: Option<String>,
    /// Index of the defining file in the scan set.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (start of the signature).
    pub sig: usize,
    /// Token range of the body `{ … }` (inclusive braces), if present.
    pub body: Option<(usize, usize)>,
}

impl FnDef {
    /// Display name: `Type::name` for methods, bare `name` otherwise.
    pub fn display(&self) -> String {
        match self.self_ty.as_ref().or(self.trait_name.as_ref()) {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// How one call site resolved against the workspace index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Candidate callees in the workspace index.
    Resolved(Vec<FnId>),
    /// A method name defined more than once with an unknown receiver type:
    /// a genuine coverage gap, counted in [`GraphStats::unresolved_calls`].
    Unresolved,
    /// Not in the index at all (std, `vendor/`, macros): assumed
    /// effect-free.
    Opaque,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// 1-based line of the callee-name token.
    pub line: u32,
    /// Token index of the callee-name token.
    pub at: usize,
    /// Display label for chain reporting (`log_outcome`, `Stopwatch::start`).
    pub label: String,
    /// Resolution against the workspace index.
    pub resolution: Resolution,
}

/// Coverage statistics for the `--stats` view.
#[derive(Debug, Default, Clone)]
pub struct GraphStats {
    /// Files scanned (all sections).
    pub files: usize,
    /// Product-code functions indexed.
    pub functions: usize,
    /// Resolved call edges (site → candidate pairs).
    pub edges: usize,
    /// Call sites that resolved to at least one candidate.
    pub resolved_calls: usize,
    /// Ambiguous method calls treated as no-effect: the audit surface.
    pub unresolved_calls: usize,
    /// Call sites assumed external and effect-free (std, vendor, macros).
    pub opaque_calls: usize,
    /// Resolved sites that needed conservative trait-name merging.
    pub trait_merged_calls: usize,
    /// Effect-propagation rounds until fixpoint (filled by the effects
    /// pass).
    pub fixpoint_iterations: usize,
}

/// The workspace call graph: indexed functions plus, for each, its call
/// sites and their resolutions.
#[derive(Debug)]
pub struct CallGraph {
    /// Indexed product-code functions.
    pub fns: Vec<FnDef>,
    /// Call sites per function, parallel to `fns`.
    pub calls: Vec<Vec<CallSite>>,
    /// Resolution coverage counters.
    pub stats: GraphStats,
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "move", "as", "where", "unsafe",
    "else", "let", "mut", "ref", "dyn", "use", "pub", "crate", "super", "fn", "true", "false",
    "struct", "enum", "union", "trait", "type", "mod", "static", "const", "await", "async",
    "break", "continue", "yield", "box",
];

/// One `impl`/`trait` block: token range of its body plus the resolved
/// context names.
#[derive(Debug)]
struct ItemCtx {
    start: usize,
    end: usize,
    self_ty: Option<String>,
    trait_name: Option<String>,
}

impl CallGraph {
    /// Build the graph over `(workspace-relative path, lexed)` files.
    pub fn build(files: &[(&str, &Lexed)]) -> CallGraph {
        let classes: Vec<FileClass> = files.iter().map(|(rel, _)| classify(rel)).collect();
        let stems: Vec<String> = files
            .iter()
            .map(|(rel, _)| {
                rel.rsplit('/').next().unwrap_or(rel).trim_end_matches(".rs").to_string()
            })
            .collect();

        // Pass 1: collect function definitions with impl/trait context.
        let mut fns: Vec<FnDef> = Vec::new();
        let mut trait_names: BTreeSet<String> = BTreeSet::new();
        for (fi, (_, lexed)) in files.iter().enumerate() {
            if classes[fi].section != Section::Src {
                continue;
            }
            let tokens = &lexed.tokens;
            let test_ranges = test_item_ranges(tokens);
            let in_test = |i: usize| test_ranges.iter().any(|&(s, e)| i >= s && i <= e);
            let ctxs = item_contexts(tokens, &mut trait_names);
            for i in 0..tokens.len() {
                if !tokens[i].is_ident("fn")
                    || !tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                    || in_test(i)
                {
                    continue;
                }
                let (body, _) = fn_body(tokens, i);
                let ctx = ctxs
                    .iter()
                    .filter(|c| c.start <= i && i <= c.end)
                    .min_by_key(|c| c.end - c.start);
                fns.push(FnDef {
                    name: tokens[i + 1].text.clone(),
                    self_ty: ctx.and_then(|c| c.self_ty.clone()),
                    trait_name: ctx.and_then(|c| c.trait_name.clone()),
                    file: fi,
                    line: tokens[i].line,
                    sig: i,
                    body,
                });
            }
        }

        // Pass 2: name indexes.
        let mut free: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_type: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        let mut by_trait: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut type_names: BTreeSet<&str> = BTreeSet::new();
        for (id, f) in fns.iter().enumerate() {
            match (&f.self_ty, &f.trait_name) {
                (None, None) => free.entry(&f.name).or_default().push(id),
                (self_ty, trait_name) => {
                    if let Some(t) = self_ty {
                        by_type.entry((t, &f.name)).or_default().push(id);
                        type_names.insert(t);
                    }
                    if let Some(t) = trait_name {
                        by_trait.entry((t, &f.name)).or_default().push(id);
                        trait_names.insert(t.clone());
                    }
                    by_name.entry(&f.name).or_default().push(id);
                }
            }
        }

        // Pass 3: call extraction + resolution.
        let mut stats = GraphStats { files: files.len(), functions: fns.len(), ..Default::default() };
        let mut calls: Vec<Vec<CallSite>> = Vec::with_capacity(fns.len());
        for f in &fns {
            let mut sites = Vec::new();
            let Some((open, close)) = f.body else {
                calls.push(sites);
                continue;
            };
            let tokens = &files[f.file].1.tokens;
            let vars = var_types(tokens, f.sig, close, f.self_ty.as_deref());
            for i in (open + 1)..close {
                let t = &tokens[i];
                if t.kind != TokenKind::Ident
                    || !tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
                    || NON_CALL_KEYWORDS.contains(&t.text.as_str())
                {
                    continue;
                }
                let prev = i.checked_sub(1).map(|p| &tokens[p]);
                if prev.is_some_and(|p| p.is_ident("fn")) {
                    continue; // nested definition, not a call
                }
                let name = t.text.as_str();
                let (label, resolution) = if prev.is_some_and(|p| p.is_punct(".")) {
                    resolve_method(tokens, i, name, f, &vars, &by_type, &by_trait, &by_name, &trait_names, &fns, &mut stats)
                } else if prev.is_some_and(|p| p.is_punct("::")) {
                    resolve_qualified(tokens, i, name, f, &free, &by_type, &by_trait, &trait_names, &classes, &stems, &fns, &mut stats)
                } else {
                    resolve_free(name, f, &free, &classes, &fns)
                };
                match &resolution {
                    Resolution::Resolved(c) => {
                        stats.resolved_calls += 1;
                        stats.edges += c.len();
                    }
                    Resolution::Unresolved => stats.unresolved_calls += 1,
                    Resolution::Opaque => stats.opaque_calls += 1,
                }
                sites.push(CallSite { line: t.line, at: i, label, resolution });
            }
            calls.push(sites);
        }

        CallGraph { fns, calls, stats }
    }
}

/// Skip a generic-argument list starting at `<` (if present), tolerating
/// `->` inside fn-pointer types.
fn skip_generics(tokens: &[Token], j: &mut usize) {
    if !tokens.get(*j).is_some_and(|t| t.is_punct("<")) {
        return;
    }
    let mut depth = 0i32;
    while *j < tokens.len() {
        let t = &tokens[*j];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth == 0 {
                *j += 1;
                return;
            }
        } else if t.is_punct("-") && tokens.get(*j + 1).is_some_and(|n| n.is_punct(">")) {
            *j += 1;
        }
        *j += 1;
    }
}

/// Read a type/trait path at `*j`, returning its final segment and
/// advancing past the path and any generic arguments.
fn read_path_name(tokens: &[Token], j: &mut usize) -> Option<String> {
    while tokens.get(*j).is_some_and(|t| {
        t.is_punct("&") || t.is_ident("mut") || t.is_ident("dyn") || t.kind == TokenKind::Lifetime
    }) {
        *j += 1;
    }
    if tokens.get(*j)?.kind != TokenKind::Ident {
        return None;
    }
    let mut last = tokens[*j].text.clone();
    *j += 1;
    while tokens.get(*j).is_some_and(|t| t.is_punct("::"))
        && tokens.get(*j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
    {
        last = tokens[*j + 1].text.clone();
        *j += 2;
    }
    skip_generics(tokens, j);
    Some(last)
}

/// Parse `impl`/`trait` block contexts; trait declarations also register
/// their names.
fn item_contexts(tokens: &[Token], trait_names: &mut BTreeSet<String>) -> Vec<ItemCtx> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        let is_impl = t.is_ident("impl");
        let is_trait = t.is_ident("trait")
            && tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident);
        if !is_impl && !is_trait {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let (self_ty, trait_name);
        if is_trait {
            let name = tokens[i + 1].text.clone();
            trait_names.insert(name.clone());
            self_ty = None;
            trait_name = Some(name);
            j = i + 2;
        } else {
            skip_generics(tokens, &mut j);
            let first = read_path_name(tokens, &mut j);
            if tokens.get(j).is_some_and(|t| t.is_ident("for")) {
                j += 1;
                let second = read_path_name(tokens, &mut j);
                self_ty = second;
                trait_name = first;
            } else {
                self_ty = first;
                trait_name = None;
            }
        }
        // Find the body `{` at bracket depth 0 (where-clauses carry
        // parens/brackets but no braces); `;` means no body.
        let mut depth = 0i32;
        let mut advanced = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                if let Some(end) = matching(tokens, j, "{", "}") {
                    out.push(ItemCtx { start: j, end, self_ty, trait_name });
                }
                i = j + 1;
                advanced = true;
                break;
            } else if t.is_punct(";") && depth == 0 {
                i = j + 1;
                advanced = true;
                break;
            }
            j += 1;
        }
        if !advanced {
            break;
        }
    }
    out
}

/// Body token range of the `fn` at `fn_at`, or `None` for a bodyless
/// signature. Also returns the token index just past the item.
fn fn_body(tokens: &[Token], fn_at: usize) -> (Option<(usize, usize)>, usize) {
    let mut depth = 0i32;
    let mut j = fn_at + 2;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct("{") && depth == 0 {
            return match matching(tokens, j, "{", "}") {
                Some(end) => (Some((j, end)), end + 1),
                None => (None, tokens.len()),
            };
        } else if t.is_punct(";") && depth == 0 {
            return (None, j + 1);
        }
        j += 1;
    }
    (None, tokens.len())
}

/// Per-function variable → type table: `name: Type` declarations
/// (parameters and annotated `let`s), `name = Type::ctor(…)` / `name =
/// Type { … }` bindings, and `self` from the impl context. Only concrete
/// CamelCase types are recorded.
fn var_types(
    tokens: &[Token],
    sig: usize,
    body_end: usize,
    self_ty: Option<&str>,
) -> BTreeMap<String, String> {
    let mut vars = BTreeMap::new();
    if let Some(t) = self_ty {
        vars.insert("self".to_string(), t.to_string());
    }
    for i in sig..=body_end.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else { break };
        if next.is_punct(":") {
            if let Some(ty) = type_after_colon(tokens, i + 1) {
                if ty.text.starts_with(char::is_uppercase) {
                    vars.insert(t.text.clone(), ty.text.clone());
                }
            }
        } else if next.is_punct("=") && !tokens.get(i + 2).is_some_and(|n| n.is_punct("=")) {
            // `x = [mods::]Type::ctor(…)` or `x = Type { … }`.
            let mut j = i + 2;
            while tokens.get(j).is_some_and(|t2| {
                t2.kind == TokenKind::Ident && t2.text.starts_with(char::is_lowercase)
            }) && tokens.get(j + 1).is_some_and(|p| p.is_punct("::"))
            {
                j += 2;
            }
            if let Some(ty) = tokens.get(j) {
                if ty.kind == TokenKind::Ident
                    && ty.text.starts_with(char::is_uppercase)
                    && tokens.get(j + 1).is_some_and(|n| n.is_punct("::") || n.is_punct("{"))
                {
                    vars.insert(t.text.clone(), ty.text.clone());
                }
            }
        }
    }
    vars
}

/// Resolve a method call site on a known type name.
fn on_type(
    ty: &str,
    name: &str,
    by_type: &BTreeMap<(&str, &str), Vec<FnId>>,
    by_trait: &BTreeMap<(&str, &str), Vec<FnId>>,
    trait_names: &BTreeSet<String>,
    stats: &mut GraphStats,
) -> Resolution {
    if let Some(c) = by_type.get(&(ty, name)) {
        return Resolution::Resolved(c.clone());
    }
    if trait_names.contains(ty) {
        return match by_trait.get(&(ty, name)) {
            Some(c) => {
                stats.trait_merged_calls += 1;
                Resolution::Resolved(c.clone())
            }
            None => Resolution::Opaque,
        };
    }
    Resolution::Opaque
}

/// Unknown-receiver fallback: resolve only when exactly one method of
/// this name exists anywhere in the workspace.
fn by_name_fallback(
    name: &str,
    by_name: &BTreeMap<&str, Vec<FnId>>,
    fns: &[FnDef],
) -> (String, Resolution) {
    match by_name.get(name) {
        None => (name.to_string(), Resolution::Opaque),
        Some(c) if c.len() == 1 => (fns[c[0]].display(), Resolution::Resolved(c.clone())),
        Some(_) => (name.to_string(), Resolution::Unresolved),
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve_method(
    tokens: &[Token],
    i: usize,
    name: &str,
    f: &FnDef,
    vars: &BTreeMap<String, String>,
    by_type: &BTreeMap<(&str, &str), Vec<FnId>>,
    by_trait: &BTreeMap<(&str, &str), Vec<FnId>>,
    by_name: &BTreeMap<&str, Vec<FnId>>,
    trait_names: &BTreeSet<String>,
    fns: &[FnDef],
    stats: &mut GraphStats,
) -> (String, Resolution) {
    let receiver = i
        .checked_sub(2)
        .map(|r| &tokens[r])
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str());
    let ty = receiver.and_then(|r| {
        if r == "self" { f.self_ty.as_deref() } else { vars.get(r).map(String::as_str) }
    });
    match ty {
        Some(t) => (format!("{t}::{name}"), on_type(t, name, by_type, by_trait, trait_names, stats)),
        None => by_name_fallback(name, by_name, fns),
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve_qualified(
    tokens: &[Token],
    i: usize,
    name: &str,
    f: &FnDef,
    free: &BTreeMap<&str, Vec<FnId>>,
    by_type: &BTreeMap<(&str, &str), Vec<FnId>>,
    by_trait: &BTreeMap<(&str, &str), Vec<FnId>>,
    trait_names: &BTreeSet<String>,
    classes: &[FileClass],
    stems: &[String],
    fns: &[FnDef],
    stats: &mut GraphStats,
) -> (String, Resolution) {
    let qualifier = i
        .checked_sub(2)
        .map(|q| &tokens[q])
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str());
    let Some(q) = qualifier else {
        // `<T as Trait>::m(...)`, `Vec::<u8>::new(...)` — out of scope.
        return (name.to_string(), Resolution::Opaque);
    };
    if q == "Self" {
        return match &f.self_ty {
            Some(t) => {
                (format!("{t}::{name}"), on_type(t, name, by_type, by_trait, trait_names, stats))
            }
            None => (name.to_string(), Resolution::Opaque),
        };
    }
    if q == "self" || q == "crate" || q == "super" {
        return resolve_free(name, f, free, classes, fns);
    }
    if q.starts_with(char::is_uppercase) {
        return (format!("{q}::{name}"), on_type(q, name, by_type, by_trait, trait_names, stats));
    }
    // Module-qualified free call: resolve only when the qualifier names
    // the candidate's defining file or crate — `mem::take`-style std
    // paths must not link to same-named workspace functions.
    match free.get(name) {
        None => (format!("{q}::{name}"), Resolution::Opaque),
        Some(cands) => {
            let picked: Vec<FnId> = cands
                .iter()
                .copied()
                .filter(|&id| {
                    let krate = classes[fns[id].file].krate.as_str();
                    stems[fns[id].file] == q
                        || krate == q
                        || q.strip_prefix("footsteps_") == Some(krate)
                })
                .collect();
            if picked.is_empty() {
                (format!("{q}::{name}"), Resolution::Opaque)
            } else {
                (format!("{q}::{name}"), Resolution::Resolved(picked))
            }
        }
    }
}

fn resolve_free(
    name: &str,
    f: &FnDef,
    free: &BTreeMap<&str, Vec<FnId>>,
    classes: &[FileClass],
    fns: &[FnDef],
) -> (String, Resolution) {
    match free.get(name) {
        None => (name.to_string(), Resolution::Opaque),
        Some(cands) => {
            let same_file: Vec<FnId> =
                cands.iter().copied().filter(|&id| fns[id].file == f.file).collect();
            let picked = if !same_file.is_empty() {
                same_file
            } else {
                let krate = classes[f.file].krate.as_str();
                let same_crate: Vec<FnId> = cands
                    .iter()
                    .copied()
                    .filter(|&id| classes[fns[id].file].krate == krate)
                    .collect();
                if !same_crate.is_empty() { same_crate } else { cands.clone() }
            };
            (name.to_string(), Resolution::Resolved(picked))
        }
    }
}
