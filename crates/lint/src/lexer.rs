//! A minimal comment- and string-aware lexer for Rust source.
//!
//! The rules in this crate are *token-level* heuristics: they must never
//! fire on text inside string literals, comments, or doc comments (the sim
//! crate's module docs legitimately mention `thread_rng`, for instance).
//! `syn` would give us real syntax trees, but the vendored registry is
//! offline and the lint has to stay dependency-free, so this module
//! implements the small slice of Rust lexing the rules need:
//!
//! * identifiers, numbers, lifetimes, single/compound punctuation
//!   (only `::` is fused; everything else is one char per token);
//! * string literals: `"…"`, `r"…"`, `r#"…"#` (any number of `#`),
//!   byte/C variants (`b"…"`, `br#"…"#`, `c"…"`, `cr"…"`), with escapes;
//! * char and byte-char literals, disambiguated from lifetimes;
//! * line comments (kept — pragmas live there) and nested block comments.
//!
//! Every token and comment carries its 1-based source line so findings and
//! pragmas can be matched up.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal.
    Number,
    /// String literal (any flavour).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation; `::` is a single token, everything else one char.
    Punct,
}

/// One source token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Raw text (for `Str`, the quoted content is not unescaped).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// One comment (line or block). Pragmas are recognised in line comments.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after the `//` (line) or between the delimiters (block).
    pub text: String,
    /// 1-based line of the comment's start.
    pub line: u32,
    /// True when only whitespace precedes the comment on its line. Own-line
    /// pragmas cover the *next* source line; trailing pragmas cover their
    /// own.
    pub own_line: bool,
    /// True for `//` comments (the only kind pragmas may use).
    pub is_line: bool,
}

/// The output of [`lex`]: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens.
    pub tokens: Vec<Token>,
    /// All comments.
    pub comments: Vec<Comment>,
}

/// Lex `source` into tokens and comments. Invalid input never panics: the
/// lexer degrades to single-char punct tokens on anything it does not
/// recognise, which is safe for the token-pattern rules built on top.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Whether a code token has appeared on the current line (for
    // `Comment::own_line`).
    let mut line_has_code = false;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            match chars[i + 1] {
                '/' => {
                    let start = i + 2;
                    let mut j = start;
                    while j < chars.len() && chars[j] != '\n' {
                        j += 1;
                    }
                    out.comments.push(Comment {
                        text: chars[start..j].iter().collect(),
                        line,
                        own_line: !line_has_code,
                        is_line: true,
                    });
                    i = j;
                    continue;
                }
                '*' => {
                    let start_line = line;
                    let own = !line_has_code;
                    let mut depth = 1u32;
                    let mut j = i + 2;
                    let text_start = j;
                    while j < chars.len() && depth > 0 {
                        if chars[j] == '\n' {
                            line += 1;
                            line_has_code = false;
                        } else if chars[j] == '/' && j + 1 < chars.len() && chars[j + 1] == '*' {
                            depth += 1;
                            j += 1;
                        } else if chars[j] == '*' && j + 1 < chars.len() && chars[j + 1] == '/' {
                            depth -= 1;
                            j += 1;
                        }
                        j += 1;
                    }
                    let text_end = j.saturating_sub(2).max(text_start);
                    out.comments.push(Comment {
                        text: chars[text_start..text_end].iter().collect(),
                        line: start_line,
                        own_line: own,
                        is_line: false,
                    });
                    i = j;
                    continue;
                }
                _ => {}
            }
        }
        // Strings (plain; raw/byte prefixes are handled from the ident path).
        if c == '"' {
            i = consume_string(&chars, i, &mut line, &mut out, TokenKind::Str);
            line_has_code = true;
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            match next {
                Some('\\') => {
                    // Escaped char literal: '\n', '\'', '\u{…}'.
                    let mut j = i + 2;
                    if j < chars.len() {
                        j += 1; // the escaped char (or 'u' of \u{…})
                    }
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: chars[i..(j + 1).min(chars.len())].iter().collect(),
                        line,
                    });
                    i = (j + 1).min(chars.len());
                    line_has_code = true;
                    continue;
                }
                // Any single char closed by a quote — 'a', '"', '(' — is a
                // char literal; checked before the lifetime case so that
                // 'a' does not lex as a lifetime.
                Some(_) if chars.get(i + 2) == Some(&'\'') => {
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        text: chars[i..=i + 2].iter().collect(),
                        line,
                    });
                    i += 3;
                    line_has_code = true;
                    continue;
                }
                Some(n) if n == '_' || n.is_alphanumeric() => {
                    // A lifetime ('a, 'static).
                    let mut j = i + 2;
                    while j < chars.len() && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: chars[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                    line_has_code = true;
                    continue;
                }
                _ => {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: "'".to_string(),
                        line,
                    });
                    i += 1;
                    line_has_code = true;
                    continue;
                }
            }
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len() {
                let d = chars[j];
                if d == '_' || d.is_ascii_alphanumeric() {
                    j += 1;
                } else if d == '.'
                    && j + 1 < chars.len()
                    && chars[j + 1].is_ascii_digit()
                {
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            line_has_code = true;
            continue;
        }
        // Identifiers (and raw/byte string prefixes).
        if c == '_' || c.is_alphabetic() {
            let mut j = i + 1;
            while j < chars.len() && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            let next = chars.get(j).copied();
            let raw_prefix = matches!(text.as_str(), "r" | "br" | "cr");
            let plain_prefix = matches!(text.as_str(), "b" | "c");
            if raw_prefix && matches!(next, Some('"') | Some('#')) {
                i = consume_raw_string(&chars, j, &mut line, &mut out);
                line_has_code = true;
                continue;
            }
            if plain_prefix && next == Some('"') {
                i = consume_string(&chars, j, &mut line, &mut out, TokenKind::Str);
                line_has_code = true;
                continue;
            }
            if text == "b" && next == Some('\'') {
                // Byte char literal b'x' / b'\n'.
                let mut k = j + 1;
                if chars.get(k) == Some(&'\\') {
                    k += 2;
                }
                while k < chars.len() && chars[k] != '\'' {
                    k += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: chars[i..(k + 1).min(chars.len())].iter().collect(),
                    line,
                });
                i = (k + 1).min(chars.len());
                line_has_code = true;
                continue;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
            });
            i = j;
            line_has_code = true;
            continue;
        }
        // `::` is fused; all other punctuation is one char per token.
        if c == ':' && chars.get(i + 1) == Some(&':') {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: "::".to_string(),
                line,
            });
            i += 2;
            line_has_code = true;
            continue;
        }
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
        line_has_code = true;
    }
    out
}

/// Consume a `"…"` string starting at the quote at `chars[at]`; returns the
/// index just past the closing quote.
fn consume_string(
    chars: &[char],
    at: usize,
    line: &mut u32,
    out: &mut Lexed,
    kind: TokenKind,
) -> usize {
    let start_line = *line;
    debug_assert_eq!(chars[at], '"');
    let mut j = at + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => {
                j += 1;
                break;
            }
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    out.tokens.push(Token {
        kind,
        text: chars[at..j.min(chars.len())].iter().collect(),
        line: start_line,
    });
    j.min(chars.len())
}

/// Consume a raw string whose `#`s/quote start at `chars[at]` (the prefix
/// ident has already been consumed); returns the index past the terminator.
fn consume_raw_string(chars: &[char], at: usize, line: &mut u32, out: &mut Lexed) -> usize {
    let start_line = *line;
    let mut j = at;
    let mut hashes = 0usize;
    while j < chars.len() && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        // Not actually a raw string (e.g. `r#foo` raw identifier); emit the
        // `#`s as punctuation and continue.
        for _ in 0..hashes {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: "#".to_string(),
                line: *line,
            });
        }
        return j;
    }
    j += 1;
    let content_start = j;
    'outer: while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let mut k = 0usize;
            while k < hashes {
                if chars.get(j + 1 + k) != Some(&'#') {
                    j += 1;
                    continue 'outer;
                }
                k += 1;
            }
            let end = j + 1 + hashes;
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: chars[content_start..j].iter().collect(),
                line: start_line,
            });
            return end;
        }
        j += 1;
    }
    out.tokens.push(Token {
        kind: TokenKind::Str,
        text: chars[content_start..j].iter().collect(),
        line: start_line,
    });
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // thread_rng in a comment
            /* SystemTime in /* a nested */ block */
            let x = "thread_rng"; // trailing
            let y = r#"SystemTime"#;
            let z = b"unsafe";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn line_numbers_and_own_line_flags() {
        let src = "let a = 1;\n  // own-line\nlet b = 2; // trailing\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].own_line);
        assert_eq!(lexed.comments[1].line, 3);
        assert!(!lexed.comments[1].own_line);
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn double_colon_is_one_token() {
        let lexed = lex("std::env::var(\"X\")");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["std", "::", "env", "::", "var", "(", "\"X\"", ")"]);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let lexed = lex(r#"let s = "a\"b"; let t = 1;"#);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("t")));
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
    }
}
