//! footsteps-lint: the workspace's determinism & safety lint.
//!
//! The reproduction's core contract — byte-identical results for any
//! `FOOTSTEPS_THREADS`, golden digest `0xce8aeb34fb9fe096` — rests on
//! invariants no compiler checks: no order-observing iteration over hash
//! containers in digest code, wall-clock and environment reads confined to
//! the observability/config entry points, every RNG stream derived through
//! `sim::rng`, no metrics recording inside the parallel decision phase,
//! and no `unsafe`. This crate machine-checks those invariants on every
//! CI run (DESIGN.md §6 documents the rules and the pragma grammar).
//!
//! Exceptions are claimed *in source*, with a mandatory reason:
//!
//! ```text
//! // footsteps-lint: allow(nondet-iter) — feeds an order-insensitive sum
//! ```
//!
//! The library entry points ([`lint_workspace`], [`lint_files`]) are what
//! both the CI binary and the crate's own integration tests use, so the
//! gate exercised in CI is the same code path the tests pin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod walker;

pub use rules::{Finding, PragmaStatus, Rule, SymbolTable};

use std::io;
use std::path::Path;

/// Lint a set of in-memory files (`(workspace-relative path, source)`).
///
/// Two passes: the first builds the workspace-global table of hash/btree
/// typed names over *all* files, the second checks each file against it —
/// so a `HashMap` field declared in `sim` and iterated from `aas` is still
/// caught.
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    let mut symbols = SymbolTable::default();
    for (_, source) in files {
        symbols.collect(&lexer::lex(source));
    }
    let mut findings = Vec::new();
    for (relpath, source) in files {
        findings.extend(rules::check_file(relpath, source, &symbols));
    }
    findings
}

/// Lint the workspace rooted at `root`. This is the entry point the CI
/// binary runs and the meta integration test asserts on.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for (rel, abs) in walker::workspace_files(root)? {
        files.push((rel, std::fs::read_to_string(&abs)?));
    }
    Ok(lint_files(&files))
}

/// Count the findings that fail the build.
pub fn violation_count(findings: &[Finding]) -> usize {
    findings.iter().filter(|f| f.is_violation()).count()
}
