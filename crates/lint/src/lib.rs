//! footsteps-lint: the workspace's determinism & safety lint.
//!
//! The reproduction's core contract — byte-identical results for any
//! `FOOTSTEPS_THREADS`, golden digest `0xce8aeb34fb9fe096` — rests on
//! invariants no compiler checks: no order-observing iteration over hash
//! containers in digest code, wall-clock and environment reads confined to
//! the observability/config entry points, every RNG stream derived through
//! `sim::rng`, no metrics recording inside the parallel decision phase,
//! and no `unsafe`. This crate machine-checks those invariants on every
//! CI run (DESIGN.md §6 documents the rules and the pragma grammar).
//!
//! The analysis is interprocedural: a workspace call graph is extracted
//! from the lexed token streams ([`graph`]), effect bits are seeded by the
//! lexical detectors and propagated to a fixpoint ([`effects`]), and the
//! shard deny scopes flag *transitive* reach with full call chains
//! (`apply_shard → log_outcome → Instant::now`). The checkpoint resume
//! format is pinned structurally via `lint-schema.lock` ([`schema`]).
//!
//! Exceptions are claimed *in source*, with a mandatory reason:
//!
//! ```text
//! // footsteps-lint: allow(nondet-iter) — feeds an order-insensitive sum
//! ```
//!
//! The library entry points ([`analyze_workspace`], [`analyze_files`]) are
//! what both the CI binary and the crate's own integration tests use, so
//! the gate exercised in CI is the same code path the tests pin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod effects;
pub mod graph;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod schema;
pub mod walker;

pub use graph::GraphStats;
pub use rules::{Finding, PragmaStatus, Rule, RuleDoc, SymbolTable, EXPLANATIONS};
pub use schema::LockState;

use lexer::Lexed;
use std::io;
use std::path::Path;

/// A full lint run: findings plus call-graph coverage statistics.
#[derive(Debug)]
pub struct Analysis {
    /// All findings (allowed ones included, for auditability).
    pub findings: Vec<Finding>,
    /// Resolution coverage for the `--stats` view.
    pub stats: GraphStats,
}

/// Analyze a set of in-memory files (`(workspace-relative path, source)`).
///
/// The pipeline: lex every file once; build the workspace symbol table and
/// call graph; collect pragmas; seed and propagate the effect lattice
/// (seeds on validly-pragma'd lines do not propagate); then per file merge
/// lexical matches, transitive graph matches, and checkpoint-schema
/// findings, and resolve pragmas against the lot.
pub fn analyze_files(files: &[(String, String)], lock: &LockState) -> Analysis {
    let lexed: Vec<Lexed> = files.iter().map(|(_, s)| lexer::lex(s)).collect();
    let refs: Vec<(&str, &Lexed)> =
        files.iter().zip(&lexed).map(|((rel, _), l)| (rel.as_str(), l)).collect();

    let mut symbols = SymbolTable::default();
    for l in &lexed {
        symbols.collect(l);
    }
    let call_graph = graph::CallGraph::build(&refs);
    let pragmas: Vec<Vec<pragma::Pragma>> =
        lexed.iter().map(|l| pragma::collect(&l.comments)).collect();

    // A seed on a line covered by a valid, reasoned pragma for the seed's
    // rule is vouched-for at the definition and does not propagate to
    // callers. Chain-qualified (`via`) pragmas never match seeds — they
    // target transitive findings at the shard root.
    let seed_allowed = |file: usize, line: u32, bit: u8| -> bool {
        let rule = rules::seed_rule(bit);
        pragmas[file].iter().any(|p| {
            p.covers == line
                && p.error.is_none()
                && p.reason.is_some()
                && p.rules.iter().any(|s| s.rule == rule.name() && s.via.is_none())
        })
    };
    let table = effects::compute(&call_graph, &refs, &symbols, &seed_allowed);

    let mut per_file: Vec<Vec<rules::RawMatch>> = files.iter().map(|_| Vec::new()).collect();
    for (fi, (rel, l)) in refs.iter().enumerate() {
        per_file[fi] = rules::lexical_matches(rel, l, &symbols);
    }
    for (fi, m) in rules::graph_matches(&call_graph, &table, &refs) {
        per_file[fi].push(m);
    }
    for (fi, m) in schema::check(&refs, lock) {
        per_file[fi].push(m);
    }

    let mut findings = Vec::new();
    for (fi, raw) in per_file.into_iter().enumerate() {
        findings.extend(rules::resolve_pragmas(&files[fi].0, &files[fi].1, &pragmas[fi], raw));
    }

    let mut stats = call_graph.stats.clone();
    stats.fixpoint_iterations = table.iterations;
    Analysis { findings, stats }
}

/// Analyze the workspace rooted at `root`, including the committed
/// `lint-schema.lock` (its absence is itself a finding once a checkpoint
/// envelope exists). This is the entry point the CI binary runs and the
/// meta integration test asserts on.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let files = read_workspace(root)?;
    let lock = match std::fs::read_to_string(root.join(schema::LOCK_FILE)) {
        Ok(text) => LockState::Present(text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => LockState::Absent,
        Err(e) => return Err(e),
    };
    Ok(analyze_files(&files, &lock))
}

/// Lint a set of in-memory files with schema checking disabled
/// (compatibility wrapper used by the fixture corpus).
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    analyze_files(files, &LockState::Skip).findings
}

/// Lint the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(analyze_workspace(root)?.findings)
}

/// Render the current `lint-schema.lock` contents for the workspace at
/// `root`, or `None` when no checkpoint envelope is in the scan set.
pub fn schema_lock_contents(root: &Path) -> io::Result<Option<String>> {
    let files = read_workspace(root)?;
    let lexed: Vec<Lexed> = files.iter().map(|(_, s)| lexer::lex(s)).collect();
    let refs: Vec<(&str, &Lexed)> =
        files.iter().zip(&lexed).map(|((rel, _), l)| (rel.as_str(), l)).collect();
    Ok(schema::snapshot(&refs).map(|snap| schema::render_lock(&snap)))
}

fn read_workspace(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for (rel, abs) in walker::workspace_files(root)? {
        files.push((rel, std::fs::read_to_string(&abs)?));
    }
    Ok(files)
}

/// Count the findings that fail the build.
pub fn violation_count(findings: &[Finding]) -> usize {
    findings.iter().filter(|f| f.is_violation()).count()
}
