//! The `footsteps-lint` CI gate binary.
//!
//! ```text
//! footsteps-lint [--root <DIR>] [--json] [--json-out <PATH>] [--quiet]
//!                [--stats] [--explain <rule>] [--schema-check] [--schema-write]
//! ```
//!
//! * `--root <DIR>`    workspace root (default: auto-detected from the
//!   current directory by walking up to a `[workspace]` manifest);
//! * `--json`          print the machine-readable findings to stdout;
//! * `--json-out <P>`  also write the JSON findings to a file (CI points
//!   this at `/tmp`, next to the perf artifact);
//! * `--quiet`         suppress the human-readable report;
//! * `--stats`         print call-graph coverage (functions indexed, call
//!   edges, unresolved/opaque/trait-merged counts, fixpoint iterations);
//! * `--explain <r>`   print one rule's rationale, scope, and pragma
//!   example (the same table DESIGN.md §6 is written from), then exit;
//! * `--schema-check`  gate only on `checkpoint-schema`: exit 1 iff the
//!   committed `lint-schema.lock` is stale (CI freshness gate);
//! * `--schema-write`  regenerate `lint-schema.lock` from the current
//!   checkpoint envelope and exit.
//!
//! Exit status: `0` when the workspace is clean (pragma-allowed findings
//! are clean), `1` on any violation, `2` on usage or I/O errors.

#![forbid(unsafe_code)]

use footsteps_lint::{analyze_workspace, report, violation_count, Rule, EXPLANATIONS};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut stats = false;
    let mut explain: Option<String> = None;
    let mut schema_check = false;
    let mut schema_write = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--json-out" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage("--json-out needs a path"),
            },
            "--quiet" => quiet = true,
            "--stats" => stats = true,
            "--explain" => match args.next() {
                Some(r) => explain = Some(r),
                None => return usage("--explain needs a rule name"),
            },
            "--schema-check" => schema_check = true,
            "--schema-write" => schema_write = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(rule) = explain {
        return explain_rule(&rule);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("footsteps-lint: cannot read cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match footsteps_lint::walker::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("footsteps-lint: no [workspace] manifest above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if schema_write {
        return match footsteps_lint::schema_lock_contents(&root) {
            Ok(Some(text)) => {
                let path = root.join(footsteps_lint::schema::LOCK_FILE);
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("footsteps-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                println!("footsteps-lint: wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Ok(None) => {
                eprintln!(
                    "footsteps-lint: no checkpoint envelope ({}) in the scan set",
                    footsteps_lint::schema::CHECKPOINT_FILE
                );
                ExitCode::from(2)
            }
            Err(e) => {
                eprintln!("footsteps-lint: scan failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("footsteps-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if schema_check {
        let drift: Vec<_> = analysis
            .findings
            .iter()
            .filter(|f| f.rule == Rule::CheckpointSchema && f.is_violation())
            .cloned()
            .collect();
        if !quiet {
            if drift.is_empty() {
                println!("footsteps-lint: lint-schema.lock is fresh");
            } else {
                print!("{}", report::render_text(&drift));
            }
        }
        return if drift.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    let findings = analysis.findings;
    let json_text = if json || json_out.is_some() {
        Some(report::render_json(&findings, Some(&analysis.stats)))
    } else {
        None
    };
    if let (Some(path), Some(text)) = (&json_out, &json_text) {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("footsteps-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", json_text.as_deref().unwrap_or(""));
    }
    if !quiet && !json {
        print!("{}", report::render_text(&findings));
    }
    if stats && !json {
        print!("{}", report::render_stats(&analysis.stats));
    }

    if violation_count(&findings) == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn explain_rule(name: &str) -> ExitCode {
    match EXPLANATIONS.iter().find(|d| d.rule.name() == name) {
        Some(doc) => {
            println!("{}", doc.rule.name());
            println!("  rationale: {}", doc.rationale);
            println!("  scope:     {}", doc.scope);
            println!("  pragma:    {}", doc.pragma);
            ExitCode::SUCCESS
        }
        None => {
            let names: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
            eprintln!(
                "footsteps-lint: unknown rule `{name}`; known rules: {}",
                names.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("footsteps-lint: {err}");
    eprintln!(
        "usage: footsteps-lint [--root <DIR>] [--json] [--json-out <PATH>] [--quiet] \
         [--stats] [--explain <rule>] [--schema-check] [--schema-write]"
    );
    ExitCode::from(2)
}
