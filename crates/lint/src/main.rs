//! The `footsteps-lint` CI gate binary.
//!
//! ```text
//! footsteps-lint [--root <DIR>] [--json] [--json-out <PATH>] [--quiet]
//! ```
//!
//! * `--root <DIR>`    workspace root (default: auto-detected from the
//!   current directory by walking up to a `[workspace]` manifest);
//! * `--json`          print the machine-readable findings to stdout;
//! * `--json-out <P>`  also write the JSON findings to a file (CI points
//!   this at `/tmp`, next to the perf artifact);
//! * `--quiet`         suppress the human-readable report.
//!
//! Exit status: `0` when the workspace is clean (pragma-allowed findings
//! are clean), `1` on any violation, `2` on usage or I/O errors.

#![forbid(unsafe_code)]

use footsteps_lint::{lint_workspace, report, violation_count};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--json-out" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage("--json-out needs a path"),
            },
            "--quiet" => quiet = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("footsteps-lint: cannot read cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match footsteps_lint::walker::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("footsteps-lint: no [workspace] manifest above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("footsteps-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let json_text = if json || json_out.is_some() {
        Some(report::render_json(&findings))
    } else {
        None
    };
    if let (Some(path), Some(text)) = (&json_out, &json_text) {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("footsteps-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", json_text.as_deref().unwrap_or(""));
    }
    if !quiet && !json {
        print!("{}", report::render_text(&findings));
    }

    if violation_count(&findings) == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("footsteps-lint: {err}");
    eprintln!("usage: footsteps-lint [--root <DIR>] [--json] [--json-out <PATH>] [--quiet]");
    ExitCode::from(2)
}
