//! The `footsteps-lint` allow-pragma: grammar, parsing, and matching.
//!
//! Grammar (line comments only):
//!
//! ```text
//! // footsteps-lint: allow(<rule>[ via <fn>][, <rule>[ via <fn>]]*) — <reason>
//! ```
//!
//! * `<rule>` is one of the rule names in [`crate::rules::Rule::ALL`];
//! * the optional `via <fn>` qualifier makes the pragma chain-aware: it
//!   only suppresses transitive findings whose call chain passes through
//!   `<fn>` (matched against bare names and `Type::name` displays), so
//!   allowing one audited helper does not blanket-waive every effect the
//!   shard path might later grow;
//! * the reason separator may be an em/en dash, `--`, `-`, or `:`;
//! * `<reason>` is mandatory, non-empty prose: the pragma is the in-source,
//!   re-checkable replacement for out-of-band audit notes, so a bare
//!   `allow(...)` with no justification is itself a finding;
//! * a pragma trailing code covers findings on its own line; a pragma on a
//!   line of its own covers findings on the next line (for multi-line
//!   method chains, put it directly above the offending line).
//!
//! Unknown rule names, missing reasons, and pragmas that suppress nothing
//! are all reported as `pragma` findings — stale annotations must not
//! accumulate.

use crate::lexer::Comment;

/// The marker that introduces a pragma inside a line comment.
pub const MARKER: &str = "footsteps-lint:";

/// One `<rule>[ via <fn>]` entry inside `allow(...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpec {
    /// The rule name, as written.
    pub rule: String,
    /// Optional chain qualifier: only suppress findings whose call chain
    /// passes through this function.
    pub via: Option<String>,
}

/// A parsed pragma, valid or not.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line of the comment.
    pub line: u32,
    /// Lines this pragma covers (its own, or the next for own-line pragmas).
    pub covers: u32,
    /// Rule specs inside `allow(...)`, as written.
    pub rules: Vec<RuleSpec>,
    /// The reason text, if present and non-empty.
    pub reason: Option<String>,
    /// Parse problem, if any (a malformed pragma suppresses nothing).
    pub error: Option<String>,
}

/// Extract pragmas from a file's comments. Non-pragma comments are ignored.
pub fn collect(comments: &[Comment]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        let trimmed = c.text.trim();
        let Some(rest) = trimmed.strip_prefix(MARKER) else {
            continue;
        };
        let covers = if c.own_line { c.line + 1 } else { c.line };
        if !c.is_line {
            out.push(Pragma {
                line: c.line,
                covers,
                rules: Vec::new(),
                reason: None,
                error: Some("pragmas must be `//` line comments".to_string()),
            });
            continue;
        }
        out.push(parse_body(rest.trim(), c.line, covers));
    }
    out
}

/// Parse the text after `footsteps-lint:`.
fn parse_body(body: &str, line: u32, covers: u32) -> Pragma {
    let fail = |error: &str| Pragma {
        line,
        covers,
        rules: Vec::new(),
        reason: None,
        error: Some(error.to_string()),
    };
    let Some(rest) = body.strip_prefix("allow") else {
        return fail("expected `allow(<rule>)` after `footsteps-lint:`");
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return fail("expected `(` after `allow`");
    };
    let Some(close) = rest.find(')') else {
        return fail("unclosed `allow(`");
    };
    let mut rules: Vec<RuleSpec> = Vec::new();
    for part in rest[..close].split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let mut words = part.split_whitespace();
        let rule = words.next().unwrap_or_default().to_string();
        let via = match (words.next(), words.next(), words.next()) {
            (None, _, _) => None,
            (Some("via"), Some(f), None) => Some(f.to_string()),
            _ => {
                return fail(&format!(
                    "expected `<rule>` or `<rule> via <fn>`, got `{part}`"
                ));
            }
        };
        rules.push(RuleSpec { rule, via });
    }
    if rules.is_empty() {
        return fail("empty rule list in `allow()`");
    }
    for r in &rules {
        if !crate::rules::Rule::ALL.iter().any(|k| k.name() == r.rule) {
            return fail(&format!("unknown rule `{}` in `allow(...)`", r.rule));
        }
    }
    let mut reason = rest[close + 1..].trim();
    for sep in ["—", "–", "--", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim();
            break;
        }
    }
    Pragma {
        line,
        covers,
        rules,
        reason: (!reason.is_empty()).then(|| reason.to_string()),
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragmas(src: &str) -> Vec<Pragma> {
        collect(&lex(src).comments)
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let p = &pragmas(
            "let x = m.values(); // footsteps-lint: allow(nondet-iter) — feeds a sum\n",
        )[0];
        assert!(p.error.is_none());
        assert_eq!(
            p.rules,
            vec![RuleSpec { rule: "nondet-iter".to_string(), via: None }]
        );
        assert_eq!(p.reason.as_deref(), Some("feeds a sum"));
        assert_eq!(p.covers, 1);
    }

    #[test]
    fn own_line_pragma_covers_next_line() {
        let src = "\n// footsteps-lint: allow(wall-clock) - bench only\nlet t = x;\n";
        let p = &pragmas(src)[0];
        assert!(p.error.is_none());
        assert_eq!(p.line, 2);
        assert_eq!(p.covers, 3);
    }

    #[test]
    fn missing_reason_is_detected() {
        let p = &pragmas("// footsteps-lint: allow(unsafe-code)\n")[0];
        assert!(p.error.is_none());
        assert!(p.reason.is_none());
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let p = &pragmas("// footsteps-lint: allow(no-such-rule) — hmm\n")[0];
        assert!(p.error.is_some());
    }

    #[test]
    fn multiple_rules_parse() {
        let p = &pragmas(
            "// footsteps-lint: allow(nondet-iter, env-read) — fixture exercising both\n",
        )[0];
        assert!(p.error.is_none());
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn via_qualifier_parses() {
        let p = &pragmas(
            "// footsteps-lint: allow(parallel-metrics via log_outcome) — merged serially\n",
        )[0];
        assert!(p.error.is_none());
        assert_eq!(p.rules[0].rule, "parallel-metrics");
        assert_eq!(p.rules[0].via.as_deref(), Some("log_outcome"));
    }

    #[test]
    fn bad_via_clause_is_malformed() {
        let p = &pragmas("// footsteps-lint: allow(wall-clock via) — x\n")[0];
        assert!(p.error.is_some());
        let p = &pragmas("// footsteps-lint: allow(wall-clock thru f) — x\n")[0];
        assert!(p.error.is_some());
    }

    #[test]
    fn non_pragma_comments_are_ignored() {
        assert!(pragmas("// just words\n/* footsteps elsewhere */\n").is_empty());
    }
}
