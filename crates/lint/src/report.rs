//! Finding rendering: human-readable text and hand-rolled JSON (the crate
//! is dependency-free, so no serde here).
//!
//! The JSON document carries a top-level `"schema_version"` so downstream
//! consumers (CI artifact diffing, dashboards) can detect format changes;
//! bump [`JSON_SCHEMA_VERSION`] whenever a field is added, removed, or
//! changes meaning.

use crate::graph::GraphStats;
use crate::rules::{Finding, PragmaStatus};

/// Version of the JSON report format. 2 = interprocedural findings:
/// per-finding `"chain"` array, optional top-level `"stats"` object.
pub const JSON_SCHEMA_VERSION: u32 = 2;

/// Human-readable report of the violations (allowed findings summarised).
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    let violations: Vec<&Finding> = findings.iter().filter(|f| f.is_violation()).collect();
    for f in &violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            f.file,
            f.line,
            f.rule.name(),
            f.message,
            f.snippet
        ));
        if !f.chain.is_empty() {
            out.push_str(&format!("    chain: {}\n", f.chain.join(" → ")));
        }
    }
    let allowed = findings.len() - violations.len();
    out.push_str(&format!(
        "footsteps-lint: {} violation(s), {} allowed by pragma\n",
        violations.len(),
        allowed
    ));
    out
}

/// Human-readable `--stats` coverage view.
pub fn render_stats(stats: &GraphStats) -> String {
    format!(
        "footsteps-lint call-graph coverage:\n\
         \x20 files scanned:        {}\n\
         \x20 functions indexed:    {}\n\
         \x20 call edges:           {}\n\
         \x20 resolved calls:       {}\n\
         \x20 unresolved calls:     {}\n\
         \x20 opaque calls:         {}\n\
         \x20 trait-merged calls:   {}\n\
         \x20 fixpoint iterations:  {}\n",
        stats.files,
        stats.functions,
        stats.edges,
        stats.resolved_calls,
        stats.unresolved_calls,
        stats.opaque_calls,
        stats.trait_merged_calls,
        stats.fixpoint_iterations,
    )
}

/// Machine-readable report: every finding (including pragma-allowed ones,
/// so the annotation inventory stays auditable), plus counts and, when
/// provided, the call-graph coverage statistics.
pub fn render_json(findings: &[Finding], stats: Option<&GraphStats>) -> String {
    let mut out = format!(
        "{{\n  \"schema_version\": {JSON_SCHEMA_VERSION},\n  \"findings\": [\n"
    );
    for (i, f) in findings.iter().enumerate() {
        let (status, detail) = match &f.pragma {
            PragmaStatus::None => ("none", None),
            PragmaStatus::Allowed(reason) => ("allowed", Some(reason.as_str())),
            PragmaStatus::MissingReason => ("missing-reason", None),
            PragmaStatus::Malformed(err) => ("malformed", Some(err.as_str())),
            PragmaStatus::Unused => ("unused", None),
        };
        out.push_str("    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(f.rule.name())));
        out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"snippet\": {}, ", json_str(&f.snippet)));
        out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
        out.push_str("\"chain\": [");
        for (j, link) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(link));
        }
        out.push_str("], ");
        out.push_str(&format!("\"pragma\": {}", json_str(status)));
        if let Some(d) = detail {
            out.push_str(&format!(", \"pragma_detail\": {}", json_str(d)));
        }
        out.push('}');
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let violations = findings.iter().filter(|f| f.is_violation()).count();
    out.push_str("  ],\n");
    if let Some(s) = stats {
        out.push_str(&format!(
            "  \"stats\": {{\"files\": {}, \"functions\": {}, \"edges\": {}, \
             \"resolved_calls\": {}, \"unresolved_calls\": {}, \"opaque_calls\": {}, \
             \"trait_merged_calls\": {}, \"fixpoint_iterations\": {}}},\n",
            s.files,
            s.functions,
            s.edges,
            s.resolved_calls,
            s.unresolved_calls,
            s.opaque_calls,
            s.trait_merged_calls,
            s.fixpoint_iterations,
        ));
    }
    out.push_str(&format!(
        "  \"counts\": {{\"total\": {}, \"violations\": {}, \"allowed\": {}}}\n",
        findings.len(),
        violations,
        findings.len() - violations
    ));
    out.push_str("}\n");
    out
}

/// JSON string literal with the escapes the findings can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(pragma: PragmaStatus) -> Finding {
        Finding {
            rule: Rule::NondetIter,
            file: "crates/x/src/lib.rs".to_string(),
            line: 3,
            snippet: "m.values() // \"quoted\"".to_string(),
            message: "msg".to_string(),
            chain: Vec::new(),
            pragma,
        }
    }

    #[test]
    fn json_escapes_quotes_and_is_well_formed() {
        let json = render_json(&[finding(PragmaStatus::None)], None);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"schema_version\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn allowed_findings_do_not_count_as_violations() {
        let json = render_json(&[finding(PragmaStatus::Allowed("sorted later".into()))], None);
        assert!(json.contains("\"violations\": 0"));
        assert!(json.contains("\"pragma_detail\": \"sorted later\""));
        let text = render_text(&[finding(PragmaStatus::Allowed("sorted later".into()))]);
        assert!(text.contains("0 violation(s), 1 allowed"));
    }

    #[test]
    fn chain_is_rendered_in_text_and_json() {
        let mut f = finding(PragmaStatus::None);
        f.chain = vec!["apply_shard".into(), "log_outcome".into(), "Instant::now".into()];
        let text = render_text(&[f.clone()]);
        assert!(text.contains("chain: apply_shard → log_outcome → Instant::now"));
        let json = render_json(&[f], None);
        assert!(json.contains("\"chain\": [\"apply_shard\", \"log_outcome\", \"Instant::now\"]"));
    }

    #[test]
    fn stats_block_is_emitted_when_present() {
        let stats = GraphStats { functions: 7, edges: 9, ..Default::default() };
        let json = render_json(&[], Some(&stats));
        assert!(json.contains("\"functions\": 7"));
        assert!(json.contains("\"edges\": 9"));
        let text = render_stats(&stats);
        assert!(text.contains("functions indexed:    7"));
    }
}
