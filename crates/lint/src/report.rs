//! Finding rendering: human-readable text and hand-rolled JSON (the crate
//! is dependency-free, so no serde here).

use crate::rules::{Finding, PragmaStatus};

/// Human-readable report of the violations (allowed findings summarised).
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    let violations: Vec<&Finding> = findings.iter().filter(|f| f.is_violation()).collect();
    for f in &violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            f.file,
            f.line,
            f.rule.name(),
            f.message,
            f.snippet
        ));
    }
    let allowed = findings.len() - violations.len();
    out.push_str(&format!(
        "footsteps-lint: {} violation(s), {} allowed by pragma\n",
        violations.len(),
        allowed
    ));
    out
}

/// Machine-readable report: every finding (including pragma-allowed ones,
/// so the annotation inventory stays auditable), plus counts.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let (status, detail) = match &f.pragma {
            PragmaStatus::None => ("none", None),
            PragmaStatus::Allowed(reason) => ("allowed", Some(reason.as_str())),
            PragmaStatus::MissingReason => ("missing-reason", None),
            PragmaStatus::Malformed(err) => ("malformed", Some(err.as_str())),
            PragmaStatus::Unused => ("unused", None),
        };
        out.push_str("    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(f.rule.name())));
        out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"snippet\": {}, ", json_str(&f.snippet)));
        out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
        out.push_str(&format!("\"pragma\": {}", json_str(status)));
        if let Some(d) = detail {
            out.push_str(&format!(", \"pragma_detail\": {}", json_str(d)));
        }
        out.push('}');
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let violations = findings.iter().filter(|f| f.is_violation()).count();
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"counts\": {{\"total\": {}, \"violations\": {}, \"allowed\": {}}}\n",
        findings.len(),
        violations,
        findings.len() - violations
    ));
    out.push_str("}\n");
    out
}

/// JSON string literal with the escapes the findings can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(pragma: PragmaStatus) -> Finding {
        Finding {
            rule: Rule::NondetIter,
            file: "crates/x/src/lib.rs".to_string(),
            line: 3,
            snippet: "m.values() // \"quoted\"".to_string(),
            message: "msg".to_string(),
            pragma,
        }
    }

    #[test]
    fn json_escapes_quotes_and_is_well_formed() {
        let json = render_json(&[finding(PragmaStatus::None)]);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"violations\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn allowed_findings_do_not_count_as_violations() {
        let json = render_json(&[finding(PragmaStatus::Allowed("sorted later".into()))]);
        assert!(json.contains("\"violations\": 0"));
        assert!(json.contains("\"pragma_detail\": \"sorted later\""));
        let text = render_text(&[finding(PragmaStatus::Allowed("sorted later".into()))]);
        assert!(text.contains("0 violation(s), 1 allowed"));
    }
}
