//! The repo-specific rules and the per-file checking engine.
//!
//! Every rule is a token-level pattern over [`crate::lexer`] output plus a
//! scope (which crates/sections/test-ness it applies to). The rules encode
//! the workspace's determinism contract (DESIGN.md §6): the golden digest
//! `0xce8aeb34fb9fe096` must be byte-identical for any `FOOTSTEPS_THREADS`,
//! which only holds if no order-observing map iteration, ambient time,
//! ambient randomness, or parallel-phase metrics recording sneaks into the
//! simulation path.
//!
//! Heuristics, stated honestly: without type inference we cannot prove a
//! receiver is a `HashMap`. The engine therefore resolves receiver names in
//! two layers: a workspace-global table of *field* declarations
//! (`name: HashMap<..>` outside parentheses — so a hash field declared in
//! `sim` and iterated from `aas` is still caught), shadowed by a per-file
//! table of every local declaration (`let`, parameter, or field) — so a
//! `Vec`-typed field that merely shares its name with a hash field in some
//! other crate is not flagged. The map-specific method names (`keys`,
//! `values`, …) are suspicious on *any* receiver that is not a known BTree
//! name. A map returned by a function call and iterated inline is not
//! caught — reviewers still cover that gap, the lint shrinks it.

use crate::lexer::{lex, Lexed, Token, TokenKind};
use crate::pragma::{self, Pragma};

/// Crates whose `src` feeds the golden digest: order-observing iteration
/// over hash containers there is a correctness bug unless proven safe.
/// `sweep` is held to the same bar — its checkpoint/resume and aggregation
/// paths must reproduce the per-seed digests byte for byte.
pub const DIGEST_CRATES: &[&str] =
    &["sim", "aas", "detect", "intervene", "analysis", "core", "sweep"];

/// Crates allowed to touch wall-clock (`Instant`, `SystemTime`, `elapsed`).
/// `obs` owns the span tree and the Chrome-trace exporter; `bench` is the
/// perf harness. Everything else — including the rest of `sweep` — goes
/// through `footsteps_obs::Stopwatch` / spans.
pub const WALL_CLOCK_CRATES: &[&str] = &["obs", "bench"];

/// Single files (outside [`WALL_CLOCK_CRATES`]) allowed to touch
/// wall-clock. `sweep`'s manifest stamps job transitions with unix times;
/// those stamps are bookkeeping for humans and never feed a digest. The
/// sweep's per-job trace writes and ETA lines need no exemption: they use
/// `footsteps_obs::Stopwatch` and the obs exporter.
pub const WALL_CLOCK_FILES: &[&str] = &["crates/sweep/src/manifest.rs"];

/// The only file allowed to construct RNGs from raw seeds in non-test code.
pub const RNG_MODULE: &str = "crates/sim/src/rng.rs";

/// Files (beyond `crates/obs`) allowed to read the environment: the
/// `FOOTSTEPS_THREADS` entry point and the bench harness's scenario
/// selection (`FOOTSTEPS_SEED`/`FOOTSTEPS_SMOKE`).
/// (`FOOTSTEPS_TRACE`/`FOOTSTEPS_QUIET` live in `crates/obs`;
/// `FOOTSTEPS_PERF_TOLERANCE` is read by `scripts/ci.sh`, not Rust code.)
pub const ENV_READ_FILES: &[&str] =
    &["crates/core/src/scenario.rs", "crates/bench/src/lib.rs"];

/// Files allowed to contain `unsafe`. Deliberately empty — every crate
/// also carries `#![forbid(unsafe_code)]`; the lint is the belt to that
/// braces, and catches files the compiler attribute does not cover yet.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

/// Function names forming the shard paths of the three-phase daily engine:
/// the decision phase (`plan_*`), the route phase (`route_day`, whose
/// output feeds the digest and must stay metrics-free so plan/route moves
/// never change the snapshot), and the sharded apply phase (`apply_shard`,
/// which runs on worker threads). The bodies of these functions, plus
/// every argument list of a `plan_parallel(...)` call, must not touch
/// observability state (PR 2's serial-only metrics contract) — callers
/// record merged counters and wall spans around these regions instead.
pub const PLAN_FNS: &[&str] = &[
    "plan_parallel",
    "plan_parallel_timed",
    "plan_customer",
    "plan_member",
    "route_day",
    "apply_shard",
];

/// Identifiers that indicate observability access inside a shard path.
const OBS_TOKENS: &[&str] = &[
    "footsteps_obs",
    "obs",
    "metrics",
    "timings",
    "trace",
    "progress",
    "Recorder",
];

const AMBIENT_RNG_BANNED: &[&str] = &["thread_rng", "from_entropy", "from_rng"];
const ORDER_METHODS_ANY_RECEIVER: &[&str] =
    &["keys", "values", "values_mut", "into_keys", "into_values"];
const ORDER_METHODS_KNOWN_RECEIVER: &[&str] = &["iter", "iter_mut", "into_iter", "drain"];

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Order-observing iteration over a hash container in digest code.
    NondetIter,
    /// Wall-clock access outside `crates/obs` / `crates/bench`.
    WallClock,
    /// Ambient or raw-seeded randomness outside `sim::rng`.
    AmbientRng,
    /// `std::env::var` outside the designated config/obs entry points.
    EnvRead,
    /// Observability access inside a parallel decision-phase shard path.
    ParallelMetrics,
    /// `unsafe` outside the (empty) allowlist.
    UnsafeCode,
    /// A problem with a pragma itself (missing reason, unknown rule, stale).
    Pragma,
}

impl Rule {
    /// Every rule, in severity-agnostic display order.
    pub const ALL: &'static [Rule] = &[
        Rule::NondetIter,
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::EnvRead,
        Rule::ParallelMetrics,
        Rule::UnsafeCode,
        Rule::Pragma,
    ];

    /// The kebab-case name used in pragmas, findings, and docs.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::NondetIter => "nondet-iter",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::EnvRead => "env-read",
            Rule::ParallelMetrics => "parallel-metrics",
            Rule::UnsafeCode => "unsafe-code",
            Rule::Pragma => "pragma",
        }
    }
}

/// Pragma situation of a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PragmaStatus {
    /// No applicable pragma: the finding is a violation.
    None,
    /// Suppressed by a valid pragma (reason recorded). Not a violation, but
    /// still reported in `--json` so annotations stay auditable.
    Allowed(String),
    /// A pragma exists but carries no reason.
    MissingReason,
    /// A pragma failed to parse (message recorded).
    Malformed(String),
    /// A valid pragma that suppressed nothing — stale, remove it.
    Unused,
}

/// One finding: a rule match (allowed or not) or a pragma problem.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The trimmed source line.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
    /// Pragma situation.
    pub pragma: PragmaStatus,
}

impl Finding {
    /// Does this finding fail the build?
    pub fn is_violation(&self) -> bool {
        !matches!(self.pragma, PragmaStatus::Allowed(_))
    }
}

/// Container-family classification of one declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decl {
    /// `HashMap` / `HashSet`: iteration order is arbitrary.
    Hash,
    /// `BTreeMap` / `BTreeSet`: iteration order is deterministic.
    Btree,
    /// Any other concrete (CamelCase) type: known not-a-hash-container.
    Other,
}

fn container_class(ty: &str) -> Option<Decl> {
    match ty {
        "HashMap" | "HashSet" => Some(Decl::Hash),
        "BTreeMap" | "BTreeSet" => Some(Decl::Btree),
        _ => None,
    }
}

/// Hash beats btree beats other when one name is declared several ways in
/// the same file (conservative: the iteration gets flagged).
fn decl_rank(d: Decl) -> u8 {
    match d {
        Decl::Hash => 2,
        Decl::Btree => 1,
        Decl::Other => 0,
    }
}

/// Resolve the type identifier that follows a declaration `:`: skip
/// `&`/`mut`/lifetime noise, then follow the path
/// (`std::collections::HashMap<..>`) to its final segment before any
/// generics.
fn type_after_colon(tokens: &[Token], colon: usize) -> Option<&Token> {
    let mut j = colon + 1;
    while tokens
        .get(j)
        .is_some_and(|t| t.is_punct("&") || t.is_ident("mut") || t.kind == TokenKind::Lifetime)
    {
        j += 1;
    }
    if tokens.get(j)?.kind != TokenKind::Ident {
        return None;
    }
    let mut last = j;
    while tokens.get(last + 1).is_some_and(|t| t.is_punct("::"))
        && tokens.get(last + 2).is_some_and(|t| t.kind == TokenKind::Ident)
    {
        last += 2;
    }
    Some(&tokens[last])
}

/// Is the identifier at `i` the start of a `let [mut] name` binding?
fn after_let(tokens: &[Token], i: usize) -> bool {
    match i.checked_sub(1).map(|p| &tokens[p]) {
        Some(p) if p.is_ident("let") => true,
        Some(p) if p.is_ident("mut") => i >= 2 && tokens[i - 2].is_ident("let"),
        _ => false,
    }
}

/// Workspace-global table of *field* names declared with hash / btree
/// container types: `name: HashMap<..>` at parenthesis depth zero and not
/// `let`-bound. Built over every scanned file before any file is checked,
/// so a hash field declared in `sim` and iterated from `aas` is caught.
/// `let` bindings and parameters are deliberately excluded — their uses are
/// file-local and the per-file [`LocalTable`] sees them with full context.
/// On a hash/btree collision, hash wins (conservative).
#[derive(Debug, Default)]
pub struct SymbolTable {
    hash_names: Vec<String>,
    btree_names: Vec<String>,
}

impl SymbolTable {
    /// Record field declarations from one lexed file.
    pub fn collect(&mut self, lexed: &Lexed) {
        let tokens = &lexed.tokens;
        let mut paren = 0i32;
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            }
            if paren > 0
                || t.kind != TokenKind::Ident
                || !tokens.get(i + 1).is_some_and(|n| n.is_punct(":"))
                || after_let(tokens, i)
            {
                continue;
            }
            let Some(ty) = type_after_colon(tokens, i + 1) else { continue };
            match container_class(&ty.text) {
                Some(Decl::Hash) => {
                    if !self.hash_names.contains(&t.text) {
                        self.hash_names.push(t.text.clone());
                    }
                }
                Some(Decl::Btree) => {
                    if !self.btree_names.contains(&t.text) {
                        self.btree_names.push(t.text.clone());
                    }
                }
                _ => {}
            }
        }
    }

    fn is_hash(&self, name: &str) -> bool {
        self.hash_names.iter().any(|n| n == name)
    }

    /// Known BTree-typed and *not* also hash-typed anywhere.
    fn is_btree_only(&self, name: &str) -> bool {
        self.btree_names.iter().any(|n| n == name) && !self.is_hash(name)
    }
}

/// Per-file declaration table. Records every `name: Type` declaration
/// (field, parameter, or `let` — the type must look like a type, i.e.
/// CamelCase, so struct-literal initialisers like `{ asns: set }` are
/// ignored) and every `name = HashMap::new()`-shaped binding. Local
/// declarations *shadow* the global field table: a file whose `accounts`
/// is a `Vec` arena is not flagged just because some other crate has a
/// `HashSet` parameter of the same name.
#[derive(Debug, Default)]
struct LocalTable {
    names: Vec<(String, Decl)>,
}

impl LocalTable {
    fn record(&mut self, name: &str, decl: Decl) {
        match self.names.iter_mut().find(|(n, _)| n == name) {
            Some((_, existing)) => {
                if decl_rank(decl) > decl_rank(*existing) {
                    *existing = decl;
                }
            }
            None => self.names.push((name.to_string(), decl)),
        }
    }

    fn get(&self, name: &str) -> Option<Decl> {
        self.names.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }
}

fn local_table(tokens: &[Token]) -> LocalTable {
    let mut table = LocalTable::default();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else { break };
        if next.is_punct(":") {
            let Some(ty) = type_after_colon(tokens, i + 1) else { continue };
            match container_class(&ty.text) {
                Some(d) => table.record(&t.text, d),
                None if ty.text.starts_with(char::is_uppercase) => {
                    table.record(&t.text, Decl::Other);
                }
                None => {}
            }
        } else if next.is_punct("=") {
            // `name = [std::collections::]HashMap::new()` and friends. Only
            // container constructors are recorded — `name = some_call()`
            // tells us nothing about the type.
            let mut j = i + 2;
            while let Some(ft) = tokens.get(j) {
                if ft.kind != TokenKind::Ident {
                    break;
                }
                if let Some(d) = container_class(&ft.text) {
                    table.record(&t.text, d);
                    break;
                }
                if (ft.is_ident("std") || ft.is_ident("collections") || ft.is_ident("alloc"))
                    && tokens.get(j + 1).is_some_and(|p| p.is_punct("::"))
                {
                    j += 2;
                    continue;
                }
                break;
            }
        }
    }
    table
}

/// Where a file sits in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    /// `crates/<k>/src` — product code.
    Src,
    /// `crates/<k>/{tests,examples,benches}` or the `tests/` member.
    TestLike,
}

#[derive(Debug)]
struct FileClass {
    krate: String,
    section: Section,
}

fn classify(relpath: &str) -> FileClass {
    let parts: Vec<&str> = relpath.split('/').collect();
    match parts.as_slice() {
        ["crates", k, "src", ..] => FileClass { krate: (*k).to_string(), section: Section::Src },
        ["crates", k, ..] => FileClass { krate: (*k).to_string(), section: Section::TestLike },
        _ => FileClass { krate: "tests".to_string(), section: Section::TestLike },
    }
}

/// A raw rule match before pragma resolution.
struct RawMatch {
    rule: Rule,
    line: u32,
    message: String,
}

/// Check one file. `symbols` must have been built over the whole scan set.
pub fn check_file(relpath: &str, source: &str, symbols: &SymbolTable) -> Vec<Finding> {
    let lexed = lex(source);
    let class = classify(relpath);
    let tokens = &lexed.tokens;
    let locals = local_table(tokens);
    // Local declarations shadow the global field table.
    let is_hash = |name: &str| -> bool {
        match locals.get(name) {
            Some(Decl::Hash) => true,
            Some(_) => false,
            None => symbols.is_hash(name),
        }
    };
    let is_btree_only = |name: &str| -> bool {
        match locals.get(name) {
            Some(Decl::Btree) => true,
            Some(_) => false,
            None => symbols.is_btree_only(name),
        }
    };
    let test_ranges = test_item_ranges(tokens);
    let in_test = |i: usize| -> bool {
        class.section == Section::TestLike
            || test_ranges.iter().any(|&(s, e)| i >= s && i <= e)
    };
    let digest_src = |i: usize| -> bool {
        DIGEST_CRATES.contains(&class.krate.as_str())
            && class.section == Section::Src
            && !in_test(i)
    };

    let mut raw: Vec<RawMatch> = Vec::new();
    let push = |rule: Rule, line: u32, message: String, raw: &mut Vec<RawMatch>| {
        if !raw.iter().any(|m| m.rule == rule && m.line == line) {
            raw.push(RawMatch { rule, line, message });
        }
    };

    // --- nondet-iter ------------------------------------------------------
    for i in 0..tokens.len() {
        if !digest_src(i) {
            continue;
        }
        // Method calls: `.name(`.
        if tokens[i].is_punct(".")
            && i + 2 < tokens.len()
            && tokens[i + 1].kind == TokenKind::Ident
            && tokens[i + 2].is_punct("(")
        {
            let m = tokens[i + 1].text.as_str();
            let receiver = i
                .checked_sub(1)
                .map(|r| &tokens[r])
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.as_str());
            if ORDER_METHODS_ANY_RECEIVER.contains(&m) {
                let exempt = receiver.is_some_and(&is_btree_only);
                if !exempt {
                    push(
                        Rule::NondetIter,
                        tokens[i + 1].line,
                        format!("`.{m}()` observes hash-iteration order (receiver `{}`)",
                            receiver.unwrap_or("<expr>")),
                        &mut raw,
                    );
                }
            } else if ORDER_METHODS_KNOWN_RECEIVER.contains(&m) {
                if let Some(r) = receiver {
                    if is_hash(r) {
                        push(
                            Rule::NondetIter,
                            tokens[i + 1].line,
                            format!("`.{m}()` on `{r}`, which is HashMap/HashSet-typed in this workspace"),
                            &mut raw,
                        );
                    }
                }
            }
        }
        // `for … in <plain path ending in a hash-typed name> {`.
        if tokens[i].is_ident("for") {
            if let Some((line, name)) = for_in_hash_target(tokens, i, &is_hash) {
                push(
                    Rule::NondetIter,
                    line,
                    format!("`for … in {name}` iterates a HashMap/HashSet-typed binding"),
                    &mut raw,
                );
            }
        }
    }

    // --- wall-clock -------------------------------------------------------
    if !WALL_CLOCK_CRATES.contains(&class.krate.as_str()) && !WALL_CLOCK_FILES.contains(&relpath) {
        for (i, t) in tokens.iter().enumerate() {
            if t.is_ident("Instant") || t.is_ident("SystemTime") {
                push(
                    Rule::WallClock,
                    t.line,
                    format!("`{}` outside crates/obs and crates/bench (use footsteps_obs spans/Stopwatch)", t.text),
                    &mut raw,
                );
            }
            if t.is_punct(".")
                && i + 2 < tokens.len()
                && tokens[i + 1].is_ident("elapsed")
                && tokens[i + 2].is_punct("(")
            {
                push(
                    Rule::WallClock,
                    tokens[i + 1].line,
                    "`.elapsed()` outside crates/obs and crates/bench".to_string(),
                    &mut raw,
                );
            }
        }
    }

    // --- ambient-rng ------------------------------------------------------
    if relpath != RNG_MODULE {
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            if AMBIENT_RNG_BANNED.contains(&t.text.as_str()) {
                push(
                    Rule::AmbientRng,
                    t.line,
                    format!("`{}` is ambient randomness; derive streams via sim::rng", t.text),
                    &mut raw,
                );
            }
            // Raw seeding is how tests pin fixtures, so only non-test
            // product code is held to the sim::rng derivation.
            if t.text == "seed_from_u64" && !in_test(i) {
                push(
                    Rule::AmbientRng,
                    t.line,
                    "raw `seed_from_u64` outside sim::rng; derive seeds via RngFactory/decision_rng"
                        .to_string(),
                    &mut raw,
                );
            }
        }
    }

    // --- env-read ---------------------------------------------------------
    if class.krate != "obs" && !ENV_READ_FILES.contains(&relpath) {
        for i in 0..tokens.len() {
            if class.section != Section::Src || in_test(i) {
                continue;
            }
            if tokens[i].is_ident("env")
                && i + 2 < tokens.len()
                && tokens[i + 1].is_punct("::")
                && (tokens[i + 2].is_ident("var") || tokens[i + 2].is_ident("var_os"))
            {
                push(
                    Rule::EnvRead,
                    tokens[i + 2].line,
                    "`env::var` outside the designated config/obs entry points".to_string(),
                    &mut raw,
                );
            }
        }
    }

    // --- parallel-metrics -------------------------------------------------
    if DIGEST_CRATES.contains(&class.krate.as_str()) && class.section == Section::Src {
        for (s, e) in plan_regions(tokens) {
            for i in s..=e.min(tokens.len().saturating_sub(1)) {
                if in_test(i) {
                    continue;
                }
                let t = &tokens[i];
                if t.kind == TokenKind::Ident && OBS_TOKENS.contains(&t.text.as_str()) {
                    push(
                        Rule::ParallelMetrics,
                        t.line,
                        format!("`{}` inside a parallel decision-phase shard path; metrics/timings are serial-only", t.text),
                        &mut raw,
                    );
                }
            }
        }
    }

    // --- unsafe-code ------------------------------------------------------
    if !UNSAFE_ALLOWLIST.contains(&relpath) {
        for t in tokens {
            if t.is_ident("unsafe") {
                push(
                    Rule::UnsafeCode,
                    t.line,
                    "`unsafe` outside the allowlist".to_string(),
                    &mut raw,
                );
            }
        }
    }

    resolve_pragmas(relpath, source, &lexed, raw)
}

/// Apply pragmas to raw matches and report pragma problems.
fn resolve_pragmas(
    relpath: &str,
    source: &str,
    lexed: &Lexed,
    raw: Vec<RawMatch>,
) -> Vec<Finding> {
    let pragmas: Vec<Pragma> = pragma::collect(&lexed.comments);
    let mut used = vec![false; pragmas.len()];
    let snippet = |line: u32| -> String {
        source
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
            .to_string()
    };

    let mut out: Vec<Finding> = Vec::new();
    for m in raw {
        let mut status = PragmaStatus::None;
        for (pi, p) in pragmas.iter().enumerate() {
            if p.covers != m.line || p.error.is_some() {
                continue;
            }
            if !p.rules.iter().any(|r| r == m.rule.name()) {
                continue;
            }
            match &p.reason {
                Some(reason) => {
                    status = PragmaStatus::Allowed(reason.clone());
                    used[pi] = true;
                }
                None => {
                    // Reason-less pragmas suppress nothing, but "used" is
                    // still marked so the error reported is the missing
                    // reason, not staleness.
                    status = PragmaStatus::None;
                    used[pi] = true;
                }
            }
            break;
        }
        out.push(Finding {
            rule: m.rule,
            file: relpath.to_string(),
            line: m.line,
            snippet: snippet(m.line),
            message: m.message,
            pragma: status,
        });
    }

    for (pi, p) in pragmas.iter().enumerate() {
        let (status, message) = if let Some(err) = &p.error {
            (PragmaStatus::Malformed(err.clone()), format!("malformed pragma: {err}"))
        } else if p.reason.is_none() {
            (
                PragmaStatus::MissingReason,
                "pragma without a reason; write `allow(<rule>) — <why this site is safe>`"
                    .to_string(),
            )
        } else if !used[pi] {
            (
                PragmaStatus::Unused,
                "stale pragma: it suppresses no finding on its line; remove it".to_string(),
            )
        } else {
            continue;
        };
        out.push(Finding {
            rule: Rule::Pragma,
            file: relpath.to_string(),
            line: p.line,
            snippet: snippet(p.line),
            message,
            pragma: status,
        });
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Token-index ranges of items marked `#[test]` / `#[cfg(test)]` (and any
/// `cfg` attribute mentioning `test`, e.g. `cfg(all(test, unix))`).
fn test_item_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && i + 1 < tokens.len() && tokens[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = matching(tokens, i + 1, "[", "]") else {
            break;
        };
        let attr = &tokens[i + 2..attr_end];
        let is_test_attr = match attr.first() {
            Some(t) if t.is_ident("test") => attr.len() == 1,
            Some(t) if t.is_ident("cfg") => attr.iter().any(|t| t.is_ident("test")),
            _ => false,
        };
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then span the annotated item.
        let mut j = attr_end + 1;
        while j + 1 < tokens.len() && tokens[j].is_punct("#") && tokens[j + 1].is_punct("[") {
            match matching(tokens, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        let mut depth = 0i32;
        let mut end = tokens.len().saturating_sub(1);
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                end = matching(tokens, j, "{", "}").unwrap_or(end);
                break;
            } else if t.is_punct(";") && depth == 0 {
                end = j;
                break;
            }
            j += 1;
        }
        out.push((attr_start, end));
        i = end + 1;
    }
    out
}

/// Index of the token matching the opener at `open_at` (which must hold
/// `open`), honouring nesting.
fn matching(tokens: &[Token], open_at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open_at) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Token ranges of the parallel decision-phase shard paths: bodies of
/// [`PLAN_FNS`] functions and the argument lists of `plan_parallel(...)`
/// calls (which contain the per-item plan closures).
fn plan_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident("fn")
            && i + 1 < tokens.len()
            && PLAN_FNS.contains(&tokens[i + 1].text.as_str())
        {
            // Find the body `{` at bracket depth 0, then its match.
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if t.is_punct("{") && depth == 0 {
                    if let Some(end) = matching(tokens, j, "{", "}") {
                        out.push((j, end));
                    }
                    break;
                } else if t.is_punct(";") && depth == 0 {
                    break;
                }
                j += 1;
            }
        }
        if (tokens[i].is_ident("plan_parallel") || tokens[i].is_ident("plan_parallel_timed"))
            && i + 1 < tokens.len()
            && tokens[i + 1].is_punct("(")
        {
            if let Some(end) = matching(tokens, i + 1, "(", ")") {
                out.push((i + 1, end));
            }
        }
    }
    out
}

/// For a `for` keyword at `at`, return `(line, name)` when the iterated
/// expression is a plain path (`[&][mut] a.b::c.d`) whose final identifier
/// is hash-typed. Expressions containing calls, literals, or indexing are
/// left to the method-based detection.
fn for_in_hash_target(
    tokens: &[Token],
    at: usize,
    is_hash: &dyn Fn(&str) -> bool,
) -> Option<(u32, String)> {
    // Locate `in` at pattern depth 0, bailing at `{`/`;` (e.g. `impl … for`).
    let mut depth = 0i32;
    let mut j = at + 1;
    let in_at = loop {
        let t = tokens.get(j)?;
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if (t.is_punct("{") || t.is_punct(";")) && depth <= 0 {
            return None;
        } else if t.is_ident("in") && depth == 0 {
            break j;
        }
        j += 1;
    };
    // Collect the expression up to the loop body `{`.
    let mut expr: Vec<&Token> = Vec::new();
    let mut k = in_at + 1;
    loop {
        let t = tokens.get(k)?;
        if t.is_punct("{") {
            break;
        }
        expr.push(t);
        k += 1;
    }
    let plain = expr.iter().all(|t| {
        t.kind == TokenKind::Ident || t.is_punct("&") || t.is_punct(".") || t.is_punct("::")
    });
    if !plain || expr.is_empty() {
        return None;
    }
    let last = expr.last()?;
    if last.kind == TokenKind::Ident && is_hash(&last.text) {
        Some((tokens[at].line, last.text.clone()))
    } else {
        None
    }
}
