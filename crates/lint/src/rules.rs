//! The repo-specific rules: lexical token patterns plus the
//! interprocedural deny scopes built on [`crate::graph`] and
//! [`crate::effects`].
//!
//! Every lexical rule is a token-level pattern over [`crate::lexer`]
//! output plus a scope (which crates/sections/test-ness it applies to).
//! The rules encode the workspace's determinism contract (DESIGN.md §6):
//! the golden digest `0xce8aeb34fb9fe096` must be byte-identical for any
//! `FOOTSTEPS_THREADS`, which only holds if no order-observing map
//! iteration, ambient time, ambient randomness, or parallel-phase
//! metrics recording sneaks into the simulation path.
//!
//! On top of the lexical layer, the shard deny scopes are *transitive*:
//! effects seeded by the same detectors are propagated over the
//! workspace call graph, so a helper that reads the wall clock and is
//! called from `apply_shard` is flagged at the call site with its full
//! chain (`apply_shard → log_outcome → Instant::now`).
//!
//! Heuristics, stated honestly: without type inference we cannot prove a
//! receiver is a `HashMap`. The engine therefore resolves receiver names
//! in two layers: a workspace-global table of *field* declarations
//! (`name: HashMap<..>` outside parentheses — so a hash field declared
//! in `sim` and iterated from `aas` is still caught), shadowed by a
//! per-file table of every local declaration — so a `Vec`-typed field
//! that merely shares its name with a hash field in some other crate is
//! not flagged. The call graph documents its own approximations in
//! [`crate::graph`]; `--stats` makes the unresolved remainder auditable.

use crate::effects::{bits, Effects, EffectTable};
use crate::graph::{
    after_let, classify, matching, test_item_ranges, type_after_colon, CallGraph, Resolution,
    Section,
};
use crate::lexer::{Lexed, Token, TokenKind};
use crate::pragma::Pragma;

/// Crates whose `src` feeds the golden digest: order-observing iteration
/// over hash containers there is a correctness bug unless proven safe.
/// `sweep` is held to the same bar — its checkpoint/resume and aggregation
/// paths must reproduce the per-seed digests byte for byte. `stream` too:
/// its verdict snapshot must replay byte-identically from a recorded log.
pub const DIGEST_CRATES: &[&str] =
    &["sim", "aas", "detect", "intervene", "analysis", "core", "sweep", "stream"];

/// Crates allowed to touch wall-clock (`Instant`, `SystemTime`, `elapsed`).
/// `obs` owns the span tree and the Chrome-trace exporter; `bench` is the
/// perf harness. Everything else — including the rest of `sweep` — goes
/// through `footsteps_obs::Stopwatch` / spans.
pub const WALL_CLOCK_CRATES: &[&str] = &["obs", "bench"];

/// Single files (outside [`WALL_CLOCK_CRATES`]) allowed to touch
/// wall-clock. `sweep`'s manifest stamps job transitions with unix times,
/// and `stream`'s event-log envelope stamps the recording time into the
/// log header (`recorded_unix`); both stamps are bookkeeping for humans
/// and never feed a digest or a replayed verdict. The sweep's per-job
/// trace writes and ETA lines, and the stream's detector timing, need no
/// exemption: they use `footsteps_obs::Stopwatch` and the obs exporter.
pub const WALL_CLOCK_FILES: &[&str] =
    &["crates/sweep/src/manifest.rs", "crates/stream/src/envelope.rs"];

/// The only file allowed to construct RNGs from raw seeds in non-test code.
pub const RNG_MODULE: &str = "crates/sim/src/rng.rs";

/// Files (beyond `crates/obs`) allowed to read the environment: the
/// `FOOTSTEPS_THREADS` entry point and the bench harness's scenario
/// selection (`FOOTSTEPS_SEED`/`FOOTSTEPS_SMOKE`).
/// (`FOOTSTEPS_TRACE`/`FOOTSTEPS_QUIET` live in `crates/obs`;
/// `FOOTSTEPS_PERF_TOLERANCE` is read by `scripts/ci.sh`, not Rust code.)
pub const ENV_READ_FILES: &[&str] =
    &["crates/core/src/scenario.rs", "crates/bench/src/lib.rs"];

/// Files allowed to contain `unsafe`. Deliberately empty — every crate
/// also carries `#![forbid(unsafe_code)]`; the lint is the belt to that
/// braces, and catches files the compiler attribute does not cover yet.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

/// Function names forming the shard paths of the three-phase daily engine:
/// the decision phase (`plan_*`), the route phase (`route_day`, whose
/// output feeds the digest and must stay metrics-free so plan/route moves
/// never change the snapshot), and the sharded apply phase (`apply_shard`,
/// which runs on worker threads). The bodies of these functions, plus
/// every argument list of a `plan_parallel(...)` call, must not *reach* —
/// directly or through any resolved call chain — observability state,
/// wall-clock, ambient RNG, environment reads, panic sites, or
/// order-observing iteration.
pub const PLAN_FNS: &[&str] = &[
    "plan_parallel",
    "plan_parallel_timed",
    "plan_customer",
    "plan_member",
    "route_day",
    "apply_shard",
];

/// Identifiers that indicate observability access inside a shard path.
pub(crate) const OBS_TOKENS: &[&str] = &[
    "footsteps_obs",
    "obs",
    "metrics",
    "timings",
    "trace",
    "progress",
    "Recorder",
];

/// Files whose functions *are* the metrics sink: calling into them from a
/// shard path is a `parallel-metrics` violation regardless of the binding
/// name at the call site. `span.rs` (Stopwatch/spans) is deliberately
/// absent — worker wall-time flows through it into quarantined
/// `TimingsSnapshot` lanes by design (DESIGN.md §5).
pub(crate) const OBS_RECORDING_FILES: &[&str] = &[
    "crates/obs/src/registry.rs",
    "crates/obs/src/trace.rs",
    "crates/obs/src/progress.rs",
];

/// Functions declared panic-free for the `panic-in-shard` rule: their
/// `unwrap`/`expect`/macro sites are vetted (documented at the
/// definition) and the effect is stripped before propagation. Entries
/// are bare names or `Type::name` displays.
///
/// * `stable_bin` — asserts `bins > 0`; every product call site passes
///   the `NUM_BINS` constant (10), so the assert is an input-validation
///   invariant that cannot fire from a shard path.
pub const PANIC_FREE_FNS: &[&str] = &["stable_bin"];

/// Files holding the canonical-order merge helpers: float accumulation
/// there defines the reference summation order (`analysis::stats`
/// Welford/mean helpers), so the `float-accum-order` effect is stripped.
pub const CANONICAL_MERGE_FILES: &[&str] = &["crates/analysis/src/stats.rs"];

/// Function names forming the shard-merge / Welford-merge paths checked
/// by `float-accum-order`: float accumulation in (or reachable from)
/// them must be routed through [`CANONICAL_MERGE_FILES`].
pub const FLOAT_MERGE_FNS: &[&str] =
    &["merge", "merge_inbound", "apply_delta", "apply_deposits_sharded"];

pub(crate) const AMBIENT_RNG_BANNED: &[&str] = &["thread_rng", "from_entropy", "from_rng"];
pub(crate) const ORDER_METHODS_ANY_RECEIVER: &[&str] =
    &["keys", "values", "values_mut", "into_keys", "into_values"];
pub(crate) const ORDER_METHODS_KNOWN_RECEIVER: &[&str] =
    &["iter", "iter_mut", "into_iter", "drain"];

/// Primitive type names recorded in declaration tables (so a local
/// `count: u64` both shadows a global hash name and proves non-float).
const PRIMITIVES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "bool", "char", "str",
];

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Order-observing iteration over a hash container in digest code.
    NondetIter,
    /// Wall-clock access outside `crates/obs` / `crates/bench`.
    WallClock,
    /// Ambient or raw-seeded randomness outside `sim::rng`.
    AmbientRng,
    /// `std::env::var` outside the designated config/obs entry points.
    EnvRead,
    /// Observability access inside a parallel decision-phase shard path.
    ParallelMetrics,
    /// `unwrap`/`expect`/`panic!` reachable from a scoped parallel worker.
    PanicInShard,
    /// Float accumulation in a merge path outside the canonical helpers.
    FloatAccumOrder,
    /// Checkpoint envelope type drift without a `SCHEMA_VERSION` bump.
    CheckpointSchema,
    /// `unsafe` outside the (empty) allowlist.
    UnsafeCode,
    /// A problem with a pragma itself (missing reason, unknown rule, stale).
    Pragma,
}

impl Rule {
    /// Every rule, in severity-agnostic display order.
    pub const ALL: &'static [Rule] = &[
        Rule::NondetIter,
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::EnvRead,
        Rule::ParallelMetrics,
        Rule::PanicInShard,
        Rule::FloatAccumOrder,
        Rule::CheckpointSchema,
        Rule::UnsafeCode,
        Rule::Pragma,
    ];

    /// The kebab-case name used in pragmas, findings, and docs.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::NondetIter => "nondet-iter",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::EnvRead => "env-read",
            Rule::ParallelMetrics => "parallel-metrics",
            Rule::PanicInShard => "panic-in-shard",
            Rule::FloatAccumOrder => "float-accum-order",
            Rule::CheckpointSchema => "checkpoint-schema",
            Rule::UnsafeCode => "unsafe-code",
            Rule::Pragma => "pragma",
        }
    }
}

/// One `--explain` entry; the same table feeds DESIGN.md §6.
#[derive(Debug)]
pub struct RuleDoc {
    /// The rule.
    pub rule: Rule,
    /// Why the rule exists (ties back to the determinism contract).
    pub rationale: &'static str,
    /// Where it applies.
    pub scope: &'static str,
    /// A pragma example with the mandatory reason.
    pub pragma: &'static str,
}

/// Rationale / scope / pragma example for every rule.
pub const EXPLANATIONS: &[RuleDoc] = &[
    RuleDoc {
        rule: Rule::NondetIter,
        rationale: "Hash-container iteration order varies across runs and platforms; any \
                    order-observing loop in digest code can change the golden digest.",
        scope: "src of the digest crates (sim, aas, detect, intervene, analysis, core, sweep), \
                outside tests; also transitively from the shard paths.",
        pragma: "// footsteps-lint: allow(nondet-iter) — feeds an order-insensitive sum",
    },
    RuleDoc {
        rule: Rule::WallClock,
        rationale: "Instant/SystemTime outside the observability crates lets timing leak into \
                    results; all timing flows through footsteps_obs spans/Stopwatch.",
        scope: "every crate except obs and bench (plus sweep's manifest stamps); transitively \
                from the shard paths.",
        pragma: "// footsteps-lint: allow(wall-clock) — log stamp, never feeds a digest",
    },
    RuleDoc {
        rule: Rule::AmbientRng,
        rationale: "thread_rng/from_entropy draw from process state; every stream must derive \
                    from the scenario seed via sim::rng so reruns replay bit-for-bit.",
        scope: "everywhere except crates/sim/src/rng.rs (raw seed_from_u64 allowed in tests); \
                transitively from the shard paths.",
        pragma: "// footsteps-lint: allow(ambient-rng) — test-only fixture pin",
    },
    RuleDoc {
        rule: Rule::EnvRead,
        rationale: "env::var makes behaviour depend on ambient process state; reads are \
                    confined to the FOOTSTEPS_* entry points.",
        scope: "src outside crates/obs, core::scenario, and the bench harness; transitively \
                from the shard paths.",
        pragma: "// footsteps-lint: allow(env-read) — documented FOOTSTEPS_* entry point",
    },
    RuleDoc {
        rule: Rule::ParallelMetrics,
        rationale: "Metrics/timings recording inside the parallel phases would make snapshots \
                    depend on thread interleaving; recording is serial-only (callers record \
                    around the parallel regions).",
        scope: "bodies of the plan/route/apply shard functions and plan_parallel argument \
                lists in digest-crate src, including everything they reach through the call \
                graph.",
        pragma: "// footsteps-lint: allow(parallel-metrics via log_outcome) — counter merged serially after join",
    },
    RuleDoc {
        rule: Rule::PanicInShard,
        rationale: "A panic inside std::thread::scope poisons the whole scope and aborts the \
                    run mid-sweep; shard paths must return errors instead. Indexing is exempt \
                    (bounds are invariants); PANIC_FREE_FNS lists vetted helpers.",
        scope: "unwrap/expect/panic!-family sites in, or reachable from, the shard functions \
                in digest-crate src.",
        pragma: "// footsteps-lint: allow(panic-in-shard) — join() surfaces worker panics, by design",
    },
    RuleDoc {
        rule: Rule::FloatAccumOrder,
        rationale: "Float addition is not associative: shard-merge order would change digests \
                    across thread counts. All float accumulation in merge paths goes through \
                    the canonical-order helpers in analysis::stats.",
        scope: "merge/merge_inbound/apply_delta/apply_deposits_sharded in digest-crate and obs \
                src, and everything they reach, except crates/analysis/src/stats.rs.",
        pragma: "// footsteps-lint: allow(float-accum-order) — single-shard path, order fixed",
    },
    RuleDoc {
        rule: Rule::CheckpointSchema,
        rationale: "Sweep resume deserializes committed checkpoints; a silent field change \
                    makes old checkpoints mis-resume. Structural digests of every Deserialize \
                    type reachable from the envelope are pinned in lint-schema.lock and may \
                    only change together with a SCHEMA_VERSION bump.",
        scope: "every #[derive(Deserialize)] type reachable from crates/sweep/src/checkpoint.rs; \
                regenerate the lock with --schema-write.",
        pragma: "// footsteps-lint: allow(checkpoint-schema) — migration shim, version bumped next PR",
    },
    RuleDoc {
        rule: Rule::UnsafeCode,
        rationale: "The workspace is #![forbid(unsafe_code)]; the lint is the belt to that \
                    braces for files the attribute does not cover yet.",
        scope: "every scanned file (the allowlist is empty).",
        pragma: "// footsteps-lint: allow(unsafe-code) — vetted FFI shim",
    },
    RuleDoc {
        rule: Rule::Pragma,
        rationale: "Pragmas are the in-source audit trail; reason-less, malformed, or stale \
                    annotations would rot into silent blanket waivers.",
        scope: "every footsteps-lint pragma comment.",
        pragma: "(not suppressible — fix the pragma instead)",
    },
];

/// Pragma situation of a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PragmaStatus {
    /// No applicable pragma: the finding is a violation.
    None,
    /// Suppressed by a valid pragma (reason recorded). Not a violation, but
    /// still reported in `--json` so annotations stay auditable.
    Allowed(String),
    /// A pragma exists but carries no reason.
    MissingReason,
    /// A pragma failed to parse (message recorded).
    Malformed(String),
    /// A valid pragma that suppressed nothing — stale, remove it.
    Unused,
}

/// One finding: a rule match (allowed or not) or a pragma problem.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The trimmed source line.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
    /// For transitive findings, the call chain from the shard root to the
    /// seed (`["apply_shard", "log_outcome", "Instant::now"]`); empty for
    /// lexical findings.
    pub chain: Vec<String>,
    /// Pragma situation.
    pub pragma: PragmaStatus,
}

impl Finding {
    /// Does this finding fail the build?
    pub fn is_violation(&self) -> bool {
        !matches!(self.pragma, PragmaStatus::Allowed(_))
    }
}

/// Container-family classification of one declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decl {
    /// `HashMap` / `HashSet`: iteration order is arbitrary.
    Hash,
    /// `BTreeMap` / `BTreeSet`: iteration order is deterministic.
    Btree,
    /// `f32` / `f64`: accumulation order changes the result.
    Float,
    /// Any other concrete type: known not-a-hash, known not-a-float.
    Other,
}

fn container_class(ty: &str) -> Option<Decl> {
    match ty {
        "HashMap" | "HashSet" => Some(Decl::Hash),
        "BTreeMap" | "BTreeSet" => Some(Decl::Btree),
        "f32" | "f64" => Some(Decl::Float),
        _ => None,
    }
}

/// Hash beats btree beats float beats other when one name is declared
/// several ways in the same file (conservative: the use gets flagged).
fn decl_rank(d: Decl) -> u8 {
    match d {
        Decl::Hash => 3,
        Decl::Btree => 2,
        Decl::Float => 1,
        Decl::Other => 0,
    }
}

/// Workspace-global table of *field* names declared with hash / btree /
/// float types: `name: HashMap<..>` at parenthesis depth zero and not
/// `let`-bound. Built over every scanned file before any file is checked,
/// so a hash field declared in `sim` and iterated from `aas` is caught.
/// `let` bindings and parameters are deliberately excluded — their uses are
/// file-local and the per-file local table sees them with full context.
/// On a collision, the riskier class wins (conservative).
#[derive(Debug, Default)]
pub struct SymbolTable {
    hash_names: Vec<String>,
    btree_names: Vec<String>,
    float_names: Vec<String>,
    nonfloat_names: Vec<String>,
}

impl SymbolTable {
    /// Record field declarations from one lexed file.
    pub fn collect(&mut self, lexed: &Lexed) {
        let tokens = &lexed.tokens;
        let mut paren = 0i32;
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            }
            if paren > 0
                || t.kind != TokenKind::Ident
                || !tokens.get(i + 1).is_some_and(|n| n.is_punct(":"))
                || after_let(tokens, i)
            {
                continue;
            }
            let Some(ty) = type_after_colon(tokens, i + 1) else { continue };
            match container_class(&ty.text) {
                Some(Decl::Hash) => {
                    if !self.hash_names.contains(&t.text) {
                        self.hash_names.push(t.text.clone());
                    }
                }
                Some(Decl::Btree) => {
                    if !self.btree_names.contains(&t.text) {
                        self.btree_names.push(t.text.clone());
                    }
                }
                Some(Decl::Float) => {
                    if !self.float_names.contains(&t.text) {
                        self.float_names.push(t.text.clone());
                    }
                }
                _ => {
                    if !self.nonfloat_names.contains(&t.text) {
                        self.nonfloat_names.push(t.text.clone());
                    }
                }
            }
        }
    }

    fn is_hash(&self, name: &str) -> bool {
        self.hash_names.iter().any(|n| n == name)
    }

    /// Known BTree-typed and *not* also hash-typed anywhere.
    fn is_btree_only(&self, name: &str) -> bool {
        self.btree_names.iter().any(|n| n == name) && !self.is_hash(name)
    }

    /// Declared `f32`/`f64` somewhere and never anything else.
    fn is_float_exclusive(&self, name: &str) -> bool {
        self.float_names.iter().any(|n| n == name)
            && !self.nonfloat_names.iter().any(|n| n == name)
    }
}

/// Per-file declaration table. Records every `name: Type` declaration
/// (field, parameter, or `let` — concrete CamelCase types and
/// primitives) and every `name = HashMap::new()`-shaped binding. Local
/// declarations *shadow* the global field table: a file whose `accounts`
/// is a `Vec` arena is not flagged just because some other crate has a
/// `HashSet` parameter of the same name.
#[derive(Debug, Default)]
struct LocalTable {
    names: Vec<(String, Decl)>,
}

impl LocalTable {
    fn record(&mut self, name: &str, decl: Decl) {
        match self.names.iter_mut().find(|(n, _)| n == name) {
            Some((_, existing)) => {
                if decl_rank(decl) > decl_rank(*existing) {
                    *existing = decl;
                }
            }
            None => self.names.push((name.to_string(), decl)),
        }
    }

    fn get(&self, name: &str) -> Option<Decl> {
        self.names.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }
}

fn local_table(tokens: &[Token]) -> LocalTable {
    let mut table = LocalTable::default();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else { break };
        if next.is_punct(":") {
            let Some(ty) = type_after_colon(tokens, i + 1) else { continue };
            match container_class(&ty.text) {
                Some(d) => table.record(&t.text, d),
                None if ty.text.starts_with(char::is_uppercase)
                    || PRIMITIVES.contains(&ty.text.as_str()) =>
                {
                    table.record(&t.text, Decl::Other);
                }
                None => {}
            }
        } else if next.is_punct("=") {
            // `name = [std::collections::]HashMap::new()` and friends. Only
            // container constructors are recorded — `name = some_call()`
            // tells us nothing about the type.
            let mut j = i + 2;
            while let Some(ft) = tokens.get(j) {
                if ft.kind != TokenKind::Ident {
                    break;
                }
                if let Some(d) = container_class(&ft.text) {
                    if d != Decl::Float {
                        table.record(&t.text, d);
                    }
                    break;
                }
                if (ft.is_ident("std") || ft.is_ident("collections") || ft.is_ident("alloc"))
                    && tokens.get(j + 1).is_some_and(|p| p.is_punct("::"))
                {
                    j += 2;
                    continue;
                }
                break;
            }
        }
    }
    table
}

/// Per-file name classifier shared by the lexical rules and the effect
/// seeding: local declarations shadow the global field table.
#[derive(Debug)]
pub(crate) struct NameClassifier<'a> {
    symbols: &'a SymbolTable,
    locals: LocalTable,
}

impl<'a> NameClassifier<'a> {
    pub(crate) fn new(symbols: &'a SymbolTable, tokens: &[Token]) -> Self {
        NameClassifier { symbols, locals: local_table(tokens) }
    }

    pub(crate) fn is_hash(&self, name: &str) -> bool {
        match self.locals.get(name) {
            Some(Decl::Hash) => true,
            Some(_) => false,
            None => self.symbols.is_hash(name),
        }
    }

    pub(crate) fn is_btree_only(&self, name: &str) -> bool {
        match self.locals.get(name) {
            Some(Decl::Btree) => true,
            Some(_) => false,
            None => self.symbols.is_btree_only(name),
        }
    }

    pub(crate) fn is_float(&self, name: &str) -> bool {
        match self.locals.get(name) {
            Some(Decl::Float) => true,
            Some(_) => false,
            None => self.symbols.is_float_exclusive(name),
        }
    }
}

/// A raw rule match before pragma resolution.
#[derive(Debug)]
pub(crate) struct RawMatch {
    pub(crate) rule: Rule,
    pub(crate) line: u32,
    pub(crate) message: String,
    pub(crate) chain: Vec<String>,
}

/// The deny rule a transitively-reached effect maps to inside a shard
/// path. `FLOAT_ACCUM` has its own root set, so it is not a shard rule.
pub(crate) fn deny_rule(bit: u8) -> Option<Rule> {
    match bit {
        bits::WALL_CLOCK => Some(Rule::WallClock),
        bits::AMBIENT_RNG => Some(Rule::AmbientRng),
        bits::ENV_READ => Some(Rule::EnvRead),
        bits::METRICS_WRITE => Some(Rule::ParallelMetrics),
        bits::PANICS => Some(Rule::PanicInShard),
        bits::ORDER_ITER => Some(Rule::NondetIter),
        _ => None,
    }
}

/// The rule a pragma must name to stop a *seed* from propagating.
pub(crate) fn seed_rule(bit: u8) -> Rule {
    deny_rule(bit).unwrap_or(Rule::FloatAccumOrder)
}

/// Lexical (per-file) rule matches. `symbols` must have been built over
/// the whole scan set.
pub(crate) fn lexical_matches(
    relpath: &str,
    lexed: &Lexed,
    symbols: &SymbolTable,
) -> Vec<RawMatch> {
    let class = classify(relpath);
    let tokens = &lexed.tokens;
    let names = NameClassifier::new(symbols, tokens);
    let test_ranges = test_item_ranges(tokens);
    let in_test = |i: usize| -> bool {
        class.section == Section::TestLike
            || test_ranges.iter().any(|&(s, e)| i >= s && i <= e)
    };
    let digest_src = |i: usize| -> bool {
        DIGEST_CRATES.contains(&class.krate.as_str())
            && class.section == Section::Src
            && !in_test(i)
    };

    let mut raw: Vec<RawMatch> = Vec::new();
    let push = |rule: Rule, line: u32, message: String, raw: &mut Vec<RawMatch>| {
        if !raw.iter().any(|m| m.rule == rule && m.line == line) {
            raw.push(RawMatch { rule, line, message, chain: Vec::new() });
        }
    };

    // --- nondet-iter ------------------------------------------------------
    for i in 0..tokens.len() {
        if !digest_src(i) {
            continue;
        }
        // Method calls: `.name(`.
        if tokens[i].is_punct(".")
            && i + 2 < tokens.len()
            && tokens[i + 1].kind == TokenKind::Ident
            && tokens[i + 2].is_punct("(")
        {
            let m = tokens[i + 1].text.as_str();
            let receiver = i
                .checked_sub(1)
                .map(|r| &tokens[r])
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.as_str());
            if ORDER_METHODS_ANY_RECEIVER.contains(&m) {
                let exempt = receiver.is_some_and(|r| names.is_btree_only(r));
                if !exempt {
                    push(
                        Rule::NondetIter,
                        tokens[i + 1].line,
                        format!("`.{m}()` observes hash-iteration order (receiver `{}`)",
                            receiver.unwrap_or("<expr>")),
                        &mut raw,
                    );
                }
            } else if ORDER_METHODS_KNOWN_RECEIVER.contains(&m) {
                if let Some(r) = receiver {
                    if names.is_hash(r) {
                        push(
                            Rule::NondetIter,
                            tokens[i + 1].line,
                            format!("`.{m}()` on `{r}`, which is HashMap/HashSet-typed in this workspace"),
                            &mut raw,
                        );
                    }
                }
            }
        }
        // `for … in <plain path ending in a hash-typed name> {`.
        if tokens[i].is_ident("for") {
            if let Some((line, name)) =
                for_in_hash_target(tokens, i, &|n| names.is_hash(n))
            {
                push(
                    Rule::NondetIter,
                    line,
                    format!("`for … in {name}` iterates a HashMap/HashSet-typed binding"),
                    &mut raw,
                );
            }
        }
    }

    // --- wall-clock -------------------------------------------------------
    if !WALL_CLOCK_CRATES.contains(&class.krate.as_str()) && !WALL_CLOCK_FILES.contains(&relpath) {
        for (i, t) in tokens.iter().enumerate() {
            if t.is_ident("Instant") || t.is_ident("SystemTime") {
                push(
                    Rule::WallClock,
                    t.line,
                    format!("`{}` outside crates/obs and crates/bench (use footsteps_obs spans/Stopwatch)", t.text),
                    &mut raw,
                );
            }
            if t.is_punct(".")
                && i + 2 < tokens.len()
                && tokens[i + 1].is_ident("elapsed")
                && tokens[i + 2].is_punct("(")
            {
                push(
                    Rule::WallClock,
                    tokens[i + 1].line,
                    "`.elapsed()` outside crates/obs and crates/bench".to_string(),
                    &mut raw,
                );
            }
        }
    }

    // --- ambient-rng ------------------------------------------------------
    if relpath != RNG_MODULE {
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            if AMBIENT_RNG_BANNED.contains(&t.text.as_str()) {
                push(
                    Rule::AmbientRng,
                    t.line,
                    format!("`{}` is ambient randomness; derive streams via sim::rng", t.text),
                    &mut raw,
                );
            }
            // Raw seeding is how tests pin fixtures, so only non-test
            // product code is held to the sim::rng derivation.
            if t.text == "seed_from_u64" && !in_test(i) {
                push(
                    Rule::AmbientRng,
                    t.line,
                    "raw `seed_from_u64` outside sim::rng; derive seeds via RngFactory/decision_rng"
                        .to_string(),
                    &mut raw,
                );
            }
        }
    }

    // --- env-read ---------------------------------------------------------
    if class.krate != "obs" && !ENV_READ_FILES.contains(&relpath) {
        for i in 0..tokens.len() {
            if class.section != Section::Src || in_test(i) {
                continue;
            }
            if tokens[i].is_ident("env")
                && i + 2 < tokens.len()
                && tokens[i + 1].is_punct("::")
                && (tokens[i + 2].is_ident("var") || tokens[i + 2].is_ident("var_os"))
            {
                push(
                    Rule::EnvRead,
                    tokens[i + 2].line,
                    "`env::var` outside the designated config/obs entry points".to_string(),
                    &mut raw,
                );
            }
        }
    }

    // --- parallel-metrics -------------------------------------------------
    if DIGEST_CRATES.contains(&class.krate.as_str()) && class.section == Section::Src {
        for (s, e) in plan_regions(tokens) {
            for i in s..=e.min(tokens.len().saturating_sub(1)) {
                if in_test(i) {
                    continue;
                }
                let t = &tokens[i];
                if t.kind == TokenKind::Ident && OBS_TOKENS.contains(&t.text.as_str()) {
                    push(
                        Rule::ParallelMetrics,
                        t.line,
                        format!("`{}` inside a parallel decision-phase shard path; metrics/timings are serial-only", t.text),
                        &mut raw,
                    );
                }
            }
        }
    }

    // --- unsafe-code ------------------------------------------------------
    if !UNSAFE_ALLOWLIST.contains(&relpath) {
        for t in tokens {
            if t.is_ident("unsafe") {
                push(
                    Rule::UnsafeCode,
                    t.line,
                    "`unsafe` outside the allowlist".to_string(),
                    &mut raw,
                );
            }
        }
    }

    raw
}

/// Interprocedural matches: transitive effect reach from the shard roots,
/// own-body panic sites in shard roots, and float accumulation in the
/// merge paths. Returns `(file index, match)` pairs.
pub(crate) fn graph_matches(
    graph: &CallGraph,
    table: &EffectTable,
    refs: &[(&str, &Lexed)],
) -> Vec<(usize, RawMatch)> {
    let relpaths: Vec<&str> = refs.iter().map(|(rel, _)| *rel).collect();
    let mut out: Vec<(usize, RawMatch)> = Vec::new();
    for (id, f) in graph.fns.iter().enumerate() {
        let rel = relpaths[f.file];
        let class = classify(rel);
        let tokens = &refs[f.file].1.tokens;
        let digest_src =
            DIGEST_CRATES.contains(&class.krate.as_str()) && class.section == Section::Src;

        // Shard regions owned by this function: its own body when it is a
        // shard function, plus any `plan_parallel(...)` argument lists
        // (which hold the per-item closures).
        let mut regions: Vec<(usize, usize)> = Vec::new();
        if digest_src {
            if let Some(body) = f.body {
                if PLAN_FNS.contains(&f.name.as_str()) {
                    regions.push(body);
                }
                for i in (body.0 + 1)..body.1 {
                    if (tokens[i].is_ident("plan_parallel")
                        || tokens[i].is_ident("plan_parallel_timed"))
                        && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
                    {
                        if let Some(end) = matching(tokens, i + 1, "(", ")") {
                            regions.push((i + 1, end));
                        }
                    }
                }
            }
        }
        let in_region =
            |at: usize| regions.iter().any(|&(s, e)| at > s && at < e);

        if !regions.is_empty() {
            // Transitive reach through resolved call edges.
            for site in &graph.calls[id] {
                if !in_region(site.at) {
                    continue;
                }
                let Resolution::Resolved(cands) = &site.resolution else { continue };
                let mut union = Effects::default();
                for &c in cands {
                    union = union.union(table.effects[c]);
                }
                for bit in union.iter() {
                    let Some(rule) = deny_rule(bit) else { continue };
                    let &c = cands
                        .iter()
                        .find(|&&c| table.effects[c].has(bit))
                        .expect("bit came from the union");
                    let mut chain = vec![f.display(), site.label.clone()];
                    chain.extend(table.chain(graph, c, bit));
                    let message = format!(
                        "shard path reaches {} via {}",
                        Effects::name(bit),
                        chain.join(" → ")
                    );
                    out.push((f.file, RawMatch { rule, line: site.line, message, chain }));
                }
            }
            // Own-body panic sites: `panic-in-shard` is purely graph-based,
            // so depth-0 seeds are reported here (the other effects'
            // depth-0 sites belong to the lexical rules).
            if !table.barred(graph, &relpaths, id, bits::PANICS) {
                for s in &table.seeds[id] {
                    if s.bit != bits::PANICS || !in_region(s.at) {
                        continue;
                    }
                    let chain = vec![f.display(), s.desc.clone()];
                    out.push((
                        f.file,
                        RawMatch {
                            rule: Rule::PanicInShard,
                            line: s.line,
                            message: format!(
                                "{} in a scoped parallel worker path ({}): a panic poisons the \
                                 whole std::thread::scope",
                                s.desc,
                                chain.join(" → ")
                            ),
                            chain,
                        },
                    ));
                }
            }
        }

        // --- float-accum-order ---------------------------------------
        let float_scope = (DIGEST_CRATES.contains(&class.krate.as_str())
            || class.krate == "obs")
            && class.section == Section::Src;
        if float_scope
            && FLOAT_MERGE_FNS.contains(&f.name.as_str())
            && !CANONICAL_MERGE_FILES.contains(&rel)
        {
            for s in &table.seeds[id] {
                if s.bit != bits::FLOAT_ACCUM {
                    continue;
                }
                let chain = vec![f.display(), s.desc.clone()];
                out.push((
                    f.file,
                    RawMatch {
                        rule: Rule::FloatAccumOrder,
                        line: s.line,
                        message: format!(
                            "{} in merge path `{}`: float accumulation outside the \
                             canonical-order helpers (analysis::stats) is order-sensitive",
                            s.desc,
                            f.display()
                        ),
                        chain,
                    },
                ));
            }
            for site in &graph.calls[id] {
                let Resolution::Resolved(cands) = &site.resolution else { continue };
                let Some(&c) =
                    cands.iter().find(|&&c| table.effects[c].has(bits::FLOAT_ACCUM))
                else {
                    continue;
                };
                let mut chain = vec![f.display(), site.label.clone()];
                chain.extend(table.chain(graph, c, bits::FLOAT_ACCUM));
                out.push((
                    f.file,
                    RawMatch {
                        rule: Rule::FloatAccumOrder,
                        line: site.line,
                        message: format!(
                            "merge path reaches order-sensitive float accumulation via {}",
                            chain.join(" → ")
                        ),
                        chain,
                    },
                ));
            }
        }
    }
    out
}

/// Apply pragmas to raw matches and report pragma problems.
pub(crate) fn resolve_pragmas(
    relpath: &str,
    source: &str,
    pragmas: &[Pragma],
    raw: Vec<RawMatch>,
) -> Vec<Finding> {
    let mut used = vec![false; pragmas.len()];
    let snippet = |line: u32| -> String {
        source
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
            .to_string()
    };

    let mut out: Vec<Finding> = Vec::new();
    let mut seen: Vec<(Rule, u32)> = Vec::new();
    for m in raw {
        if seen.contains(&(m.rule, m.line)) {
            continue;
        }
        seen.push((m.rule, m.line));
        let mut status = PragmaStatus::None;
        for (pi, p) in pragmas.iter().enumerate() {
            if p.covers != m.line || p.error.is_some() {
                continue;
            }
            let applies = p.rules.iter().any(|spec| {
                spec.rule == m.rule.name()
                    && match &spec.via {
                        None => true,
                        Some(via) => m.chain.iter().any(|link| {
                            link == via
                                || link.ends_with(&format!("::{via}"))
                                || link.starts_with(&format!("{via}::"))
                        }),
                    }
            });
            if !applies {
                continue;
            }
            match &p.reason {
                Some(reason) => {
                    status = PragmaStatus::Allowed(reason.clone());
                    used[pi] = true;
                }
                None => {
                    // Reason-less pragmas suppress nothing, but "used" is
                    // still marked so the error reported is the missing
                    // reason, not staleness.
                    status = PragmaStatus::None;
                    used[pi] = true;
                }
            }
            break;
        }
        out.push(Finding {
            rule: m.rule,
            file: relpath.to_string(),
            line: m.line,
            snippet: snippet(m.line),
            message: m.message,
            chain: m.chain,
            pragma: status,
        });
    }

    for (pi, p) in pragmas.iter().enumerate() {
        let (status, message) = if let Some(err) = &p.error {
            (PragmaStatus::Malformed(err.clone()), format!("malformed pragma: {err}"))
        } else if p.reason.is_none() {
            (
                PragmaStatus::MissingReason,
                "pragma without a reason; write `allow(<rule>) — <why this site is safe>`"
                    .to_string(),
            )
        } else if !used[pi] {
            (
                PragmaStatus::Unused,
                "stale pragma: it suppresses no finding on its line; remove it".to_string(),
            )
        } else {
            continue;
        };
        out.push(Finding {
            rule: Rule::Pragma,
            file: relpath.to_string(),
            line: p.line,
            snippet: snippet(p.line),
            message,
            chain: Vec::new(),
            pragma: status,
        });
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Token ranges of the parallel decision-phase shard paths: bodies of
/// [`PLAN_FNS`] functions and the argument lists of `plan_parallel(...)`
/// calls (which contain the per-item plan closures).
fn plan_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is_ident("fn")
            && i + 1 < tokens.len()
            && PLAN_FNS.contains(&tokens[i + 1].text.as_str())
        {
            // Find the body `{` at bracket depth 0, then its match.
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if t.is_punct("{") && depth == 0 {
                    if let Some(end) = matching(tokens, j, "{", "}") {
                        out.push((j, end));
                    }
                    break;
                } else if t.is_punct(";") && depth == 0 {
                    break;
                }
                j += 1;
            }
        }
        if (tokens[i].is_ident("plan_parallel") || tokens[i].is_ident("plan_parallel_timed"))
            && i + 1 < tokens.len()
            && tokens[i + 1].is_punct("(")
        {
            if let Some(end) = matching(tokens, i + 1, "(", ")") {
                out.push((i + 1, end));
            }
        }
    }
    out
}

/// For a `for` keyword at `at`, return `(line, name)` when the iterated
/// expression is a plain path (`[&][mut] a.b::c.d`) whose final identifier
/// is hash-typed. Expressions containing calls, literals, or indexing are
/// left to the method-based detection.
pub(crate) fn for_in_hash_target(
    tokens: &[Token],
    at: usize,
    is_hash: &dyn Fn(&str) -> bool,
) -> Option<(u32, String)> {
    // Locate `in` at pattern depth 0, bailing at `{`/`;` (e.g. `impl … for`).
    let mut depth = 0i32;
    let mut j = at + 1;
    let in_at = loop {
        let t = tokens.get(j)?;
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if (t.is_punct("{") || t.is_punct(";")) && depth <= 0 {
            return None;
        } else if t.is_ident("in") && depth == 0 {
            break j;
        }
        j += 1;
    };
    // Collect the expression up to the loop body `{`.
    let mut expr: Vec<&Token> = Vec::new();
    let mut k = in_at + 1;
    loop {
        let t = tokens.get(k)?;
        if t.is_punct("{") {
            break;
        }
        expr.push(t);
        k += 1;
    }
    let plain = expr.iter().all(|t| {
        t.kind == TokenKind::Ident || t.is_punct("&") || t.is_punct(".") || t.is_punct("::")
    });
    if !plain || expr.is_empty() {
        return None;
    }
    let last = expr.last()?;
    if last.kind == TokenKind::Ident && is_hash(&last.text) {
        Some((tokens[at].line, last.text.clone()))
    } else {
        None
    }
}
