//! The `checkpoint-schema` rule: structural digests of every
//! `#[derive(Deserialize)]` type reachable from the sweep checkpoint
//! envelope, pinned in a committed `lint-schema.lock`.
//!
//! `footsteps-sweep` resumes multi-hour runs from phase-boundary
//! checkpoints; a silently changed field (renamed, reordered, retyped)
//! makes an old checkpoint deserialize into different semantics — or not
//! at all — without any test noticing until a resume is attempted. The
//! rule makes that break loud at lint time: each reachable `Deserialize`
//! type is digested over its token stream (field names, order, types,
//! `#[serde]` attributes — everything after the derive attribute through
//! the end of the item), and the digests live in `lint-schema.lock` at
//! the workspace root. A digest change is only legal together with a
//! `SCHEMA_VERSION` bump in `crates/sweep/src/checkpoint.rs` (and a lock
//! regeneration via `--schema-write`); the version bump is what makes
//! old checkpoints fail fast with `SweepError::VersionMismatch` instead
//! of resuming wrongly.

use crate::graph::{classify, matching, test_item_ranges, Section};
use crate::lexer::Lexed;
use crate::lexer::{Token, TokenKind};
use crate::rules::{RawMatch, Rule};
use std::collections::BTreeMap;

/// The committed lock file at the workspace root.
pub const LOCK_FILE: &str = "lint-schema.lock";

/// The file defining the checkpoint envelope and `SCHEMA_VERSION`.
pub const CHECKPOINT_FILE: &str = "crates/sweep/src/checkpoint.rs";

/// The `lint-schema.lock` situation for one lint run.
#[derive(Debug, Clone)]
pub enum LockState {
    /// Schema checking disabled (in-memory fixture runs).
    Skip,
    /// Workspace run, lock file missing — an error once a checkpoint
    /// envelope exists.
    Absent,
    /// Workspace run with the lock file's contents.
    Present(String),
}

/// One digested `#[derive(Deserialize)]` type.
#[derive(Debug)]
pub struct TypeSchema {
    /// Type name.
    pub name: String,
    /// Index of the defining file in the scan set.
    pub file: usize,
    /// 1-based line of the `struct`/`enum` keyword.
    pub line: u32,
    /// FNV-1a digest of the structural token stream.
    pub digest: u64,
    /// Identifiers referenced in the body (for envelope reachability).
    refs: Vec<String>,
}

/// The current schema surface: version constant + reachable type digests.
#[derive(Debug)]
pub struct SchemaSnapshot {
    /// `SCHEMA_VERSION` parsed from the checkpoint file (0 if absent).
    pub schema_version: u32,
    /// 1-based line of the `SCHEMA_VERSION` constant.
    pub version_line: u32,
    /// Reachable types, sorted by name.
    pub types: Vec<TypeSchema>,
    /// Scan-set index of [`CHECKPOINT_FILE`].
    pub checkpoint_file: usize,
}

/// 64-bit FNV-1a (same construction as `footsteps-sweep` uses for its
/// scenario hash; duplicated because the lint stays dependency-free).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Extract the current schema snapshot, or `None` when the scan set has
/// no checkpoint file (fixture corpora).
pub fn snapshot(refs: &[(&str, &Lexed)]) -> Option<SchemaSnapshot> {
    let checkpoint_file = refs.iter().position(|(rel, _)| *rel == CHECKPOINT_FILE)?;
    let ck_tokens = &refs[checkpoint_file].1.tokens;

    // `pub const SCHEMA_VERSION: u32 = N;`
    let (schema_version, version_line) = ck_tokens
        .iter()
        .enumerate()
        .find(|(_, t)| t.is_ident("SCHEMA_VERSION"))
        .and_then(|(i, t)| {
            let num = ck_tokens[i..].iter().take(8).find(|n| n.kind == TokenKind::Number)?;
            Some((num.text.parse::<u32>().ok()?, t.line))
        })
        .unwrap_or((0, 1));

    // All Deserialize types in product code, by name.
    let mut all: BTreeMap<String, TypeSchema> = BTreeMap::new();
    for (fi, (rel, lexed)) in refs.iter().enumerate() {
        if classify(rel).section != Section::Src {
            continue;
        }
        for ty in deserialize_types(&lexed.tokens, fi) {
            all.entry(ty.name.clone()).or_insert(ty);
        }
    }

    // Reachability: roots are the Deserialize types the checkpoint file
    // mentions by name; closure over body-referenced type names.
    let mut reach: Vec<String> = Vec::new();
    let mut queue: Vec<String> = all
        .keys()
        .filter(|name| ck_tokens.iter().any(|t| t.is_ident(name)))
        .cloned()
        .collect();
    while let Some(name) = queue.pop() {
        if reach.contains(&name) {
            continue;
        }
        reach.push(name.clone());
        for r in &all[&name].refs {
            if all.contains_key(r) && !reach.contains(r) {
                queue.push(r.clone());
            }
        }
    }
    reach.sort();

    let types = reach.into_iter().filter_map(|n| all.remove(&n)).collect();
    Some(SchemaSnapshot { schema_version, version_line, types, checkpoint_file })
}

/// Digest every `#[derive(.. Deserialize ..)]` struct/enum in one file's
/// non-test tokens.
fn deserialize_types(tokens: &[Token], file: usize) -> Vec<TypeSchema> {
    let test_ranges = test_item_ranges(tokens);
    let in_test = |i: usize| test_ranges.iter().any(|&(s, e)| i >= s && i <= e);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")))
            || in_test(i)
        {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching(tokens, i + 1, "[", "]") else { break };
        let attr = &tokens[i + 2..attr_end];
        let is_derive_deser = attr.first().is_some_and(|t| t.is_ident("derive"))
            && attr.iter().any(|t| t.is_ident("Deserialize"));
        if !is_derive_deser {
            i = attr_end + 1;
            continue;
        }
        // The structural span: everything after the derive attribute
        // (further attributes like `#[serde(...)]`, visibility, the item
        // keyword, name, generics, body) through the item's end.
        let start = attr_end + 1;
        let mut j = start;
        let mut name = None;
        let mut line = tokens[i].line;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("#") && tokens.get(j + 1).is_some_and(|n| n.is_punct("[")) {
                match matching(tokens, j + 1, "[", "]") {
                    Some(e) => {
                        j = e + 1;
                        continue;
                    }
                    None => break,
                }
            }
            if t.is_ident("struct") || t.is_ident("enum") {
                line = t.line;
                name = tokens.get(j + 1).filter(|n| n.kind == TokenKind::Ident).map(|n| n.text.clone());
                break;
            }
            if !(t.is_ident("pub")
                || t.is_punct("(")
                || t.is_punct(")")
                || t.is_ident("crate")
                || t.is_ident("super"))
            {
                break; // not a type item (e.g. derive on something else)
            }
            j += 1;
        }
        let Some(name) = name else {
            i = attr_end + 1;
            continue;
        };
        // Item end: matching `}` of the first top-level `{`, or `;` for
        // unit/tuple structs.
        let mut depth = 0i32;
        let mut k = j + 2;
        let mut end = tokens.len().saturating_sub(1);
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                end = matching(tokens, k, "{", "}").unwrap_or(end);
                break;
            } else if t.is_punct(";") && depth == 0 {
                end = k;
                break;
            }
            k += 1;
        }
        let span = &tokens[start..=end.min(tokens.len() - 1)];
        let shape: String =
            span.iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ");
        let refs = span
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text.starts_with(char::is_uppercase))
            .map(|t| t.text.clone())
            .collect();
        out.push(TypeSchema { name, file, line, digest: fnv1a(shape.as_bytes()), refs });
        i = end + 1;
    }
    out
}

/// Render the lock file for the current snapshot.
pub fn render_lock(snap: &SchemaSnapshot) -> String {
    let mut out = String::from(
        "# footsteps-lint checkpoint-schema lock (DESIGN.md §6).\n\
         # Regenerate with `footsteps-lint --schema-write` after bumping\n\
         # SCHEMA_VERSION in crates/sweep/src/checkpoint.rs.\n",
    );
    out.push_str("version 1\n");
    out.push_str(&format!("schema_version {}\n", snap.schema_version));
    for t in &snap.types {
        out.push_str(&format!("type {} 0x{:016x}\n", t.name, t.digest));
    }
    out
}

/// Parsed lock file: recorded schema_version + per-type digests.
struct ParsedLock {
    schema_version: Option<u32>,
    types: BTreeMap<String, u64>,
}

fn parse_lock(text: &str) -> ParsedLock {
    let mut out = ParsedLock { schema_version: None, types: BTreeMap::new() };
    for l in text.lines() {
        let l = l.trim();
        if let Some(rest) = l.strip_prefix("schema_version ") {
            out.schema_version = rest.trim().parse().ok();
        } else if let Some(rest) = l.strip_prefix("type ") {
            let mut parts = rest.split_whitespace();
            if let (Some(name), Some(hex)) = (parts.next(), parts.next()) {
                if let Ok(d) = u64::from_str_radix(hex.trim_start_matches("0x"), 16) {
                    out.types.insert(name.to_string(), d);
                }
            }
        }
    }
    out
}

/// Check the current snapshot against the lock, producing raw matches
/// (attached to the drifting type's file, or the checkpoint file for
/// global problems).
pub(crate) fn check(refs: &[(&str, &Lexed)], lock: &LockState) -> Vec<(usize, RawMatch)> {
    if matches!(lock, LockState::Skip) {
        return Vec::new();
    }
    let Some(snap) = snapshot(refs) else { return Vec::new() };
    let mut out = Vec::new();
    let at_ck = |line: u32, message: String, out: &mut Vec<(usize, RawMatch)>| {
        out.push((
            snap.checkpoint_file,
            RawMatch { rule: Rule::CheckpointSchema, line, message, chain: Vec::new() },
        ));
    };
    let text = match lock {
        LockState::Present(t) => t,
        _ => {
            at_ck(
                snap.version_line,
                format!(
                    "{LOCK_FILE} is missing: the checkpoint envelope's Deserialize types are \
                     unpinned; run `footsteps-lint --schema-write` and commit the lock"
                ),
                &mut out,
            );
            return out;
        }
    };
    let parsed = parse_lock(text);
    if parsed.schema_version != Some(snap.schema_version) {
        at_ck(
            snap.version_line,
            format!(
                "SCHEMA_VERSION is {} but {LOCK_FILE} records {}; regenerate the lock with \
                 `footsteps-lint --schema-write`",
                snap.schema_version,
                parsed
                    .schema_version
                    .map_or("nothing".to_string(), |v| v.to_string())
            ),
            &mut out,
        );
        return out;
    }
    for t in &snap.types {
        match parsed.types.get(&t.name) {
            Some(&locked) if locked == t.digest => {}
            Some(&locked) => out.push((
                t.file,
                RawMatch {
                    rule: Rule::CheckpointSchema,
                    line: t.line,
                    message: format!(
                        "checkpoint schema drift: `{}` digests 0x{:016x} but {LOCK_FILE} pins \
                         0x{locked:016x} — old checkpoints would mis-resume; bump SCHEMA_VERSION \
                         in {CHECKPOINT_FILE} and run `footsteps-lint --schema-write`",
                        t.name, t.digest
                    ),
                    chain: Vec::new(),
                },
            )),
            None => out.push((
                t.file,
                RawMatch {
                    rule: Rule::CheckpointSchema,
                    line: t.line,
                    message: format!(
                        "`{}` is reachable from the checkpoint envelope but not pinned in \
                         {LOCK_FILE}; run `footsteps-lint --schema-write`",
                        t.name
                    ),
                    chain: Vec::new(),
                },
            )),
        }
    }
    for name in parsed.types.keys() {
        if !snap.types.iter().any(|t| &t.name == name) {
            at_ck(
                snap.version_line,
                format!(
                    "`{name}` is pinned in {LOCK_FILE} but no longer reachable from the \
                     checkpoint envelope; run `footsteps-lint --schema-write`"
                ),
                &mut out,
            );
        }
    }
    out
}
