//! Workspace file discovery: which `.rs` files get linted.
//!
//! The scan set is `crates/<k>/{src,tests,examples,benches}` plus the
//! `tests/` integration member (`tests/src`, `tests/tests`), recursively,
//! sorted for deterministic output. `target/`, `vendor/` (work-alike
//! crates are third-party API slices, not product code) and any directory
//! named `fixtures` (the lint's own seeded-violation corpus) are skipped.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories under a crate root that are scanned.
const CRATE_SECTIONS: &[&str] = &["src", "tests", "examples", "benches"];

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// All files to lint, as `(workspace-relative path, absolute path)`,
/// sorted by relative path.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out: Vec<(String, PathBuf)> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let krate = entry?.path();
            if !krate.is_dir() {
                continue;
            }
            for section in CRATE_SECTIONS {
                collect_rs(&krate.join(section), root, &mut out)?;
            }
        }
    }
    for section in ["src", "tests"] {
        collect_rs(&root.join("tests").join(section), root, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    out: &mut Vec<(String, PathBuf)>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}
