// Fixture: ambient-rng. Ambient sources are banned everywhere; raw
// seeding is banned in non-test code only (tests pin fixtures with it).
pub fn jitter() -> u64 {
    let mut r = thread_rng();
    let _ = SmallRng::seed_from_u64(99);
    let _ = &mut r;
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn pinning_a_fixture_seed_is_fine() {
        let _ = SmallRng::seed_from_u64(7);
    }
}
