// Fixture: declares a hash-typed field consumed from cross_file_b.rs.
use std::collections::HashSet;

pub struct Roster {
    pub shared_members: HashSet<u32>,
}
