// Fixture: iterates a field whose HashSet declaration lives in another
// file (cross_file_a.rs) — the global field table must catch this.
pub fn bad_cross_file(roster: &crate::Roster) -> Vec<u32> {
    roster.shared_members.iter().copied().collect()
}
