// Fixture: env-read. A violation at a detect path, clean when linted as
// crates/core/src/scenario.rs (the designated config entry point).
pub fn knob() -> Option<String> {
    std::env::var("FOOTSTEPS_HACK").ok()
}
