//! Fixture: float accumulation in merge paths. Direct `+=` on a float
//! field, the `.sum::<f64>()` form, a one-call-deep helper, and a
//! non-merge function that accumulates freely.

pub struct Welford {
    pub mean: f64,
    pub m2: f64,
    pub n: u64,
}

fn add_sample(mean: &mut f64, x: f64) {
    *mean += x;
}

impl Welford {
    pub fn merge(&mut self, other: &Welford) {
        self.n += other.n;
        self.mean += other.mean;
        self.m2 += other.m2;
    }
}

pub fn merge_inbound(xs: &[f64]) -> f64 {
    xs.iter().copied().sum::<f64>()
}

pub fn apply_delta(acc: &mut f64, xs: &[f64]) {
    for &x in xs.iter() {
        add_sample(acc, x);
    }
}

pub fn scratch_total(total: &mut f64, xs: &[f64]) {
    for &x in xs.iter() {
        *total += x;
    }
}
