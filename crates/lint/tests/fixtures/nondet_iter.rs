// Fixture: nondet-iter. Linted as if at crates/sim/src/nondet_iter.rs.
use std::collections::{BTreeMap, HashMap};

pub struct Book {
    pub by_owner: HashMap<u32, u32>,
    pub sorted: BTreeMap<u32, u32>,
    pub dense: Vec<u32>,
}

impl Book {
    pub fn bad_values(&self) -> u32 {
        self.by_owner.values().sum()
    }

    pub fn allowed_values(&self) -> u32 {
        // footsteps-lint: allow(nondet-iter) — order-insensitive sum
        self.by_owner.values().sum()
    }

    pub fn ok_btree(&self) -> u32 {
        self.sorted.values().sum()
    }

    pub fn ok_vec(&self) -> u32 {
        self.dense.iter().sum()
    }

    pub fn bad_for(&self) -> usize {
        let mut n = 0;
        for (_k, _v) in &self.by_owner {
            n += 1;
        }
        n
    }
}
