//! Fixture: panic reachability from scoped parallel workers — the direct
//! site, the one-call-deep site, the indexing exemption, the
//! `PANIC_FREE_FNS` allowlist, and chain-qualified (`via`) pragmas.

fn checked(xs: &[u64]) -> u64 {
    xs.first().copied().expect("non-empty")
}

/// Same name as the allowlisted product helper: its assert is vetted and
/// must not propagate.
fn stable_bin(key: u64, bins: u32) -> u32 {
    assert!(bins > 0, "bins must be positive");
    (key % u64::from(bins)) as u32
}

pub fn apply_shard(xs: &[u64]) -> u64 {
    let direct = xs.first().unwrap();
    let indexed = xs[0];
    let binned = u64::from(stable_bin(indexed, 10));
    direct + indexed + binned + checked(xs)
}

pub fn route_day(xs: &[u64]) -> u64 {
    // footsteps-lint: allow(panic-in-shard via checked) — input validated at ingest
    checked(xs)
}

pub fn plan_member(xs: &[u64]) -> u64 {
    // footsteps-lint: allow(panic-in-shard via unrelated_helper) — names the wrong link
    checked(xs)
}
