// Fixture: parallel-metrics. Observability access inside a plan, route, or
// shard-apply function body is a violation; the same access on the serial
// merge path is fine.
pub fn plan_parallel(items: &[u32]) -> Vec<u32> {
    let out = items.to_vec();
    metrics.incr("aas.plans");
    out
}

pub fn route_day(plans: &[u32]) -> Vec<u32> {
    let ops = plans.to_vec();
    obs.metrics.incr("aas.routed");
    ops
}

pub fn apply_shard(ops: &[u32]) -> u32 {
    let delivered = ops.iter().sum();
    timings.record("aas.apply.shard", 0.0);
    delivered
}

pub fn serial_merge() {
    metrics.incr("aas.apply");
}

pub fn caller(items: &[u32]) -> Vec<u32> {
    // The timed harness's argument list is a shard path too: the plan
    // closure runs on worker threads.
    let (out, _lanes) = plan_parallel_timed(items, 4, |x| {
        metrics.incr("aas.timed_plans");
        *x
    });
    out
}
