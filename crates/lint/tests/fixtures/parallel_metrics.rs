// Fixture: parallel-metrics. Observability access inside a plan function
// body is a violation; the same access on the serial apply path is fine.
pub fn plan_parallel(items: &[u32]) -> Vec<u32> {
    let out = items.to_vec();
    metrics.incr("aas.plans");
    out
}

pub fn serial_apply() {
    metrics.incr("aas.apply");
}
