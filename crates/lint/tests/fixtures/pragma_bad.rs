// Fixture: pragma problems. A reason-less pragma suppresses nothing and
// is itself flagged; an unknown rule is malformed; a pragma covering a
// clean line is stale.
use std::collections::HashMap;

pub struct S {
    pub m: HashMap<u32, u32>,
}

impl S {
    pub fn no_reason(&self) -> u32 {
        // footsteps-lint: allow(nondet-iter)
        self.m.values().sum()
    }

    pub fn unknown_rule(&self) -> u32 {
        // footsteps-lint: allow(made-up-rule) — not a rule we have
        self.m.values().sum()
    }
}

// footsteps-lint: allow(nondet-iter) — nothing on the next line to suppress
pub fn stale() {}
