//! Fixture: effects one call deep from a shard path. Every helper here is
//! clean *at the `apply_shard` call site* under per-file lexical scoping;
//! only the call-graph propagation can flag the shard function itself.

use std::collections::HashMap;

/// Hash-typed field so the nondet-iter helper has a known receiver.
pub struct ShardState {
    pub counts: HashMap<u64, u64>,
}

fn log_outcome() -> u128 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos()
}

fn jitter() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

fn read_knob() -> bool {
    std::env::var("FOOTSTEPS_KNOB").is_ok()
}

fn bump_counter(metrics: &mut u64) {
    *metrics += 1;
}

fn total(s: &ShardState) -> u64 {
    s.counts.values().sum()
}

pub fn apply_shard(s: &mut ShardState) -> u64 {
    let nanos = log_outcome();
    let j = jitter();
    let knob = read_knob();
    let mut c = 0u64;
    bump_counter(&mut c);
    let t = total(s);
    nanos as u64 + j + u64::from(knob) + c + t
}
