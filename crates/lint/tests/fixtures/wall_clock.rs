// Fixture: wall-clock. A violation at a sim/aas path, clean under
// crates/obs (the test lints the same content at both relpaths).
pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    let _ = t.elapsed();
    0
}
