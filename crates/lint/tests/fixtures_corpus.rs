//! Per-rule behaviour pinned against the fixture corpus, plus the meta
//! test that the live workspace is clean via the exact entry point CI
//! runs (`lint_workspace`).
//!
//! Fixtures are loaded with `include_str!` and linted under *synthetic*
//! relative paths so each test can place the same content inside or
//! outside a rule's scope. The fixture directory itself is skipped by
//! the walker, so none of this corpus leaks into the workspace scan.

use std::path::Path;

use footsteps_lint::{lint_files, lint_workspace, violation_count, Finding, PragmaStatus, Rule};

const NONDET_ITER: &str = include_str!("fixtures/nondet_iter.rs");
const CROSS_FILE_A: &str = include_str!("fixtures/cross_file_a.rs");
const CROSS_FILE_B: &str = include_str!("fixtures/cross_file_b.rs");
const WALL_CLOCK: &str = include_str!("fixtures/wall_clock.rs");
const AMBIENT_RNG: &str = include_str!("fixtures/ambient_rng.rs");
const ENV_READ: &str = include_str!("fixtures/env_read.rs");
const PARALLEL_METRICS: &str = include_str!("fixtures/parallel_metrics.rs");
const UNSAFE_CODE: &str = include_str!("fixtures/unsafe_code.rs");
const PRAGMA_BAD: &str = include_str!("fixtures/pragma_bad.rs");
const TRANSITIVE_SHARD: &str = include_str!("fixtures/transitive_shard.rs");
const PANIC_IN_SHARD: &str = include_str!("fixtures/panic_in_shard.rs");
const FLOAT_ACCUM: &str = include_str!("fixtures/float_accum.rs");

/// 1-based line of the first fixture line containing `needle`.
fn line_of(fixture: &str, needle: &str) -> u32 {
    fixture
        .lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("fixture has no line containing {needle:?}")) as u32
        + 1
}

/// Lint one in-memory file at a synthetic workspace-relative path.
fn lint_one(relpath: &str, source: &str) -> Vec<Finding> {
    lint_files(&[(relpath.to_string(), source.to_string())])
}

fn by_rule(findings: &[Finding], rule: Rule) -> Vec<&Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn nondet_iter_flags_hash_iteration_in_digest_src() {
    let findings = lint_one("crates/sim/src/nondet_iter.rs", NONDET_ITER);
    let hits = by_rule(&findings, Rule::NondetIter);
    // `.values()` on the hash field, the pragma-allowed copy, and the
    // `for … in` loop — nothing on the BTreeMap or Vec receivers.
    assert_eq!(hits.len(), 3, "findings: {findings:#?}");
    let violations: Vec<_> = hits.iter().filter(|f| f.is_violation()).collect();
    assert_eq!(violations.len(), 2, "findings: {findings:#?}");
    assert!(violations.iter().any(|f| f.snippet.contains("for (_k, _v)")));
    // The annotated site is reported but does not fail the build, and
    // its reason survives into the finding.
    let allowed: Vec<_> = hits
        .iter()
        .filter(|f| matches!(f.pragma, PragmaStatus::Allowed(_)))
        .collect();
    assert_eq!(allowed.len(), 1);
    match &allowed[0].pragma {
        PragmaStatus::Allowed(reason) => assert!(reason.contains("order-insensitive")),
        other => panic!("expected Allowed, got {other:?}"),
    }
    // The pragma was consumed, so no staleness finding rides along.
    assert!(by_rule(&findings, Rule::Pragma).is_empty(), "findings: {findings:#?}");
}

#[test]
fn nondet_iter_inactive_outside_digest_crates() {
    // Same content in a non-digest crate: the iteration rule stays quiet.
    let findings = lint_one("crates/lint/src/nondet_iter.rs", NONDET_ITER);
    assert!(by_rule(&findings, Rule::NondetIter).is_empty(), "findings: {findings:#?}");
}

#[test]
fn nondet_iter_sees_field_types_across_files() {
    // The HashSet declaration lives in file A; the iteration in file B.
    let files = vec![
        ("crates/sim/src/cross_file_a.rs".to_string(), CROSS_FILE_A.to_string()),
        ("crates/sim/src/cross_file_b.rs".to_string(), CROSS_FILE_B.to_string()),
    ];
    let findings = lint_files(&files);
    let hits = by_rule(&findings, Rule::NondetIter);
    assert_eq!(hits.len(), 1, "findings: {findings:#?}");
    assert_eq!(hits[0].file, "crates/sim/src/cross_file_b.rs");
    assert!(hits[0].message.contains("shared_members"));
    // Without file A in the scan set the receiver's type is unknown and
    // `.iter()` on it cannot be blamed.
    let alone = lint_one("crates/sim/src/cross_file_b.rs", CROSS_FILE_B);
    assert!(by_rule(&alone, Rule::NondetIter).is_empty(), "findings: {alone:#?}");
}

#[test]
fn wall_clock_confined_to_obs_and_bench() {
    let outside = lint_one("crates/aas/src/wall_clock.rs", WALL_CLOCK);
    let hits = by_rule(&outside, Rule::WallClock);
    // The type name and the `.elapsed()` call are separate findings.
    assert_eq!(hits.len(), 2, "findings: {outside:#?}");
    assert!(outside.iter().all(|f| f.is_violation()));

    for exempt in ["crates/obs/src/wall_clock.rs", "crates/bench/src/wall_clock.rs"] {
        let findings = lint_one(exempt, WALL_CLOCK);
        assert!(findings.is_empty(), "{exempt}: {findings:#?}");
    }
}

#[test]
fn ambient_rng_banned_outside_rng_module() {
    let findings = lint_one("crates/sim/src/ambient_rng.rs", AMBIENT_RNG);
    let hits = by_rule(&findings, Rule::AmbientRng);
    // The ambient source and the raw non-test seed; the seed inside
    // `#[cfg(test)]` is how tests pin fixtures and stays legal.
    assert_eq!(hits.len(), 2, "findings: {findings:#?}");
    assert!(hits.iter().any(|f| f.message.contains("ambient randomness")));
    assert!(hits.iter().any(|f| f.message.contains("seed_from_u64")));
    assert!(!hits.iter().any(|f| f.line >= 10), "test-mod seed was flagged: {findings:#?}");

    // The one module allowed to construct RNGs from raw seeds.
    let in_rng = lint_one("crates/sim/src/rng.rs", AMBIENT_RNG);
    assert!(by_rule(&in_rng, Rule::AmbientRng).is_empty(), "findings: {in_rng:#?}");
}

#[test]
fn env_read_confined_to_entry_points() {
    let outside = lint_one("crates/detect/src/env_read.rs", ENV_READ);
    let hits = by_rule(&outside, Rule::EnvRead);
    assert_eq!(hits.len(), 1, "findings: {outside:#?}");
    assert!(hits[0].is_violation());

    // The designated config entry point, and test-like code, read freely.
    for exempt in ["crates/core/src/scenario.rs", "crates/detect/tests/env_read.rs"] {
        let findings = lint_one(exempt, ENV_READ);
        assert!(by_rule(&findings, Rule::EnvRead).is_empty(), "{exempt}: {findings:#?}");
    }
}

#[test]
fn parallel_metrics_denied_in_plan_paths() {
    let findings = lint_one("crates/aas/src/parallel_metrics.rs", PARALLEL_METRICS);
    let hits = by_rule(&findings, Rule::ParallelMetrics);
    // One recording inside each of `plan_parallel`, `route_day` and
    // `apply_shard`, plus the closure handed to `plan_parallel_timed`;
    // the serial merge is fine.
    assert_eq!(hits.len(), 4, "findings: {findings:#?}");
    assert!(hits.iter().any(|f| f.snippet.contains("aas.plans")));
    assert!(hits.iter().any(|f| f.snippet.contains("aas.routed")));
    assert!(hits.iter().any(|f| f.snippet.contains("aas.apply.shard")));
    assert!(hits.iter().any(|f| f.snippet.contains("aas.timed_plans")));
    assert!(hits.iter().all(|f| f.is_violation()));
}

#[test]
fn unsafe_code_always_flagged() {
    // Even test-like sections are held to the (empty) allowlist.
    for path in ["crates/sim/src/unsafe_code.rs", "crates/lint/tests/unsafe_code.rs"] {
        let findings = lint_one(path, UNSAFE_CODE);
        let hits = by_rule(&findings, Rule::UnsafeCode);
        assert_eq!(hits.len(), 1, "{path}: {findings:#?}");
        assert!(hits[0].is_violation());
    }
}

#[test]
fn pragma_problems_are_findings() {
    let findings = lint_one("crates/sim/src/pragma_bad.rs", PRAGMA_BAD);
    // Both `.values()` sites still fail the build: a reason-less pragma
    // and an unknown-rule pragma suppress nothing.
    let iter_hits = by_rule(&findings, Rule::NondetIter);
    assert_eq!(iter_hits.len(), 2, "findings: {findings:#?}");
    assert!(iter_hits.iter().all(|f| f.is_violation()));

    let pragma_hits = by_rule(&findings, Rule::Pragma);
    assert_eq!(pragma_hits.len(), 3, "findings: {findings:#?}");
    assert!(pragma_hits
        .iter()
        .any(|f| matches!(f.pragma, PragmaStatus::MissingReason)));
    assert!(pragma_hits
        .iter()
        .any(|f| matches!(f.pragma, PragmaStatus::Malformed(_))));
    assert!(pragma_hits.iter().any(|f| matches!(f.pragma, PragmaStatus::Unused)));
    // Every pragma problem is itself a violation.
    assert!(pragma_hits.iter().all(|f| f.is_violation()));

    assert_eq!(violation_count(&findings), 5);
}

#[test]
fn sweep_is_a_digest_crate_with_wall_clock_exemption() {
    // The orchestrator crate is held to the determinism rules on its
    // deterministic paths: hash-order iteration and ambient randomness are
    // violations in `crates/sweep/src` exactly as in `crates/sim/src`.
    let iter = lint_one("crates/sweep/src/aggregate.rs", NONDET_ITER);
    let iter_hits = by_rule(&iter, Rule::NondetIter);
    assert_eq!(iter_hits.len(), 3, "findings: {iter:#?}");
    assert_eq!(
        iter_hits.iter().filter(|f| f.is_violation()).count(),
        2,
        "findings: {iter:#?}"
    );

    let rng = lint_one("crates/sweep/src/scheduler.rs", AMBIENT_RNG);
    let rng_hits = by_rule(&rng, Rule::AmbientRng);
    assert_eq!(rng_hits.len(), 2, "findings: {rng:#?}");
    assert!(rng_hits.iter().all(|f| f.is_violation()));

    // What sweep *is* exempt from: wall-clock manifest timestamps — and
    // only those. The rest of the crate (scheduler, checkpoints, the
    // per-job trace writes) goes through `footsteps_obs::Stopwatch` and
    // the obs exporter, so raw wall-clock there is a violation.
    let clock = lint_one("crates/sweep/src/manifest.rs", WALL_CLOCK);
    assert!(by_rule(&clock, Rule::WallClock).is_empty(), "findings: {clock:#?}");
    let sched = lint_one("crates/sweep/src/scheduler.rs", WALL_CLOCK);
    let sched_hits = by_rule(&sched, Rule::WallClock);
    assert_eq!(sched_hits.len(), 2, "findings: {sched:#?}");
    assert!(sched_hits.iter().all(|f| f.is_violation()));
}

#[test]
fn stream_is_a_digest_crate_with_envelope_wall_clock_exemption() {
    // The online detector replays byte-identically from a recorded log,
    // so `crates/stream/src` is held to the digest-crate determinism
    // rules: hash-order iteration there is a violation exactly as in
    // `crates/sim/src`.
    let iter = lint_one("crates/stream/src/online.rs", NONDET_ITER);
    let iter_hits = by_rule(&iter, Rule::NondetIter);
    assert_eq!(iter_hits.len(), 3, "findings: {iter:#?}");
    assert_eq!(
        iter_hits.iter().filter(|f| f.is_violation()).count(),
        2,
        "findings: {iter:#?}"
    );

    // The one scoped exemption: the envelope stamps `recorded_unix` into
    // the log header with `SystemTime` — bookkeeping that never feeds a
    // digest. Everywhere else in the crate (the sink's detector timing
    // included) raw wall-clock stays a violation; timing goes through
    // `footsteps_obs::Stopwatch`.
    let envelope = lint_one("crates/stream/src/envelope.rs", WALL_CLOCK);
    assert!(by_rule(&envelope, Rule::WallClock).is_empty(), "findings: {envelope:#?}");
    let sink = lint_one("crates/stream/src/sink.rs", WALL_CLOCK);
    let sink_hits = by_rule(&sink, Rule::WallClock);
    assert_eq!(sink_hits.len(), 2, "findings: {sink:#?}");
    assert!(sink_hits.iter().all(|f| f.is_violation()));
}

#[test]
fn trace_exporter_paths_keep_their_wall_clock_exemptions() {
    // The Chrome-trace exporter lives in `crates/obs` (crate-wide
    // exemption); no other file gained one for the trace work.
    let findings = lint_one("crates/obs/src/export.rs", WALL_CLOCK);
    assert!(by_rule(&findings, Rule::WallClock).is_empty(), "findings: {findings:#?}");
    // A hypothetical exporter outside obs/bench is still denied.
    let outside = lint_one("crates/core/src/export.rs", WALL_CLOCK);
    let hits = by_rule(&outside, Rule::WallClock);
    assert_eq!(hits.len(), 2, "findings: {outside:#?}");
    assert!(hits.iter().all(|f| f.is_violation()));
}

#[test]
fn shard_deny_rules_flag_one_call_deep_helpers() {
    // Every helper in the fixture is lexically clean *at the call site*;
    // only the call-graph propagation can flag `apply_shard` itself. One
    // previously-invisible transitive case per deny rule.
    let findings = lint_one("crates/sim/src/transitive_shard.rs", TRANSITIVE_SHARD);
    for (rule, callee, needle) in [
        (Rule::WallClock, "log_outcome", "= log_outcome()"),
        (Rule::AmbientRng, "jitter", "= jitter()"),
        (Rule::EnvRead, "read_knob", "= read_knob()"),
        (Rule::ParallelMetrics, "bump_counter", "bump_counter(&mut c)"),
        (Rule::NondetIter, "total", "total(s)"),
    ] {
        let line = line_of(TRANSITIVE_SHARD, needle);
        let hit = findings
            .iter()
            .find(|f| f.rule == rule && f.line == line)
            .unwrap_or_else(|| {
                panic!("no transitive {} finding at line {line}: {findings:#?}", rule.name())
            });
        assert!(hit.is_violation());
        // The full chain is reported, from the shard root through the
        // helper to the seed.
        assert_eq!(hit.chain.first().map(String::as_str), Some("apply_shard"));
        assert!(hit.chain.iter().any(|c| c.contains(callee)), "chain: {:?}", hit.chain);
        assert!(hit.chain.len() >= 3, "chain: {:?}", hit.chain);
        assert!(hit.message.contains(" → "), "message: {}", hit.message);
    }
}

#[test]
fn panic_in_shard_direct_transitive_allowlist_and_via_pragmas() {
    let findings = lint_one("crates/sim/src/panic_in_shard.rs", PANIC_IN_SHARD);
    let hits = by_rule(&findings, Rule::PanicInShard);

    // Direct `.unwrap()` inside the shard function.
    let direct = line_of(PANIC_IN_SHARD, ".unwrap()");
    assert!(
        hits.iter().any(|f| f.line == direct && f.is_violation()),
        "findings: {findings:#?}"
    );
    // Indexing is exempt by design (bounds are invariants).
    let indexed = line_of(PANIC_IN_SHARD, "xs[0]");
    assert!(!hits.iter().any(|f| f.line == indexed), "findings: {findings:#?}");
    // The PANIC_FREE_FNS allowlist strips the vetted helper's assert.
    let binned = line_of(PANIC_IN_SHARD, "stable_bin(indexed, 10)");
    assert!(!hits.iter().any(|f| f.line == binned), "findings: {findings:#?}");
    // One call deep: `.expect()` inside `checked` is reached with a chain.
    let reached = line_of(PANIC_IN_SHARD, "binned + checked(xs)");
    let f = hits
        .iter()
        .find(|f| f.line == reached)
        .unwrap_or_else(|| panic!("no transitive finding: {findings:#?}"));
    assert!(f.is_violation());
    assert_eq!(f.chain, ["apply_shard", "checked", ".expect()"]);

    // A `via`-qualified pragma suppresses the matching chain…
    let allowed: Vec<_> = hits
        .iter()
        .filter(|f| matches!(f.pragma, PragmaStatus::Allowed(_)))
        .collect();
    assert_eq!(allowed.len(), 1, "findings: {findings:#?}");
    assert_eq!(allowed[0].chain.first().map(String::as_str), Some("route_day"));
    // …while one naming the wrong link suppresses nothing and is itself
    // reported stale.
    let wrong: Vec<_> = hits
        .iter()
        .filter(|f| f.chain.first().map(String::as_str) == Some("plan_member"))
        .collect();
    assert_eq!(wrong.len(), 1, "findings: {findings:#?}");
    assert!(wrong[0].is_violation());
    assert!(by_rule(&findings, Rule::Pragma)
        .iter()
        .any(|f| matches!(f.pragma, PragmaStatus::Unused)));
}

#[test]
fn float_accum_order_flags_merge_paths() {
    let findings = lint_one("crates/analysis/src/float_accum.rs", FLOAT_ACCUM);
    let hits = by_rule(&findings, Rule::FloatAccumOrder);
    // `self.mean +=` / `self.m2 +=` in Welford::merge, `.sum::<f64>()` in
    // merge_inbound, and the one-call-deep `add_sample` reach in
    // apply_delta. Integer `self.n +=` and the non-merge `scratch_total`
    // accumulate freely.
    assert_eq!(hits.len(), 4, "findings: {findings:#?}");
    assert!(hits.iter().all(|f| f.is_violation()));
    assert!(hits.iter().any(|f| f.snippet.contains("self.mean += other.mean")));
    assert!(hits.iter().any(|f| f.snippet.contains("self.m2")));
    assert!(hits.iter().any(|f| f.message.contains("sum::<f64>")));
    assert!(!hits.iter().any(|f| f.snippet.contains("self.n")));
    assert!(!hits.iter().any(|f| f.snippet.contains("*total += x")));
    let transitive = hits
        .iter()
        .find(|f| f.snippet.contains("add_sample(acc, x)"))
        .unwrap_or_else(|| panic!("no transitive finding: {findings:#?}"));
    assert_eq!(transitive.chain, ["apply_delta", "add_sample", "`mean +=` (f32/f64)"]);

    // The canonical-order home is exempt: same content in analysis::stats.
    let canonical = lint_one("crates/analysis/src/stats.rs", FLOAT_ACCUM);
    assert!(
        by_rule(&canonical, Rule::FloatAccumOrder).is_empty(),
        "findings: {canonical:#?}"
    );
}

/// The meta test: the live workspace must be clean through the same
/// entry point the CI gate runs. A regression anywhere in the product
/// crates fails here before it fails in `scripts/ci.sh`.
#[test]
fn workspace_is_lint_clean() {
    let root = footsteps_lint::walker::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with [workspace] manifest");
    let findings = lint_workspace(&root).expect("workspace scan");
    let violations: Vec<_> = findings.iter().filter(|f| f.is_violation()).collect();
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.rule.name(), f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The scan actually covered the product crates (guards against the
    // walker silently finding nothing and vacuously passing).
    assert!(
        findings.iter().any(|f| matches!(f.pragma, PragmaStatus::Allowed(_))),
        "expected at least one pragma-annotated site in the workspace"
    );
}

/// Satellite: `--explain` and DESIGN.md §6 must stay in sync — every
/// rule has an EXPLANATIONS entry (with reason-bearing pragma example)
/// and is named in the design doc's enforcement section.
#[test]
fn every_rule_is_explained_and_documented() {
    let root = footsteps_lint::walker::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with [workspace] manifest");
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md");
    let section = design
        .split("## 6.")
        .nth(1)
        .and_then(|rest| rest.split("\n## ").next())
        .expect("DESIGN.md has a `## 6.` section");
    for rule in Rule::ALL {
        let doc = footsteps_lint::EXPLANATIONS
            .iter()
            .find(|d| d.rule == *rule)
            .unwrap_or_else(|| panic!("rule {} has no EXPLANATIONS entry", rule.name()));
        assert!(!doc.rationale.trim().is_empty(), "{}: empty rationale", rule.name());
        assert!(!doc.scope.trim().is_empty(), "{}: empty scope", rule.name());
        assert!(
            section.contains(rule.name()),
            "rule `{}` is not mentioned in DESIGN.md §6",
            rule.name()
        );
    }
}
