//! Call-graph resolution edge cases: shadowing, trait-object merging,
//! recursive fixpoint termination, opaque externals — plus the exact
//! `--stats` coverage pin for the transitive fixture, so resolution
//! coverage can't silently regress.

use footsteps_lint::{analyze_files, Analysis, LockState, Rule};

const TRANSITIVE_SHARD: &str = include_str!("fixtures/transitive_shard.rs");

fn analyze(files: &[(&str, &str)]) -> Analysis {
    let owned: Vec<(String, String)> =
        files.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect();
    analyze_files(&owned, &LockState::Skip)
}

#[test]
fn free_call_prefers_free_fn_over_same_named_method() {
    let src = r#"
pub struct Cache;
impl Cache {
    pub fn refresh(&self) -> u128 {
        let t = std::time::Instant::now();
        t.elapsed().as_nanos()
    }
}
fn refresh() -> u128 {
    0
}
pub fn apply_shard(c: &Cache) -> u128 {
    let clean = refresh();
    let dirty = c.refresh();
    clean + dirty
}
"#;
    let a = analyze(&[("crates/sim/src/shadow.rs", src)]);
    let transitive: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == Rule::WallClock && !f.chain.is_empty())
        .collect();
    // Only the typed-receiver call reaches the clock; the bare call binds
    // to the free function, not the same-named method.
    assert_eq!(transitive.len(), 1, "findings: {:#?}", a.findings);
    assert!(transitive[0].snippet.contains("c.refresh()"));
    assert!(
        transitive[0].chain.iter().any(|c| c == "Cache::refresh"),
        "chain: {:?}",
        transitive[0].chain
    );
}

#[test]
fn trait_object_dispatch_merges_by_name_conservatively() {
    let src = r#"
pub trait Policy {
    fn evaluate(&self) -> u64;
}
pub struct Lenient;
impl Policy for Lenient {
    fn evaluate(&self) -> u64 {
        1
    }
}
pub struct Strict;
impl Policy for Strict {
    fn evaluate(&self) -> u64 {
        std::env::var("STRICT").map(|_| 2).unwrap_or(3)
    }
}
pub fn route_day(p: &dyn Policy) -> u64 {
    p.evaluate()
}
"#;
    let a = analyze(&[("crates/sim/src/dyn_policy.rs", src)]);
    // The dyn call merged every `impl Policy` method of that name…
    assert!(a.stats.trait_merged_calls >= 1, "stats: {:?}", a.stats);
    // …so the one env-reading impl taints the dispatch site.
    let hit = a
        .findings
        .iter()
        .find(|f| f.rule == Rule::EnvRead && !f.chain.is_empty())
        .unwrap_or_else(|| panic!("no transitive finding: {:#?}", a.findings));
    assert!(hit.snippet.contains("p.evaluate()"));
    assert!(
        hit.chain.iter().any(|c| c == "Policy::evaluate"),
        "chain: {:?}",
        hit.chain
    );
}

#[test]
fn recursive_call_cycles_reach_a_fixpoint() {
    let src = r#"
fn ping(n: u64) -> u64 {
    if n == 0 { pong(n) } else { ping(n - 1) }
}
fn pong(n: u64) -> u64 {
    let t = std::time::Instant::now();
    ping(t.elapsed().as_secs() + n)
}
pub fn apply_shard() -> u64 {
    ping(3)
}
"#;
    // Termination itself is half the test: a mutual recursion must not
    // spin the propagation loop.
    let a = analyze(&[("crates/sim/src/recurse.rs", src)]);
    assert!(a.stats.fixpoint_iterations >= 2, "stats: {:?}", a.stats);
    let hit = a
        .findings
        .iter()
        .find(|f| f.rule == Rule::WallClock && !f.chain.is_empty())
        .unwrap_or_else(|| panic!("no transitive finding: {:#?}", a.findings));
    assert_eq!(hit.chain[..2], ["apply_shard".to_string(), "ping".to_string()]);
    // The witness chain bottoms out at the seed, not in the cycle.
    assert_eq!(hit.chain.last().map(String::as_str), Some("Instant::now"));
}

#[test]
fn external_calls_are_opaque_not_errors() {
    let src = r#"
pub fn apply_shard(xs: &[u8]) -> usize {
    let blob = serde_json::to_vec(&xs).unwrap_or_default();
    vendor_compress::pack(&blob);
    core::mem::take(&mut blob.len())
}
"#;
    // std, vendor/ work-alikes, and unknown crates resolve to Opaque —
    // assumed effect-free, never a panic or a finding.
    let a = analyze(&[("crates/sim/src/external.rs", src)]);
    assert!(a.stats.opaque_calls >= 3, "stats: {:?}", a.stats);
    assert_eq!(a.stats.unresolved_calls, 0, "stats: {:?}", a.stats);
    assert!(a.findings.is_empty(), "findings: {:#?}", a.findings);
}

#[test]
fn stats_are_pinned_for_the_transitive_fixture() {
    let a = analyze(&[("crates/sim/src/transitive_shard.rs", TRANSITIVE_SHARD)]);
    let s = &a.stats;
    assert_eq!(s.files, 1, "stats: {s:?}");
    assert_eq!(s.functions, 6, "stats: {s:?}");
    // apply_shard's five helper calls, each with exactly one candidate.
    assert_eq!(s.resolved_calls, 5, "stats: {s:?}");
    assert_eq!(s.edges, 5, "stats: {s:?}");
    assert_eq!(s.unresolved_calls, 0, "stats: {s:?}");
    // Instant::now / .elapsed / .as_nanos, thread_rng / .next_u64,
    // env::var / .is_ok, .values / .sum, u64::from.
    assert_eq!(s.opaque_calls, 10, "stats: {s:?}");
    assert_eq!(s.trait_merged_calls, 0, "stats: {s:?}");
    // Seeds land in round zero; one round to lift them into apply_shard,
    // one to observe quiescence.
    assert_eq!(s.fixpoint_iterations, 2, "stats: {s:?}");
}
