//! Chrome-trace / Perfetto exporter for the span tree.
//!
//! `FOOTSTEPS_TRACE_OUT=<path>` makes [`crate::Recorder`] collect span
//! events and, at the end of the run, write them here as the Trace Event
//! JSON object format (`{"traceEvents": [...]}`), loadable in
//! `chrome://tracing` and Perfetto:
//!
//! * `B`/`E` duration events — one pair per span instance, on explicit
//!   thread lanes: `tid 0` is the serial coordinator, `tid k` is worker
//!   lane `k-1` (decision-phase planners, apply shards, and the detect
//!   fork-joins all reuse the same lanes; their regions never overlap in
//!   time because the coordinator joins each region before the next).
//!   Events come straight from the tree's append-order log, so per-lane
//!   timestamps are monotonic and `B`/`E` nest by construction;
//! * `C` counter events — headline metrics-registry counters sampled at
//!   each phase boundary, one counter track per name;
//! * `M` metadata events naming the process and every lane.
//!
//! [`validate_chrome_trace`] is the matching schema check, shared by the
//! unit tests, the determinism suite, and `obs-report --check-trace`
//! (which `scripts/ci.sh` runs on a real smoke trace).
//!
//! Timestamps are microseconds since the recorder's epoch; durations are
//! wall-clock and therefore quarantined from every deterministic artifact
//! — the trace file is a sidecar, never an input.

use std::fs;
use std::io;
use std::path::Path;

use serde::Value;

use crate::tree::SpanTree;

/// Append a JSON-escaped string literal (the names we emit are plain
/// ASCII span names, but escape defensively).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render the span tree as a Chrome trace JSON document.
pub fn chrome_trace_json(tree: &SpanTree) -> String {
    let mut events: Vec<String> = Vec::with_capacity(tree.events().len() + 16);

    // Metadata first: process name plus one name per lane.
    let mut meta = String::new();
    meta.push_str(r#"{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"footsteps-study"}}"#);
    events.push(meta);
    events.push(
        r#"{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"main"}}"#.to_string(),
    );
    for lane in 0..tree.max_worker_lanes() {
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{},"args":{{"name":"worker-{lane}"}}}}"#,
            lane + 1
        ));
    }

    // Duration events, in the tree's append order (correct per lane by
    // construction — no sort).
    for ev in tree.events() {
        let mut e = String::with_capacity(96);
        e.push_str("{\"name\":");
        push_json_str(&mut e, tree.node_name(ev.node));
        e.push_str(&format!(
            ",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":0,\"tid\":{}}}",
            if ev.begin { 'B' } else { 'E' },
            ev.ts_secs * 1e6,
            ev.tid
        ));
        events.push(e);
    }

    // Counter samples from the phase boundaries, one track per counter.
    for sample in tree.counter_samples() {
        for (name, value) in &sample.counters {
            let mut e = String::with_capacity(96);
            e.push_str("{\"name\":");
            push_json_str(&mut e, name);
            e.push_str(&format!(
                ",\"ph\":\"C\",\"ts\":{:.3},\"pid\":0,\"tid\":0,\"args\":{{\"value\":{value}}}}}",
                sample.ts_secs * 1e6
            ));
            events.push(e);
        }
    }

    let mut out = String::with_capacity(events.iter().map(|e| e.len() + 6).sum::<usize>() + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str("  ");
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Write the trace atomically (tmp + rename): a killed run leaves either
/// the previous complete file or none, never a torn one — the same
/// discipline the sweep manifest uses.
pub fn write_chrome_trace(tree: &SpanTree, path: &Path) -> io::Result<()> {
    let body = chrome_trace_json(tree);
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, body.as_bytes())?;
    fs::rename(&tmp, path)
}

/// Stats from a validated trace file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// All events, metadata included.
    pub events: usize,
    /// Matched `B`/`E` pairs.
    pub pairs: usize,
    /// Distinct tids carrying duration events.
    pub lanes: usize,
    /// `C` counter events.
    pub counters: usize,
}

fn field<'v>(map: &'v Value, key: &str) -> Option<&'v Value> {
    match map {
        Value::Map(pairs) => pairs.iter().find_map(|(k, v)| match k {
            Value::Str(s) if s == key => Some(v),
            _ => None,
        }),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Validate a Chrome trace document: parseable JSON with a `traceEvents`
/// array; every `B`/`E` matched per tid (same name, bracket-style);
/// per-tid timestamps monotone non-decreasing; `C`/`M` events well-formed.
pub fn validate_chrome_trace(src: &str) -> Result<TraceCheck, String> {
    let doc = serde_json::parse(src).map_err(|e| format!("invalid JSON: {}", e.0))?;
    let Some(Value::Seq(events)) = field(&doc, "traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };

    let mut check = TraceCheck { events: events.len(), ..Default::default() };
    // Per-tid open-span stacks and timestamp high-water marks.
    let mut lanes: Vec<f64> = Vec::new();
    let mut stacks: Vec<(f64, Vec<String>)> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = field(ev, "ph")
            .and_then(as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = field(ev, "name")
            .and_then(as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        match ph {
            "M" => {}
            "C" => {
                check.counters += 1;
                field(ev, "ts")
                    .and_then(as_f64)
                    .ok_or_else(|| format!("event {i}: counter without ts"))?;
                let args = field(ev, "args").ok_or_else(|| format!("event {i}: counter without args"))?;
                field(args, "value")
                    .and_then(as_f64)
                    .ok_or_else(|| format!("event {i}: counter without args.value"))?;
            }
            "B" | "E" => {
                let ts = field(ev, "ts")
                    .and_then(as_f64)
                    .ok_or_else(|| format!("event {i}: duration event without ts"))?;
                let tid = field(ev, "tid")
                    .and_then(as_f64)
                    .ok_or_else(|| format!("event {i}: duration event without tid"))?;
                let li = match lanes.iter().position(|t| *t == tid) {
                    Some(i) => i,
                    None => {
                        lanes.push(tid);
                        stacks.push((f64::NEG_INFINITY, Vec::new()));
                        lanes.len() - 1
                    }
                };
                let (watermark, stack) = &mut stacks[li];
                if ts < *watermark {
                    return Err(format!(
                        "event {i}: ts {ts} went backwards on tid {tid} (watermark {watermark})"
                    ));
                }
                *watermark = ts;
                if ph == "B" {
                    stack.push(name.to_string());
                } else {
                    match stack.pop() {
                        Some(open) if open == name => check.pairs += 1,
                        Some(open) => {
                            return Err(format!(
                                "event {i}: E `{name}` does not match open B `{open}` on tid {tid}"
                            ));
                        }
                        None => {
                            return Err(format!("event {i}: E `{name}` without open B on tid {tid}"));
                        }
                    }
                }
            }
            other => return Err(format!("event {i}: unknown ph `{other}`")),
        }
    }
    for (tid, (_, stack)) in lanes.iter().zip(&stacks) {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed B `{open}` on tid {tid}"));
        }
    }
    check.lanes = lanes.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::WorkerSpan;

    fn demo_tree() -> SpanTree {
        let mut t = SpanTree::new();
        t.enable_events();
        let phase = t.open("phase.characterization");
        let day = t.open("engine.step_day");
        t.record_leaf("aas.instalex.decision", 0.0001);
        let t0 = t.now_secs();
        t.attach_workers(
            "aas.instalex.apply.shard",
            t0,
            &[
                WorkerSpan { lane: 0, start_secs: 0.0, end_secs: 0.002 },
                WorkerSpan { lane: 1, start_secs: 0.0005, end_secs: 0.0025 },
            ],
        );
        t.close(day);
        t.close(phase);
        t.sample_counters(
            "characterization",
            vec![("platform.inbound.delivered".to_string(), 42)],
        );
        t
    }

    #[test]
    fn exported_trace_passes_the_schema_check() {
        let t = demo_tree();
        let json = chrome_trace_json(&t);
        let check = validate_chrome_trace(&json).expect("trace validates");
        // 2 main spans + 1 leaf + 2 worker lanes = 5 B/E pairs.
        assert_eq!(check.pairs, 5, "{json}");
        assert_eq!(check.lanes, 3, "tid 0 plus two worker lanes: {json}");
        assert_eq!(check.counters, 1);
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("worker-1"));
    }

    #[test]
    fn write_is_atomic_and_round_trips() {
        let t = demo_tree();
        let dir = std::env::temp_dir().join("footsteps_obs_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        write_chrome_trace(&t, &path).expect("trace writes");
        let body = std::fs::read_to_string(&path).unwrap();
        validate_chrome_trace(&body).expect("written trace validates");
        assert!(!path.with_extension("json.tmp").exists(), "tmp file left behind");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validator_rejects_torn_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // E without B.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"E","ts":1.0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("without open B"));
        // Mismatched pair.
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":0,"tid":0},
            {"name":"b","ph":"E","ts":2.0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("does not match"));
        // Backwards time.
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5.0,"pid":0,"tid":0},
            {"name":"a","ph":"E","ts":1.0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("backwards"));
        // Unclosed B.
        let bad = r#"{"traceEvents":[{"name":"a","ph":"B","ts":1.0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("unclosed"));
    }

    #[test]
    fn names_are_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }
}
