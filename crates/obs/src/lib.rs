//! footsteps-obs: observability substrate for the study pipeline.
//!
//! Three facilities with one hard rule between them:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms, grouped by study phase. **Deterministic**: values are a
//!   pure function of the simulation decision stream, so the serialized
//!   [`MetricsSnapshot`] is byte-identical across `FOOTSTEPS_THREADS`.
//! * [`Timings`] — wall-clock span timers per phase / day / engine stage.
//!   **Non-deterministic by nature**, therefore quarantined in a separate
//!   [`TimingsSnapshot`] that must never feed golden digests.
//! * [`Trace`] — a ring-buffered structured event stream, off unless
//!   `FOOTSTEPS_TRACE` is set. Enabling it must not change simulation
//!   behaviour, only record it.
//!
//! [`Recorder`] bundles the three for convenient ownership by the
//! platform. The `progress!` macro (see [`progress`]) replaces ad-hoc
//! status `eprintln!`s and respects `FOOTSTEPS_QUIET`.

#![forbid(unsafe_code)]

pub mod progress;
pub mod registry;
pub mod span;
pub mod trace;

pub use registry::{Frame, Histogram, MetricsRegistry, MetricsSnapshot};
pub use span::{SpanStats, SpanTimer, Stopwatch, Timings, TimingsSnapshot};
pub use trace::{Trace, TraceEvent, TraceSnapshot, DEFAULT_TRACE_CAPACITY};

/// The full observability kit: deterministic metrics, quarantined
/// wall-clock timings, and the env-gated event trace.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    pub metrics: MetricsRegistry,
    pub timings: Timings,
    pub trace: Trace,
}

impl Recorder {
    /// A recorder with tracing disabled regardless of the environment.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// A recorder whose trace honours `FOOTSTEPS_TRACE`.
    pub fn from_env() -> Self {
        Recorder {
            metrics: MetricsRegistry::new(),
            timings: Timings::new(),
            trace: Trace::from_env(),
        }
    }

    /// Open a new metrics phase frame and stamp it on the trace too.
    pub fn begin_phase(&mut self, name: &str) {
        self.metrics.begin_phase(name);
    }

    /// Advance the trace's day stamp.
    pub fn set_day(&mut self, day: u32) {
        self.trace.set_day(day);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_default_trace_is_disabled() {
        let rec = Recorder::new();
        assert!(!rec.trace.is_enabled());
    }

    #[test]
    fn recorder_phases_flow_through() {
        let mut rec = Recorder::new();
        rec.metrics.incr("pre");
        rec.begin_phase("characterization");
        rec.metrics.incr("post");
        let snap = rec.metrics.snapshot();
        assert_eq!(snap.phases.len(), 2);
        assert_eq!(snap.counter("pre"), 1);
        assert_eq!(snap.counter("post"), 1);
    }
}
