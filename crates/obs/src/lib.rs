//! footsteps-obs: observability substrate for the study pipeline.
//!
//! Three facilities with one hard rule between them:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms, grouped by study phase. **Deterministic**: values are a
//!   pure function of the simulation decision stream, so the serialized
//!   [`MetricsSnapshot`] is byte-identical across `FOOTSTEPS_THREADS`.
//! * [`Timings`] — a hierarchical span tree (see [`tree`]) of wall-clock
//!   timers: phases, days, engine stages, and explicit worker lanes for
//!   the parallel regions. Durations are **non-deterministic by nature**,
//!   therefore quarantined in [`TimingsSnapshot`] / the Chrome-trace
//!   sidecar; the span *structure* (names, nesting, lane kinds, counts)
//!   is deterministic and snapshot-tested across thread counts.
//! * [`Trace`] — a ring-buffered structured event stream, off unless
//!   `FOOTSTEPS_TRACE` is set. Enabling it must not change simulation
//!   behaviour, only record it.
//!
//! `FOOTSTEPS_TRACE_OUT=<path>` additionally turns on span-event
//! collection and, at the end of the run, exports a Chrome-trace /
//! Perfetto `trace.json` (see [`export`]) with per-lane timelines and
//! phase-boundary counter samples.
//!
//! [`Recorder`] bundles the pieces for convenient ownership by the
//! platform. The `progress!` macro (see [`progress`]) replaces ad-hoc
//! status `eprintln!`s, respects `FOOTSTEPS_QUIET`, and frames each line
//! through a mutex so concurrent emitters never tear output.

#![forbid(unsafe_code)]

pub mod export;
pub mod progress;
pub mod registry;
pub mod span;
pub mod trace;
pub mod tree;

pub use registry::{Frame, Histogram, MetricsRegistry, MetricsSnapshot};
pub use span::{SpanStats, SpanTimer, Stopwatch, Timings, TimingsSnapshot};
pub use trace::{Trace, TraceEvent, TraceSnapshot, DEFAULT_TRACE_CAPACITY};
pub use tree::{
    CounterSample, LaneKind, PhaseSummary, SpanEvent, SpanTree, SpanTreeSummary, StructureNode,
    StructureSnapshot, WorkerSpan,
};

use std::path::{Path, PathBuf};

/// Counters worth a Chrome-trace track: the platform-level delivery and
/// enforcement headline numbers (the full registry would be hundreds of
/// tracks; everything is still in the metrics snapshot).
const SAMPLED_COUNTER_PREFIX: &str = "platform.";

/// The full observability kit: deterministic metrics, the quarantined
/// wall-clock span tree, and the env-gated event trace.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    pub metrics: MetricsRegistry,
    pub timings: Timings,
    pub trace: Trace,
    /// Where to export the Chrome trace (`FOOTSTEPS_TRACE_OUT`), if set.
    pub trace_out: Option<PathBuf>,
}

impl Recorder {
    /// A recorder with tracing disabled regardless of the environment.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// A recorder whose trace honours `FOOTSTEPS_TRACE` and whose span
    /// tree collects exportable events when `FOOTSTEPS_TRACE_OUT` names a
    /// destination file.
    pub fn from_env() -> Self {
        let trace_out = std::env::var("FOOTSTEPS_TRACE_OUT")
            .ok()
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let mut timings = Timings::new();
        if trace_out.is_some() {
            timings.enable_events();
        }
        Recorder {
            metrics: MetricsRegistry::new(),
            timings,
            trace: Trace::from_env(),
            trace_out,
        }
    }

    /// Open a new metrics phase frame. When span events are being
    /// collected, the closing phase's cumulative headline counters are
    /// sampled onto the span timeline first (exported as `C` events).
    pub fn begin_phase(&mut self, name: &str) {
        self.sample_phase_counters();
        self.metrics.begin_phase(name);
    }

    /// Advance the trace's day stamp.
    pub fn set_day(&mut self, day: u32) {
        self.trace.set_day(day);
    }

    /// Sample cumulative headline counters at a phase boundary.
    fn sample_phase_counters(&mut self) {
        if !self.timings.events_enabled() {
            return;
        }
        let snap = self.metrics.snapshot();
        let counters: Vec<(String, u64)> = snap
            .totals
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(SAMPLED_COUNTER_PREFIX))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let phase = self.metrics.current_phase().to_string();
        self.timings.sample_counters(&phase, counters);
    }

    /// Export the Chrome trace to `trace_out`, if configured. Takes a
    /// final counter sample so the last phase's totals appear too.
    /// Returns the path written, or `None` when exporting is off.
    pub fn export_trace(&mut self) -> std::io::Result<Option<PathBuf>> {
        let Some(path) = self.trace_out.clone() else {
            return Ok(None);
        };
        self.sample_phase_counters();
        export::write_chrome_trace(self.timings.tree(), &path)?;
        Ok(Some(path))
    }

    /// Export the trace to an explicit path regardless of `trace_out`
    /// (the sweep writes one file per job next to its checkpoints).
    pub fn export_trace_to(&mut self, path: &Path) -> std::io::Result<()> {
        self.sample_phase_counters();
        export::write_chrome_trace(self.timings.tree(), path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_default_trace_is_disabled() {
        let rec = Recorder::new();
        assert!(!rec.trace.is_enabled());
        assert!(rec.trace_out.is_none());
        assert!(!rec.timings.events_enabled());
    }

    #[test]
    fn recorder_phases_flow_through() {
        let mut rec = Recorder::new();
        rec.metrics.incr("pre");
        rec.begin_phase("characterization");
        rec.metrics.incr("post");
        let snap = rec.metrics.snapshot();
        assert_eq!(snap.phases.len(), 2);
        assert_eq!(snap.counter("pre"), 1);
        assert_eq!(snap.counter("post"), 1);
    }

    #[test]
    fn phase_boundaries_sample_headline_counters_when_collecting() {
        let mut rec = Recorder::new();
        rec.timings.enable_events();
        rec.metrics.add("platform.inbound.delivered", 7);
        rec.metrics.add("detect.signatures", 3); // not a headline counter
        rec.begin_phase("characterization");
        let samples = rec.timings.tree().counter_samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].phase, "setup");
        assert_eq!(
            samples[0].counters,
            vec![("platform.inbound.delivered".to_string(), 7)]
        );
    }

    #[test]
    fn export_is_a_noop_without_trace_out() {
        let mut rec = Recorder::new();
        assert!(rec.export_trace().expect("no-op export").is_none());
    }

    #[test]
    fn export_trace_to_writes_a_valid_file() {
        let mut rec = Recorder::new();
        rec.timings.enable_events();
        let t = rec.timings.start("phase.test");
        rec.metrics.add("platform.outbound.delivered", 1);
        rec.timings.finish(t);
        let dir = std::env::temp_dir().join("footsteps_obs_recorder_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job_trace.json");
        rec.export_trace_to(&path).expect("export writes");
        let body = std::fs::read_to_string(&path).unwrap();
        export::validate_chrome_trace(&body).expect("exported trace validates");
        std::fs::remove_file(&path).ok();
    }
}
