//! Progress reporting for examples and bench binaries.
//!
//! `progress!("characterization done in {:.2}s", secs)` writes a
//! `[footsteps] ...` line to stderr unless `FOOTSTEPS_QUIET` is set to a
//! truthy value. Report *content* (tables, figures) should keep using
//! plain `println!`; this is only for transient status lines.
//!
//! Lines are *framed*: each one is formatted into a buffer and written
//! with a single `write_all` under a process-wide mutex. Concurrent
//! emitters (sweep workers, sharded-apply diagnostics) therefore
//! interleave whole lines, never fragments — `eprintln!` formats directly
//! into the locked stream piecewise, which is where the old tearing came
//! from.

use std::io::Write as _;
use std::sync::{Mutex, OnceLock};

/// Whether progress output is suppressed (`FOOTSTEPS_QUIET` set to
/// anything other than empty/`0`/`off`/`false`). Cached after first read:
/// examples query this per progress line.
pub fn quiet() -> bool {
    static QUIET: OnceLock<bool> = OnceLock::new();
    *QUIET.get_or_init(|| match std::env::var("FOOTSTEPS_QUIET") {
        Ok(v) => {
            let v = v.trim();
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => false,
    })
}

/// Emit one pre-formatted progress line (used by the `progress!` macro).
/// Formats the whole line first, then writes it in one call under the
/// frame mutex, so lines from different threads never tear.
pub fn emit(line: std::fmt::Arguments<'_>) {
    if quiet() {
        return;
    }
    use std::fmt::Write as _;
    let mut buf = String::with_capacity(96);
    let _ = write!(buf, "[footsteps] {line}\n");
    static FRAME: Mutex<()> = Mutex::new(());
    let _frame = FRAME.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let _ = std::io::stderr().lock().write_all(buf.as_bytes());
}

/// Print a `[footsteps] ...` progress line to stderr unless
/// `FOOTSTEPS_QUIET` is set.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress::emit(::core::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    // `quiet()` caches the env var process-wide, so the unit test only
    // checks that the call is stable, not each parse branch (those are
    // covered by the parse logic in `trace.rs` sharing the same grammar).
    #[test]
    fn quiet_is_stable_across_calls() {
        assert_eq!(super::quiet(), super::quiet());
    }

    #[test]
    fn progress_macro_compiles_with_formatting() {
        crate::progress!("unit test line {} / {}", 1, 2);
    }

    #[test]
    fn concurrent_emitters_take_the_frame_lock() {
        // Smoke-checks the mutex-framed path under contention (the
        // no-tearing property itself is not observable from inside the
        // process; this pins that the lock is not poisoned or deadlocked).
        std::thread::scope(|s| {
            for i in 0..4 {
                s.spawn(move || crate::progress!("frame test {i}"));
            }
        });
    }
}
