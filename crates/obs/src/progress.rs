//! Progress reporting for examples and bench binaries.
//!
//! `progress!("characterization done in {:.2}s", secs)` writes a
//! `[footsteps] ...` line to stderr unless `FOOTSTEPS_QUIET` is set to a
//! truthy value. Report *content* (tables, figures) should keep using
//! plain `println!`; this is only for transient status lines.

use std::sync::OnceLock;

/// Whether progress output is suppressed (`FOOTSTEPS_QUIET` set to
/// anything other than empty/`0`/`off`/`false`). Cached after first read:
/// examples query this per progress line.
pub fn quiet() -> bool {
    static QUIET: OnceLock<bool> = OnceLock::new();
    *QUIET.get_or_init(|| match std::env::var("FOOTSTEPS_QUIET") {
        Ok(v) => {
            let v = v.trim();
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => false,
    })
}

/// Emit one pre-formatted progress line (used by the `progress!` macro).
pub fn emit(line: std::fmt::Arguments<'_>) {
    if !quiet() {
        eprintln!("[footsteps] {line}");
    }
}

/// Print a `[footsteps] ...` progress line to stderr unless
/// `FOOTSTEPS_QUIET` is set.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress::emit(::core::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    // `quiet()` caches the env var process-wide, so the unit test only
    // checks that the call is stable, not each parse branch (those are
    // covered by the parse logic in `trace.rs` sharing the same grammar).
    #[test]
    fn quiet_is_stable_across_calls() {
        assert_eq!(super::quiet(), super::quiet());
    }

    #[test]
    fn progress_macro_compiles_with_formatting() {
        crate::progress!("unit test line {} / {}", 1, 2);
    }
}
