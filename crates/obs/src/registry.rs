//! Deterministic metrics registry.
//!
//! The registry records named counters, gauges, and fixed-bucket histograms
//! grouped into *phase frames*. A frame opens when the study enters a phase
//! (`begin_phase`) and every subsequent record lands in it, so the snapshot
//! preserves per-phase structure alongside cross-phase totals.
//!
//! Determinism contract: everything in here is a pure function of the
//! simulation's decision stream. No wall-clock data, no thread identifiers,
//! no allocation-order-dependent iteration — maps are `BTreeMap` so the
//! serialized snapshot is byte-identical for identical runs regardless of
//! `FOOTSTEPS_THREADS`. Wall-clock timing lives in [`crate::span`], which is
//! deliberately a separate snapshot type.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fixed-bucket histogram. `bounds` are inclusive upper bounds for the
/// first `bounds.len()` buckets; the final bucket is an unbounded overflow
/// bucket, so `buckets.len() == bounds.len() + 1`. All arithmetic saturates:
/// a histogram never wraps, it pins at `u64::MAX`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    pub bounds: Vec<u64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds (must be sorted
    /// ascending; an overflow bucket is appended automatically).
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Record one observation. Values above the last bound land in the
    /// overflow bucket; zero lands in the first bucket whose bound is >= 0.
    pub fn observe(&mut self, value: u64) {
        let idx = match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => i,
            None => self.bounds.len(), // overflow bucket
        };
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Merge another histogram with identical bounds into this one.
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "cannot merge mismatched bounds");
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One phase's worth of metrics. Counters saturate at `u64::MAX`; gauges
/// hold the last set value.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl Frame {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    fn merge(&mut self, other: &Frame) {
        for (k, v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, v) in &other.gauges {
            // A later phase's gauge value wins in the totals view.
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) if mine.bounds == h.bounds => mine.merge(h),
                _ => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }
}

/// The live registry: an ordered list of `(phase name, frame)` pairs.
/// Records always land in the most recent frame; a registry starts with an
/// implicit `"setup"` frame so recording before the first `begin_phase` is
/// well-defined.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    phases: Vec<(String, Frame)>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            phases: vec![("setup".to_string(), Frame::default())],
        }
    }

    /// Open a new phase frame. Subsequent records land here.
    pub fn begin_phase(&mut self, name: &str) {
        self.phases.push((name.to_string(), Frame::default()));
    }

    /// Name of the currently open phase.
    pub fn current_phase(&self) -> &str {
        &self.phases.last().expect("registry always has a frame").0
    }

    fn frame(&mut self) -> &mut Frame {
        &mut self.phases.last_mut().expect("registry always has a frame").1
    }

    /// Add `n` to the named counter (saturating).
    pub fn add(&mut self, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        let frame = self.frame();
        let slot = match frame.counters.get_mut(key) {
            Some(slot) => slot,
            None => frame.counters.entry(key.to_string()).or_insert(0),
        };
        *slot = slot.saturating_add(n);
    }

    /// Increment the named counter by one.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Fold a batch of counter deltas into the current frame. This is the
    /// merge half of the sharded-apply contract: worker shards accumulate
    /// plain `(key, n)` pairs into their own local structs (no registry
    /// access off the serial path), and the serial merge sweep applies them
    /// here. Zero deltas are skipped just like [`MetricsRegistry::add`], so
    /// the set of materialized keys cannot depend on how work was sharded.
    pub fn apply_delta<'a>(&mut self, delta: impl IntoIterator<Item = (&'a str, u64)>) {
        for (key, n) in delta {
            self.add(key, n);
        }
    }

    /// Set the named gauge to `value`.
    pub fn gauge(&mut self, key: &str, value: i64) {
        let frame = self.frame();
        frame.gauges.insert(key.to_string(), value);
    }

    /// Record an observation into the named histogram, creating it with
    /// `bounds` on first use.
    pub fn observe(&mut self, key: &str, bounds: &[u64], value: u64) {
        let frame = self.frame();
        if !frame.histograms.contains_key(key) {
            frame.histograms.insert(key.to_string(), Histogram::new(bounds));
        }
        frame
            .histograms
            .get_mut(key)
            .expect("histogram just inserted")
            .observe(value);
    }

    /// Freeze the registry into a serializable snapshot: the per-phase
    /// frames (empty frames dropped) plus a cross-phase totals frame.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut totals = Frame::default();
        let mut phases = Vec::new();
        for (name, frame) in &self.phases {
            totals.merge(frame);
            if !frame.is_empty() {
                phases.push((name.clone(), frame.clone()));
            }
        }
        MetricsSnapshot { phases, totals }
    }
}

/// Serializable, deterministic view of the registry. This is the payload
/// attached to `StudyResults::metrics` and compared byte-for-byte across
/// thread counts in the determinism suite.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(phase name, frame)` in study order; empty frames omitted.
    pub phases: Vec<(String, Frame)>,
    /// All phases merged: counters summed, gauges last-write-wins,
    /// histograms merged bucket-wise.
    pub totals: Frame,
}

impl MetricsSnapshot {
    /// Pretty-printed JSON. Byte-identical for identical runs — the
    /// determinism tests compare this string directly.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics snapshot serializes")
    }

    /// Total for a counter across all phases (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.totals.counters.get(key).copied().unwrap_or(0)
    }

    /// Merge another run's snapshot into this one, phase-aligned by name:
    /// counters sum, gauges last-write-wins, histograms merge bucket-wise
    /// (mismatched bounds fall back to the other's histogram, as in
    /// [`Frame`] totals merging). Phases present only in `other` are
    /// appended in their original order. Used by the sweep aggregator to
    /// fold per-seed snapshots into one cross-seed view.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, frame) in &other.phases {
            match self.phases.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(frame),
                None => self.phases.push((name.clone(), frame.clone())),
            }
        }
        self.totals.merge(&other.totals);
    }

    /// Counters in the totals frame whose key starts with `prefix`,
    /// in sorted key order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.totals
            .counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_routes_zero_to_first_bucket() {
        let mut h = Histogram::new(&[0, 10, 100]);
        h.observe(0);
        assert_eq!(h.buckets, vec![1, 0, 0, 0]);
        assert_eq!((h.count, h.sum), (1, 0));
    }

    #[test]
    fn histogram_zero_lands_in_first_covering_bucket_when_no_zero_bound() {
        let mut h = Histogram::new(&[10, 100]);
        h.observe(0);
        assert_eq!(h.buckets, vec![1, 0, 0]);
    }

    #[test]
    fn histogram_bounds_are_inclusive() {
        let mut h = Histogram::new(&[10, 100]);
        h.observe(10);
        h.observe(11);
        h.observe(100);
        assert_eq!(h.buckets, vec![1, 2, 0]);
    }

    #[test]
    fn histogram_overflow_lands_in_last_bucket() {
        let mut h = Histogram::new(&[1, 2]);
        h.observe(3);
        h.observe(u64::MAX);
        assert_eq!(h.buckets, vec![0, 0, 2]);
        assert_eq!(h.count, 2);
        // sum saturates rather than wrapping.
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn histogram_empty_bounds_is_a_pure_overflow_tally() {
        let mut h = Histogram::new(&[]);
        h.observe(0);
        h.observe(1_000_000);
        assert_eq!(h.buckets, vec![2]);
        assert_eq!(h.count, 2);
    }

    #[test]
    fn histogram_saturates_instead_of_wrapping() {
        let mut h = Histogram::new(&[10]);
        h.count = u64::MAX;
        h.buckets[0] = u64::MAX;
        h.sum = u64::MAX - 1;
        h.observe(5);
        assert_eq!(h.count, u64::MAX);
        assert_eq!(h.buckets[0], u64::MAX);
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(&[100]);
        assert_eq!(h.mean(), 0.0);
        h.observe(10);
        h.observe(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn counters_saturate() {
        let mut reg = MetricsRegistry::new();
        reg.add("x", u64::MAX - 1);
        reg.add("x", 5);
        assert_eq!(reg.snapshot().counter("x"), u64::MAX);
    }

    #[test]
    fn zero_add_does_not_materialize_a_counter() {
        let mut reg = MetricsRegistry::new();
        reg.add("x", 0);
        assert!(reg.snapshot().totals.counters.is_empty());
    }

    #[test]
    fn phases_partition_counts_and_totals_merge() {
        let mut reg = MetricsRegistry::new();
        reg.incr("a");
        reg.begin_phase("characterization");
        reg.add("a", 2);
        reg.incr("b");
        let snap = reg.snapshot();
        assert_eq!(snap.phases.len(), 2);
        assert_eq!(snap.phases[0].0, "setup");
        assert_eq!(snap.phases[0].1.counters["a"], 1);
        assert_eq!(snap.phases[1].1.counters["a"], 2);
        assert_eq!(snap.counter("a"), 3);
        assert_eq!(snap.counter("b"), 1);
    }

    #[test]
    fn empty_phases_are_dropped_from_snapshot() {
        let mut reg = MetricsRegistry::new();
        reg.begin_phase("idle");
        reg.begin_phase("busy");
        reg.incr("x");
        let snap = reg.snapshot();
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.phases[0].0, "busy");
    }

    #[test]
    fn gauges_last_write_wins_in_totals() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("g", 3);
        reg.begin_phase("later");
        reg.gauge("g", 7);
        let snap = reg.snapshot();
        assert_eq!(snap.totals.gauges["g"], 7);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut reg = MetricsRegistry::new();
        reg.incr("a");
        reg.observe("h", &[1, 10], 5);
        let snap = reg.snapshot();
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_merge_aligns_phases_and_sums_totals() {
        let mut a_reg = MetricsRegistry::new();
        a_reg.begin_phase("characterization");
        a_reg.add("likes", 10);
        let mut a = a_reg.snapshot();

        let mut b_reg = MetricsRegistry::new();
        b_reg.begin_phase("characterization");
        b_reg.add("likes", 5);
        b_reg.begin_phase("narrow");
        b_reg.add("blocks", 2);
        let b = b_reg.snapshot();

        a.merge(&b);
        assert_eq!(a.counter("likes"), 15);
        assert_eq!(a.counter("blocks"), 2);
        let char_frame = &a.phases.iter().find(|(n, _)| n == "characterization").unwrap().1;
        assert_eq!(char_frame.counters["likes"], 15);
        assert!(a.phases.iter().any(|(n, _)| n == "narrow"));
    }

    #[test]
    fn counters_with_prefix_filters_and_sorts() {
        let mut reg = MetricsRegistry::new();
        reg.add("aas.z", 1);
        reg.add("aas.a", 2);
        reg.add("detect.x", 3);
        let snap = reg.snapshot();
        let got: Vec<_> = snap.counters_with_prefix("aas.").collect();
        assert_eq!(got, vec![("aas.a", 2), ("aas.z", 1)]);
    }
}
