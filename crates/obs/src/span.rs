//! Wall-clock span timers.
//!
//! Timings are *observability-only*: they live in their own
//! [`TimingsSnapshot`], are never folded into [`crate::MetricsSnapshot`],
//! and must never reach `StudyResults::to_json()` or the golden digest —
//! wall-clock varies run to run even when the simulation is bit-identical.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Aggregated wall-clock stats for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanStats {
    /// How many times the span ran.
    pub count: u64,
    /// Total wall-clock seconds across all runs.
    pub total_secs: f64,
    /// Longest single run, in seconds.
    pub max_secs: f64,
}

impl SpanStats {
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs / self.count as f64
        }
    }
}

/// Accumulator of span timings, keyed by span name.
#[derive(Debug, Clone, Default)]
pub struct Timings {
    spans: BTreeMap<String, SpanStats>,
}

impl Timings {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a span; finish it with [`Timings::finish`].
    pub fn start(&self, name: &'static str) -> SpanTimer {
        SpanTimer {
            name,
            started: Instant::now(),
        }
    }

    /// Record a finished span into the accumulator.
    pub fn finish(&mut self, timer: SpanTimer) {
        let secs = timer.started.elapsed().as_secs_f64();
        self.record(timer.name, secs);
    }

    /// Record an externally measured duration under `name`.
    pub fn record(&mut self, name: &str, secs: f64) {
        let stats = self.spans.entry(name.to_string()).or_default();
        stats.count += 1;
        stats.total_secs += secs;
        if secs > stats.max_secs {
            stats.max_secs = secs;
        }
    }

    /// Time a closure and record it under `name`.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let timer = self.start(name);
        let out = f();
        self.finish(timer);
        out
    }

    pub fn snapshot(&self) -> TimingsSnapshot {
        TimingsSnapshot {
            spans: self.spans.clone(),
        }
    }
}

/// A bare wall-clock stopwatch for spans whose names are computed at run
/// time (e.g. `aas.<slug>.decision`), which [`Timings::start`]'s
/// `&'static str` API cannot express.
///
/// This is the only sanctioned way for code outside `footsteps-obs` and
/// `footsteps-bench` to read wall-clock: measure with a `Stopwatch`, then
/// hand the seconds to [`Timings::record`]. `footsteps-lint`'s wall-clock
/// rule keeps `Instant`/`SystemTime` out of the product crates.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self { started: Instant::now() }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// An in-flight span. Holds the start instant; hand it back to
/// [`Timings::finish`] to record.
#[derive(Debug)]
pub struct SpanTimer {
    name: &'static str,
    started: Instant,
}

impl SpanTimer {
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Serializable wall-clock report. Deliberately a different type from
/// `MetricsSnapshot`: callers cannot accidentally mix the two.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingsSnapshot {
    pub spans: BTreeMap<String, SpanStats>,
}

impl TimingsSnapshot {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("timings snapshot serializes")
    }

    pub fn get(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_count_and_total() {
        let mut t = Timings::new();
        t.record("phase.x", 1.0);
        t.record("phase.x", 3.0);
        let snap = t.snapshot();
        let s = snap.get("phase.x").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_secs, 4.0);
        assert_eq!(s.max_secs, 3.0);
        assert_eq!(s.mean_secs(), 2.0);
    }

    #[test]
    fn timer_round_trip_records_nonnegative_elapsed() {
        let mut t = Timings::new();
        let timer = t.start("unit");
        assert_eq!(timer.name(), "unit");
        t.finish(timer);
        let snap = t.snapshot();
        let s = snap.get("unit").unwrap();
        assert_eq!(s.count, 1);
        assert!(s.total_secs >= 0.0);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = Timings::new();
        let v = t.time("closure", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(t.snapshot().get("closure").unwrap().count, 1);
    }

    #[test]
    fn concurrent_shard_spans_nest_under_distinct_keys() {
        // The sharded-apply span contract: each worker measures its own CPU
        // time with a `Stopwatch`, the coordinator measures the wall time of
        // the whole scope, and the two land under *different* keys
        // (`<name>.shard` vs `<name>`). Summing `total_secs` across a
        // `TimingsSnapshot` therefore counts the parallel region once at
        // wall cost; the per-shard CPU detail stays available separately.
        let mut t = Timings::new();
        let wall = Stopwatch::start();
        let shard_secs: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let w = Stopwatch::start();
                        std::hint::black_box((0..10_000u64).sum::<u64>());
                        w.elapsed_secs()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard panicked")).collect()
        });
        // Merge in shard-index order on the serial side, never from workers.
        for secs in &shard_secs {
            t.record("aas.test.apply.shard", *secs);
        }
        t.record("aas.test.apply", wall.elapsed_secs());

        let snap = t.snapshot();
        let shards = snap.get("aas.test.apply.shard").expect("shard spans recorded");
        let merged = snap.get("aas.test.apply").expect("wall span recorded");
        assert_eq!(shards.count, 4);
        assert_eq!(merged.count, 1);
        // The wall span covers every shard, so no shard can exceed it, and
        // the shard aggregate never leaks into the merged key's total.
        assert!(shards.max_secs <= merged.total_secs + 1e-9);
        assert!(merged.total_secs < shards.total_secs + merged.max_secs + 1e-9);
    }
}
