//! Wall-clock span timers over the hierarchical [`SpanTree`].
//!
//! Timings are *observability-only*: they live in their own
//! [`TimingsSnapshot`], are never folded into [`crate::MetricsSnapshot`],
//! and must never reach `StudyResults::to_json()` or the golden digest —
//! wall-clock varies run to run even when the simulation is bit-identical.
//! The one deliberately deterministic view is [`Timings::structure`]: span
//! *names, nesting, lane kinds and counts* are a pure function of the
//! serial control flow and are snapshot-tested across thread counts;
//! durations stay quarantined here.
//!
//! [`Timings`] is the serial coordinator's facade: `start`/`finish` keep a
//! stack of open spans (parent/child links come from nesting order),
//! `record` drops an externally measured leaf under the current span, and
//! `attach_workers` grafts a parallel region's per-lane intervals onto the
//! tree after the join. Worker threads never touch `Timings` — they
//! measure against a copied [`Stopwatch`] and hand offsets back.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

use crate::tree::{SpanHandle, SpanTree, SpanTreeSummary, StructureSnapshot, WorkerSpan};

/// Aggregated wall-clock stats for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanStats {
    /// How many times the span ran.
    pub count: u64,
    /// Total wall-clock seconds across all runs.
    pub total_secs: f64,
    /// Longest single run, in seconds.
    pub max_secs: f64,
}

impl SpanStats {
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs / self.count as f64
        }
    }
}

/// Accumulator of span timings: a facade over the span tree.
#[derive(Debug, Clone, Default)]
pub struct Timings {
    tree: SpanTree,
}

impl Timings {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a span under the currently open one; finish it with
    /// [`Timings::finish`]. Dynamic names are fine — the tree interns one
    /// node per `(parent, name)`.
    pub fn start(&mut self, name: &str) -> SpanTimer {
        SpanTimer {
            name: name.to_string(),
            handle: self.tree.open(name),
        }
    }

    /// Close a span opened with [`Timings::start`]. Any child spans still
    /// open above it are force-closed first (unbalanced-span recovery), so
    /// a leaked timer never corrupts the stack.
    pub fn finish(&mut self, timer: SpanTimer) {
        self.tree.close(timer.handle);
    }

    /// Record an externally measured leaf duration under the currently
    /// open span.
    pub fn record(&mut self, name: &str, secs: f64) {
        self.tree.record_leaf(name, secs);
    }

    /// Time a closure and record it under `name`.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let timer = self.start(name);
        let out = f();
        self.finish(timer);
        out
    }

    /// Seconds on the tree's timebase — the anchor for
    /// [`Timings::attach_workers`].
    pub fn now_secs(&self) -> f64 {
        self.tree.now_secs()
    }

    /// Graft one parallel region's worker lanes under the currently open
    /// span. Serial-side only; see [`SpanTree::attach_workers`].
    pub fn attach_workers(&mut self, name: &str, region_start_secs: f64, spans: &[WorkerSpan]) {
        self.tree.attach_workers(name, region_start_secs, spans);
    }

    /// Turn on `B`/`E` event collection for the Chrome-trace exporter.
    pub fn enable_events(&mut self) {
        self.tree.enable_events();
    }

    pub fn events_enabled(&self) -> bool {
        self.tree.events_enabled()
    }

    /// Record a phase-boundary counter sample for the exporter.
    pub fn sample_counters(&mut self, phase: &str, counters: Vec<(String, u64)>) {
        self.tree.sample_counters(phase, counters);
    }

    /// The underlying tree (exporter/report access).
    pub fn tree(&self) -> &SpanTree {
        &self.tree
    }

    /// The deterministic structural view (names/nesting/lanes/counts).
    pub fn structure(&self) -> StructureSnapshot {
        self.tree.structure()
    }

    /// Hex FNV-1a digest of the structural snapshot.
    pub fn structure_digest(&self) -> String {
        format!("0x{:016x}", self.tree.structure().digest())
    }

    /// Compact per-phase summary for `perf_baseline --json`.
    pub fn summary(&self) -> SpanTreeSummary {
        self.tree.summary()
    }

    /// The flamegraph-style text report (see `obs-report`).
    pub fn flame_report(&self, top_k: usize) -> String {
        self.tree.flame_report(top_k)
    }

    /// The flat name-keyed aggregate view (wall-clock sidecar).
    pub fn snapshot(&self) -> TimingsSnapshot {
        TimingsSnapshot { spans: self.tree.flat() }
    }
}

/// A bare wall-clock stopwatch for measuring regions whose results are
/// handed to [`Timings::record`] / [`Timings::attach_workers`] on the
/// serial side (worker lanes copy one and report offsets against it).
///
/// This is the only sanctioned way for code outside `footsteps-obs` and
/// `footsteps-bench` to read wall-clock. `footsteps-lint`'s wall-clock
/// rule keeps `Instant`/`SystemTime` out of the product crates.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self { started: Instant::now() }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// An in-flight span: a handle into the open-span stack. Hand it back to
/// [`Timings::finish`] to close and record.
#[derive(Debug)]
pub struct SpanTimer {
    name: String,
    handle: SpanHandle,
}

impl SpanTimer {
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Serializable wall-clock report. Deliberately a different type from
/// `MetricsSnapshot`: callers cannot accidentally mix the two.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingsSnapshot {
    pub spans: BTreeMap<String, SpanStats>,
}

impl TimingsSnapshot {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("timings snapshot serializes")
    }

    pub fn get(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_count_and_total() {
        let mut t = Timings::new();
        t.record("phase.x", 1.0);
        t.record("phase.x", 3.0);
        let snap = t.snapshot();
        let s = snap.get("phase.x").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_secs, 4.0);
        assert_eq!(s.max_secs, 3.0);
        assert_eq!(s.mean_secs(), 2.0);
    }

    #[test]
    fn timer_round_trip_records_nonnegative_elapsed() {
        let mut t = Timings::new();
        let timer = t.start("unit");
        assert_eq!(timer.name(), "unit");
        t.finish(timer);
        let snap = t.snapshot();
        let s = snap.get("unit").unwrap();
        assert_eq!(s.count, 1);
        assert!(s.total_secs >= 0.0);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = Timings::new();
        let v = t.time("closure", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(t.snapshot().get("closure").unwrap().count, 1);
    }

    #[test]
    fn nested_spans_fold_into_the_flat_view() {
        // The flat sidecar stays backwards-compatible: nesting changes
        // where spans sit in the tree, not how they aggregate by name.
        let mut t = Timings::new();
        let phase = t.start("phase.characterization");
        for _ in 0..3 {
            let day = t.start("engine.step_day");
            t.record("aas.instalex.decision", 0.001);
            t.finish(day);
        }
        t.finish(phase);
        let snap = t.snapshot();
        assert_eq!(snap.get("engine.step_day").unwrap().count, 3);
        assert_eq!(snap.get("aas.instalex.decision").unwrap().count, 3);
        assert_eq!(snap.get("phase.characterization").unwrap().count, 1);
        // And the structure remembers the nesting the flat view drops.
        let s = t.structure();
        assert_eq!(s.spans[0].name, "phase.characterization");
        assert_eq!(s.spans[0].children[0].name, "engine.step_day");
        assert_eq!(s.spans[0].children[0].children[0].name, "aas.instalex.decision");
    }

    #[test]
    fn concurrent_shard_spans_nest_under_distinct_keys() {
        // The sharded-apply span contract: each worker measures its own
        // interval against a *copied* region stopwatch, the coordinator
        // attaches the offsets after the join (`<name>.shard` worker lanes
        // under the open `<name>` span). Summing `total_secs` across a
        // `TimingsSnapshot` therefore counts the parallel region once at
        // wall cost; the per-shard CPU detail stays available separately.
        let mut t = Timings::new();
        let apply = t.start("aas.test.apply");
        let region_t0 = t.now_secs();
        let region = Stopwatch::start();
        let lanes: Vec<WorkerSpan> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u32)
                .map(|lane| {
                    scope.spawn(move || {
                        let start_secs = region.elapsed_secs();
                        std::hint::black_box((0..10_000u64).sum::<u64>());
                        WorkerSpan { lane, start_secs, end_secs: region.elapsed_secs() }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard panicked")).collect()
        });
        // Attach in one region on the serial side, never from workers.
        t.attach_workers("aas.test.apply.shard", region_t0, &lanes);
        t.finish(apply);

        let snap = t.snapshot();
        let shards = snap.get("aas.test.apply.shard").expect("shard spans recorded");
        let merged = snap.get("aas.test.apply").expect("wall span recorded");
        assert_eq!(shards.count, 4);
        assert_eq!(merged.count, 1);
        // The wall span covers every shard, so no shard can exceed it.
        assert!(shards.max_secs <= merged.total_secs + 1e-9);
        // Structurally the shard node is a worker child of the wall span
        // and counts one *region* regardless of lane count.
        let s = t.structure();
        assert_eq!(s.spans[0].name, "aas.test.apply");
        assert_eq!(s.spans[0].children[0].name, "aas.test.apply.shard");
        assert_eq!(s.spans[0].children[0].lane, "worker");
        assert_eq!(s.spans[0].children[0].count, 1);
    }
}
