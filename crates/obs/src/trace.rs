//! Structured event trace.
//!
//! A bounded ring buffer of compact [`TraceEvent`]s, off by default and
//! enabled via `FOOTSTEPS_TRACE`:
//!
//! * unset, empty, `0`, or `off` — tracing disabled (every push is a no-op);
//! * `1`, `true`, or `on` — enabled with the default capacity (4096 events);
//! * any other integer `n` — enabled with capacity `n`.
//!
//! When the buffer is full the oldest event is evicted and `dropped` is
//! incremented, so a trace always reports how much history it lost. The
//! trace is observability-only: it never feeds `StudyResults` or digests,
//! and enabling it must not perturb the simulation's decision stream.

use serde::Serialize;
use std::collections::VecDeque;

/// Default ring capacity when `FOOTSTEPS_TRACE=1`.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One traced occurrence. Fields are deliberately plain integers plus a
/// static kind tag so pushing an event never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceEvent {
    /// Simulation day the event occurred on.
    pub day: u32,
    /// Static event kind, e.g. `"enforce.block"` or `"rate_limit"`.
    pub kind: &'static str,
    /// Primary subject (usually a raw account id).
    pub subject: u64,
    /// Event payload (requested count, threshold, bin index, ...).
    pub value: u64,
    /// Secondary payload (passed count, asn id, ...).
    pub extra: u64,
}

/// Ring-buffered trace. Constructed via [`Trace::from_env`] in production
/// paths; [`Trace::enabled_with`] exists for tests.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    day: u32,
}

impl Trace {
    /// A disabled trace: pushes are no-ops.
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled trace with the given ring capacity.
    pub fn enabled_with(capacity: usize) -> Self {
        Trace {
            events: VecDeque::with_capacity(capacity.min(DEFAULT_TRACE_CAPACITY)),
            capacity: capacity.max(1),
            dropped: 0,
            day: 0,
        }
    }

    /// Configure from the `FOOTSTEPS_TRACE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("FOOTSTEPS_TRACE") {
            Ok(v) => Self::from_setting(&v),
            Err(_) => Trace::disabled(),
        }
    }

    /// Parse a `FOOTSTEPS_TRACE`-style setting string.
    pub fn from_setting(value: &str) -> Self {
        let v = value.trim();
        if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") {
            return Trace::disabled();
        }
        if v == "1" || v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("true") {
            return Trace::enabled_with(DEFAULT_TRACE_CAPACITY);
        }
        match v.parse::<usize>() {
            Ok(n) if n > 0 => Trace::enabled_with(n),
            _ => Trace::disabled(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Set the current simulation day stamped onto subsequent events.
    pub fn set_day(&mut self, day: u32) {
        self.day = day;
    }

    /// Push an event (no-op when disabled). Evicts the oldest event when
    /// the ring is full.
    pub fn push(&mut self, kind: &'static str, subject: u64, value: u64, extra: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.events.push_back(TraceEvent {
            day: self.day,
            kind,
            subject,
            value,
            extra,
        });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Serializable view: retained events in arrival order plus the drop
    /// count. (`TraceEvent` holds `&'static str` kinds, which the vendored
    /// serde can serialize but not deserialize — the snapshot is write-only
    /// by design.)
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            enabled: self.is_enabled(),
            capacity: self.capacity,
            dropped: self.dropped,
            events: self.events.iter().copied().collect(),
        }
    }
}

/// Serializable trace report.
#[derive(Debug, Clone, Serialize)]
pub struct TraceSnapshot {
    pub enabled: bool,
    pub capacity: usize,
    pub dropped: u64,
    pub events: Vec<TraceEvent>,
}

impl TraceSnapshot {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_ignores_pushes() {
        let mut t = Trace::disabled();
        t.push("x", 1, 2, 3);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = Trace::enabled_with(2);
        t.set_day(3);
        t.push("a", 1, 0, 0);
        t.push("b", 2, 0, 0);
        t.push("c", 3, 0, 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let kinds: Vec<_> = t.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["b", "c"]);
        assert!(t.iter().all(|e| e.day == 3));
    }

    #[test]
    fn settings_parse() {
        assert!(!Trace::from_setting("").is_enabled());
        assert!(!Trace::from_setting("0").is_enabled());
        assert!(!Trace::from_setting("off").is_enabled());
        assert!(!Trace::from_setting("junk").is_enabled());
        assert!(Trace::from_setting("1").is_enabled());
        assert!(Trace::from_setting("on").is_enabled());
        assert!(Trace::from_setting("TRUE").is_enabled());
        let t = Trace::from_setting("16");
        assert!(t.is_enabled());
        let mut t = t;
        for i in 0..20 {
            t.push("k", i, 0, 0);
        }
        assert_eq!(t.len(), 16);
        assert_eq!(t.dropped(), 4);
    }

    #[test]
    fn snapshot_serializes() {
        let mut t = Trace::enabled_with(4);
        t.push("enforce.block", 7, 10, 4);
        let json = t.snapshot().to_json();
        assert!(json.contains("enforce.block"));
        assert!(json.contains("\"dropped\": 0"));
    }
}
