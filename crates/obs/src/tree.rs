//! The hierarchical span tree behind [`crate::Timings`].
//!
//! PR 2's flat span list could say *how much* time `aas.instalex.apply`
//! cost but not *where it sat*: under which phase, over which worker
//! lanes, overlapping what. The tree fixes that with two coordinated
//! structures:
//!
//! * an **arena of nodes** — one node per distinct `(parent, name, lane)`
//!   triple, children kept in first-open order. Nodes carry only
//!   aggregate wall-clock stats plus *structural* counts (instances for
//!   main-lane spans, attach regions for worker spans). The structural
//!   view ([`StructureSnapshot`]) is a pure function of the program's
//!   serial control flow, so it is byte-identical for any
//!   `FOOTSTEPS_THREADS` value — the determinism suite pins this;
//! * an optional **event log** — `B`/`E` pairs with real timestamps on
//!   explicit thread lanes (`tid 0` = the serial coordinator, `tid k` =
//!   worker lane `k-1`), recorded only when event collection is enabled
//!   (`FOOTSTEPS_TRACE_OUT`). Events are appended at open/close time, so
//!   per-lane order and `B`/`E` nesting are correct by construction and
//!   the Chrome-trace exporter ([`crate::export`]) never has to sort.
//!
//! Wall-clock quarantine is unchanged: nothing in this module may feed
//! `StudyResults::to_json()` or the golden digest. Durations and
//! timestamps live here precisely so they *can* vary run to run.
//!
//! The serial coordinator owns the tree — worker threads never touch it.
//! Parallel regions measure themselves against a copied [`Stopwatch`] and
//! hand their `(lane, start, end)` offsets to [`SpanTree::attach_workers`]
//! on the serial side, mirroring the metrics registry's "merge on the
//! serial path only" contract.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

use crate::span::{SpanStats, Stopwatch};

/// Hard cap on recorded events (≈24 MiB): a scaled study emits a few
/// hundred thousand; anything past the cap increments `dropped_events`
/// instead of growing without bound.
const MAX_EVENTS: usize = 1 << 20;

/// Which timeline a span's instances run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaneKind {
    /// The serial coordinator thread (`tid 0`).
    Main,
    /// Parallel worker lanes (`tid = lane + 1`), attached post-hoc by the
    /// coordinator via [`SpanTree::attach_workers`].
    Worker,
}

impl LaneKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            LaneKind::Main => "main",
            LaneKind::Worker => "worker",
        }
    }
}

/// One worker lane's self-measured interval inside a parallel region,
/// expressed as offsets (seconds) from the region's start. Workers build
/// these against a copied [`Stopwatch`]; only the serial coordinator may
/// turn them into tree nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerSpan {
    /// Lane index within the region (0-based; exported as `tid = lane+1`).
    pub lane: u32,
    /// Seconds from region start to this worker's first instruction.
    pub start_secs: f64,
    /// Seconds from region start to this worker's last instruction.
    pub end_secs: f64,
}

impl WorkerSpan {
    pub fn dur_secs(&self) -> f64 {
        (self.end_secs - self.start_secs).max(0.0)
    }
}

/// Token for an open span; hand it back to [`SpanTree::close`].
#[derive(Debug)]
pub struct SpanHandle {
    node: usize,
    token: u64,
}

/// One `B` (begin) or `E` (end) timeline event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Arena index of the span's node (names are looked up at export).
    pub node: u32,
    /// Thread lane: 0 = main, k = worker lane k-1.
    pub tid: u32,
    /// `true` for `B`, `false` for `E`.
    pub begin: bool,
    /// Seconds since the tree's epoch.
    pub ts_secs: f64,
}

/// Counter values sampled from the metrics registry at a phase boundary,
/// exported as Chrome `C` events.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// The phase that just closed.
    pub phase: String,
    /// Seconds since the tree's epoch.
    pub ts_secs: f64,
    /// `(counter name, cumulative value)` pairs, in registry (sorted) order.
    pub counters: Vec<(String, u64)>,
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    lane: LaneKind,
    children: Vec<usize>,
    /// Closed instances (main) / attached worker spans (worker).
    count: u64,
    /// Attach regions for worker nodes; equals `count` for main nodes.
    /// This is the thread-invariant structural count: a parallel region
    /// attaches once per serial call site no matter how many lanes ran.
    regions: u64,
    /// Highest lane index + 1 seen (1 for main nodes).
    lanes: u32,
    total_secs: f64,
    max_secs: f64,
    /// Worker nodes: summed wall time of the attach regions (max end
    /// offset per region) — the main-timeline cost of the parallel work,
    /// used for exclusive-time accounting and lane utilization.
    region_wall_secs: f64,
}

impl Node {
    fn new(name: &str, lane: LaneKind) -> Self {
        Node {
            name: name.to_string(),
            lane,
            children: Vec::new(),
            count: 0,
            regions: 0,
            lanes: 1,
            total_secs: 0.0,
            max_secs: 0.0,
            region_wall_secs: 0.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenFrame {
    node: usize,
    token: u64,
    start_secs: f64,
    /// Whether a `B` event was recorded (and an `E` is therefore owed).
    emitted: bool,
}

/// The span tree. Owned by the serial coordinator via [`crate::Timings`];
/// never shared with worker threads.
#[derive(Debug, Clone)]
pub struct SpanTree {
    epoch: Instant,
    /// Arena; index 0 is the synthetic root.
    nodes: Vec<Node>,
    /// Open main-lane spans, outermost first.
    stack: Vec<OpenFrame>,
    next_token: u64,
    collect_events: bool,
    events: Vec<SpanEvent>,
    /// Per-lane timestamp high-water marks (index = tid): every pushed
    /// event is clamped to its lane's watermark, so per-lane monotonicity
    /// holds by construction even when a back-dated leaf start (`now -
    /// measured`) lands before the enclosing span opened.
    watermarks: Vec<f64>,
    dropped_events: u64,
    counter_samples: Vec<CounterSample>,
    /// Self-measured bookkeeping overhead (seconds).
    self_secs: f64,
}

impl Default for SpanTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTree {
    pub fn new() -> Self {
        SpanTree {
            epoch: Instant::now(),
            nodes: vec![Node::new("study", LaneKind::Main)],
            stack: Vec::new(),
            next_token: 0,
            collect_events: false,
            events: Vec::new(),
            watermarks: Vec::new(),
            dropped_events: 0,
            counter_samples: Vec::new(),
            self_secs: 0.0,
        }
    }

    /// Seconds since this tree was created. The common timebase for
    /// anchoring worker spans: read it on the serial side right before
    /// starting a parallel region, then pass it to
    /// [`SpanTree::attach_workers`] with the workers' relative offsets.
    pub fn now_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Turn on `B`/`E` event collection (implied by `FOOTSTEPS_TRACE_OUT`).
    /// Aggregates and structure are always collected; only the per-event
    /// timeline is gated, because it is the only part with real memory cost.
    pub fn enable_events(&mut self) {
        self.collect_events = true;
    }

    pub fn events_enabled(&self) -> bool {
        self.collect_events
    }

    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    pub fn counter_samples(&self) -> &[CounterSample] {
        &self.counter_samples
    }

    pub fn obs_self_secs(&self) -> f64 {
        self.self_secs
    }

    /// Name of the node at arena index `i` (for the exporter).
    pub fn node_name(&self, i: u32) -> &str {
        &self.nodes[i as usize].name
    }

    /// Highest worker lane count attached anywhere (0 if none).
    pub fn max_worker_lanes(&self) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.lane == LaneKind::Worker)
            .map(|n| n.lanes)
            .max()
            .unwrap_or(0)
    }

    /// Find or create the child of `parent` with this `(name, lane)`.
    fn intern(&mut self, parent: usize, name: &str, lane: LaneKind) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].lane == lane && self.nodes[c].name == name)
        {
            return c;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::new(name, lane));
        self.nodes[parent].children.push(idx);
        idx
    }

    fn current(&self) -> usize {
        self.stack.last().map_or(0, |f| f.node)
    }

    /// Clamp `ts` to the lane's watermark and advance it.
    fn clamp_ts(&mut self, tid: u32, ts: f64) -> f64 {
        let idx = tid as usize;
        if self.watermarks.len() <= idx {
            self.watermarks.resize(idx + 1, 0.0);
        }
        let ts = ts.max(self.watermarks[idx]);
        self.watermarks[idx] = ts;
        ts
    }

    /// Push one event. `force` bypasses the cap (used for the `E` of an
    /// already-emitted `B`, so pairs never split at the overflow edge).
    fn push_event(&mut self, node: usize, tid: u32, begin: bool, ts_secs: f64, force: bool) -> bool {
        if !self.collect_events {
            return false;
        }
        if !force && self.events.len() >= MAX_EVENTS {
            self.dropped_events += 1;
            return false;
        }
        let ts_secs = self.clamp_ts(tid, ts_secs);
        self.events.push(SpanEvent { node: node as u32, tid, begin, ts_secs });
        true
    }

    /// Open a span under the current top of the stack.
    pub fn open(&mut self, name: &str) -> SpanHandle {
        let w = Stopwatch::start();
        let parent = self.current();
        let node = self.intern(parent, name, LaneKind::Main);
        let token = self.next_token;
        self.next_token += 1;
        let start_secs = self.now_secs();
        let emitted = self.push_event(node, 0, true, start_secs, false);
        self.stack.push(OpenFrame { node, token, start_secs, emitted });
        self.self_secs += w.elapsed_secs();
        SpanHandle { node, token }
    }

    /// Close a span opened with [`SpanTree::open`].
    ///
    /// Unbalanced-close recovery: any spans still open *above* this one
    /// (a child leaked by an early return or a panic caught upstream) are
    /// force-closed first, innermost out, so the stack discipline — and
    /// the exported `B`/`E` nesting — survives. Closing a handle whose
    /// frame is already gone (its ancestor force-closed it) is a no-op.
    pub fn close(&mut self, handle: SpanHandle) {
        let w = Stopwatch::start();
        let now = self.now_secs();
        if let Some(pos) = self
            .stack
            .iter()
            .rposition(|f| f.token == handle.token && f.node == handle.node)
        {
            while self.stack.len() > pos {
                let frame = self.stack.pop().expect("stack length checked");
                let dur = (now - frame.start_secs).max(0.0);
                let n = &mut self.nodes[frame.node];
                n.count += 1;
                n.regions += 1;
                n.total_secs += dur;
                if dur > n.max_secs {
                    n.max_secs = dur;
                }
                if frame.emitted {
                    // The E of an emitted B is never dropped: the cap only
                    // suppresses new B events.
                    self.push_event(frame.node, 0, false, now, true);
                }
            }
        }
        self.self_secs += w.elapsed_secs();
    }

    /// Record an already-measured leaf span under the current top of the
    /// stack (the dynamic-name path: measure with a [`Stopwatch`], then
    /// record). The instance is placed at `[now - secs, now]`, which is
    /// within the enclosing span by construction.
    pub fn record_leaf(&mut self, name: &str, secs: f64) {
        let w = Stopwatch::start();
        let parent = self.current();
        let node = self.intern(parent, name, LaneKind::Main);
        let now = self.now_secs();
        {
            let n = &mut self.nodes[node];
            n.count += 1;
            n.regions += 1;
            n.total_secs += secs;
            if secs > n.max_secs {
                n.max_secs = secs;
            }
        }
        if self.collect_events {
            if self.events.len() + 2 <= MAX_EVENTS {
                let start = (now - secs.max(0.0)).max(0.0);
                self.push_event(node, 0, true, start, true);
                self.push_event(node, 0, false, now, true);
            } else {
                self.dropped_events += 2;
            }
        }
        self.self_secs += w.elapsed_secs();
    }

    /// Attach one parallel region's worker lanes under the current top of
    /// the stack as a single worker node named `name`.
    ///
    /// `region_start_secs` anchors the region on the tree's timebase (read
    /// [`SpanTree::now_secs`] right before spawning); each [`WorkerSpan`]
    /// carries offsets relative to that anchor. Called on the serial side
    /// after the join, so the structural effect (one region, one node) is
    /// identical for any lane count — only `count`/`lanes`/durations vary.
    pub fn attach_workers(&mut self, name: &str, region_start_secs: f64, spans: &[WorkerSpan]) {
        let w = Stopwatch::start();
        let parent = self.current();
        let node = self.intern(parent, name, LaneKind::Worker);
        let mut region_wall = 0.0f64;
        for s in spans {
            let dur = s.dur_secs();
            let n = &mut self.nodes[node];
            n.count += 1;
            n.total_secs += dur;
            if dur > n.max_secs {
                n.max_secs = dur;
            }
            if s.lane + 1 > n.lanes {
                n.lanes = s.lane + 1;
            }
            if s.end_secs > region_wall {
                region_wall = s.end_secs;
            }
            if self.collect_events {
                if self.events.len() + 2 <= MAX_EVENTS {
                    let b = region_start_secs + s.start_secs.max(0.0);
                    let e = region_start_secs + s.end_secs.max(s.start_secs.max(0.0));
                    let tid = s.lane + 1;
                    self.push_event(node, tid, true, b, true);
                    self.push_event(node, tid, false, e, true);
                } else {
                    self.dropped_events += 2;
                }
            }
        }
        let n = &mut self.nodes[node];
        n.regions += 1;
        n.region_wall_secs += region_wall;
        self.self_secs += w.elapsed_secs();
    }

    /// Record a phase-boundary counter sample (exported as `C` events).
    pub fn sample_counters(&mut self, phase: &str, counters: Vec<(String, u64)>) {
        let ts_secs = self.now_secs();
        self.counter_samples.push(CounterSample {
            phase: phase.to_string(),
            ts_secs,
            counters,
        });
    }

    /// The flat name-keyed aggregate view (backwards-compatible
    /// [`crate::TimingsSnapshot`] payload). Nodes sharing a name under
    /// different parents merge, exactly like the old flat accumulator.
    pub fn flat(&self) -> BTreeMap<String, SpanStats> {
        let mut out: BTreeMap<String, SpanStats> = BTreeMap::new();
        for n in self.nodes.iter().skip(1) {
            if n.count == 0 {
                continue;
            }
            let s = out.entry(n.name.clone()).or_default();
            s.count += n.count;
            s.total_secs += n.total_secs;
            if n.max_secs > s.max_secs {
                s.max_secs = n.max_secs;
            }
        }
        out
    }

    /// The deterministic structural view: names, nesting, lane kinds, and
    /// thread-invariant counts (instances for main spans, attach regions
    /// for worker spans). No durations, no lane counts — everything here
    /// must be byte-identical across `FOOTSTEPS_THREADS` values.
    pub fn structure(&self) -> StructureSnapshot {
        fn build(tree: &SpanTree, idx: usize) -> StructureNode {
            let n = &tree.nodes[idx];
            StructureNode {
                name: n.name.clone(),
                lane: n.lane.as_str().to_string(),
                count: n.regions,
                children: n.children.iter().map(|&c| build(tree, c)).collect(),
            }
        }
        StructureSnapshot {
            spans: self.nodes[0].children.iter().map(|&c| build(self, c)).collect(),
        }
    }

    /// What a child costs its parent on the main timeline: worker children
    /// cost their region wall time (the join-to-join gap), not their
    /// summed per-lane busy time.
    fn child_cost(&self, child: usize) -> f64 {
        let n = &self.nodes[child];
        match n.lane {
            LaneKind::Main => n.total_secs,
            LaneKind::Worker => n.region_wall_secs,
        }
    }

    fn exclusive_secs(&self, idx: usize) -> f64 {
        let n = &self.nodes[idx];
        let children: f64 = n.children.iter().map(|&c| self.child_cost(c)).sum();
        (n.total_secs - children).max(0.0)
    }

    /// Compact summary for `perf_baseline --json`.
    pub fn summary(&self) -> SpanTreeSummary {
        let phases = self.nodes[0]
            .children
            .iter()
            .map(|&c| {
                let n = &self.nodes[c];
                PhaseSummary {
                    name: n.name.clone(),
                    count: n.count,
                    inclusive_secs: n.total_secs,
                    exclusive_secs: self.exclusive_secs(c),
                }
            })
            .collect();
        let shard_lanes = self
            .nodes
            .iter()
            .filter(|n| n.lane == LaneKind::Worker && n.name.ends_with(".shard"))
            .map(|n| n.lanes)
            .max()
            .unwrap_or(0);
        let span_instances = self.nodes.iter().skip(1).map(|n| n.count).sum();
        SpanTreeSummary {
            phases,
            span_names: self.nodes.len() as u64 - 1,
            span_instances,
            shard_lanes,
            worker_lanes: self.max_worker_lanes(),
            obs_self_secs: self.self_secs,
            structure_digest: format!("0x{:016x}", self.structure().digest()),
        }
    }

    /// The flamegraph-style text report: the tree with inclusive/exclusive
    /// wall time, the top-`k` spans by exclusive time, worker-lane
    /// utilization, and the self-measured obs overhead line.
    pub fn flame_report(&self, top_k: usize) -> String {
        use std::fmt::Write as _;
        let total: f64 = self.nodes[0].children.iter().map(|&c| self.child_cost(c)).sum();
        let pct = |secs: f64| if total > 0.0 { 100.0 * secs / total } else { 0.0 };
        let mut out = String::new();
        let _ = writeln!(out, "span tree (inclusive, exclusive, % of {total:.3}s observed wall):");

        fn walk(tree: &SpanTree, idx: usize, depth: usize, out: &mut String, total: f64) {
            use std::fmt::Write as _;
            let n = &tree.nodes[idx];
            let indent = "  ".repeat(depth);
            let label = format!("{indent}{}", n.name);
            match n.lane {
                LaneKind::Main => {
                    let excl = tree.exclusive_secs(idx);
                    let p = if total > 0.0 { 100.0 * n.total_secs / total } else { 0.0 };
                    let _ = writeln!(
                        out,
                        "  {label:<44} {:>9.3}s {:>9.3}s {:>5.1}%  x{}",
                        n.total_secs, excl, p, n.count
                    );
                }
                LaneKind::Worker => {
                    let denom = n.region_wall_secs * f64::from(n.lanes);
                    let util = if denom > 0.0 { 100.0 * n.total_secs / denom } else { 0.0 };
                    let _ = writeln!(
                        out,
                        "  {label:<44} busy {:>7.3}s over {:>7.3}s wall on {} lane(s), util {:>5.1}%  x{}",
                        n.total_secs, n.region_wall_secs, n.lanes, util, n.regions
                    );
                }
            }
            for &c in &n.children {
                walk(tree, c, depth + 1, out, total);
            }
        }
        for &c in &self.nodes[0].children {
            walk(self, c, 0, &mut out, total);
        }

        // Top-k main-lane spans by exclusive time.
        let mut hot: Vec<(usize, f64)> = (1..self.nodes.len())
            .filter(|&i| self.nodes[i].lane == LaneKind::Main && self.nodes[i].count > 0)
            .map(|i| (i, self.exclusive_secs(i)))
            .collect();
        hot.sort_by(|a, b| b.1.total_cmp(&a.1));
        let _ = writeln!(out, "top {} spans by exclusive time:", top_k.min(hot.len()));
        for (rank, (i, excl)) in hot.iter().take(top_k).enumerate() {
            let n = &self.nodes[*i];
            let _ = writeln!(
                out,
                "  {:>2}. {:<42} {:>9.3}s excl ({:>4.1}%)  x{}",
                rank + 1,
                n.name,
                excl,
                pct(*excl),
                n.count
            );
        }

        // Worker-lane utilization across all parallel regions.
        let workers: Vec<usize> = (1..self.nodes.len())
            .filter(|&i| self.nodes[i].lane == LaneKind::Worker && self.nodes[i].count > 0)
            .collect();
        if !workers.is_empty() {
            let _ = writeln!(out, "worker-lane utilization:");
            for i in workers {
                let n = &self.nodes[i];
                let denom = n.region_wall_secs * f64::from(n.lanes);
                let util = if denom > 0.0 { 100.0 * n.total_secs / denom } else { 0.0 };
                let _ = writeln!(
                    out,
                    "  {:<44} {} lane(s), {} region(s): busy {:.3}s / wall {:.3}s = {:>5.1}%",
                    n.name, n.lanes, n.regions, n.total_secs, n.region_wall_secs, util
                );
            }
        }
        if self.dropped_events > 0 {
            let _ = writeln!(out, "note: {} events dropped past the {} cap", self.dropped_events, MAX_EVENTS);
        }
        let _ = writeln!(
            out,
            "obs overhead: {:.4}s self-measured ({:.2}% of observed wall)",
            self.self_secs,
            pct(self.self_secs)
        );
        out
    }
}

/// FNV-1a over a byte string — the same digest family `StudyResults`
/// uses, reimplemented here because `obs` sits below `core`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One node of the deterministic structural snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureNode {
    pub name: String,
    /// `"main"` or `"worker"`.
    pub lane: String,
    /// Thread-invariant count: closed instances for main spans, attach
    /// regions for worker spans (per-lane instance counts vary with
    /// `FOOTSTEPS_THREADS` and are deliberately excluded).
    pub count: u64,
    pub children: Vec<StructureNode>,
}

/// The deterministic span-structure view, snapshot-tested byte-for-byte
/// across `FOOTSTEPS_THREADS` ∈ {1, 2, 8}.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureSnapshot {
    pub spans: Vec<StructureNode>,
}

impl StructureSnapshot {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("structure snapshot serializes")
    }

    pub fn digest(&self) -> u64 {
        fnv1a(self.to_json().as_bytes())
    }
}

/// Per-phase inclusive/exclusive totals for `perf_baseline --json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    pub name: String,
    pub count: u64,
    pub inclusive_secs: f64,
    pub exclusive_secs: f64,
}

/// Where the time went: the span-tree digest of one run, embedded in
/// `BENCH_daily_engine.json` next to the throughput numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanTreeSummary {
    /// Depth-1 spans (the study phases), in first-open order.
    pub phases: Vec<PhaseSummary>,
    /// Distinct span nodes in the tree.
    pub span_names: u64,
    /// Total closed span instances, worker lanes included.
    pub span_instances: u64,
    /// Highest lane count over `*.shard` worker nodes (the sharded apply).
    pub shard_lanes: u32,
    /// Highest lane count over all worker nodes.
    pub worker_lanes: u32,
    /// Self-measured observability bookkeeping time.
    pub obs_self_secs: f64,
    /// FNV-1a of the structural snapshot JSON, hex. Must be identical
    /// across thread counts — `scripts/ci.sh` compares 1T vs 8T.
    pub structure_digest: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_follows_open_close_order() {
        let mut t = SpanTree::new();
        let a = t.open("phase.a");
        let b = t.open("inner");
        t.close(b);
        let b2 = t.open("inner");
        t.close(b2);
        t.close(a);
        let c = t.open("phase.c");
        t.close(c);

        let s = t.structure();
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].name, "phase.a");
        assert_eq!(s.spans[0].count, 1);
        assert_eq!(s.spans[0].children.len(), 1);
        assert_eq!(s.spans[0].children[0].name, "inner");
        assert_eq!(s.spans[0].children[0].count, 2);
        assert_eq!(s.spans[1].name, "phase.c");
        assert!(s.spans[1].children.is_empty());
    }

    #[test]
    fn unbalanced_close_recovers_the_stack() {
        // Dropping `inner` without closing it (early return / panic path)
        // must not corrupt the tree: closing the outer span force-closes
        // the leaked child, and later spans nest correctly again.
        let mut t = SpanTree::new();
        let outer = t.open("outer");
        let _leaked = t.open("inner");
        let _leaked2 = t.open("innermost");
        t.close(outer);
        let next = t.open("next");
        t.close(next);

        let s = t.structure();
        assert_eq!(s.spans.len(), 2, "next must be a root, not a child of outer: {s:?}");
        assert_eq!(s.spans[0].name, "outer");
        assert_eq!(s.spans[0].children.len(), 1);
        assert_eq!(s.spans[0].children[0].name, "inner");
        assert_eq!(s.spans[0].children[0].children[0].name, "innermost");
        // All three were counted exactly once despite the force-close.
        assert_eq!(s.spans[0].count, 1);
        assert_eq!(s.spans[0].children[0].count, 1);
        // Closing the leaked handle again is a no-op.
        t.close(_leaked);
        t.close(_leaked2);
        assert_eq!(t.structure(), s);
    }

    #[test]
    fn worker_regions_are_thread_invariant() {
        // The same serial control flow with different lane counts must
        // produce byte-identical structure JSON: worker nodes count
        // regions, not per-lane instances.
        let mut snapshots = Vec::new();
        for lanes in [1usize, 2, 8] {
            let mut t = SpanTree::new();
            let p = t.open("aas.test.apply");
            let t0 = t.now_secs();
            let spans: Vec<WorkerSpan> = (0..lanes)
                .map(|l| WorkerSpan { lane: l as u32, start_secs: 0.0, end_secs: 0.001 })
                .collect();
            t.attach_workers("aas.test.apply.shard", t0, &spans);
            t.close(p);
            snapshots.push(t.structure().to_json());
        }
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[1], snapshots[2]);
        assert!(snapshots[0].contains("\"worker\""));
    }

    #[test]
    fn flat_view_merges_same_name_across_parents() {
        let mut t = SpanTree::new();
        for phase in ["phase.a", "phase.b"] {
            let p = t.open(phase);
            t.record_leaf("engine.step_day", 0.5);
            t.close(p);
        }
        let flat = t.flat();
        assert_eq!(flat["engine.step_day"].count, 2);
        assert!((flat["engine.step_day"].total_secs - 1.0).abs() < 1e-9);
        assert_eq!(flat["phase.a"].count, 1);
    }

    #[test]
    fn events_pair_and_stay_ordered_per_lane() {
        let mut t = SpanTree::new();
        t.enable_events();
        let a = t.open("outer");
        t.record_leaf("leaf", 0.0);
        let t0 = t.now_secs();
        t.attach_workers(
            "outer.worker",
            t0,
            &[
                WorkerSpan { lane: 0, start_secs: 0.0, end_secs: 0.002 },
                WorkerSpan { lane: 1, start_secs: 0.001, end_secs: 0.003 },
            ],
        );
        t.close(a);

        // Per tid: B/E match like brackets and timestamps never go back.
        let mut stacks: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
        let mut last_ts: std::collections::BTreeMap<u32, f64> = Default::default();
        for ev in t.events() {
            let ts = last_ts.entry(ev.tid).or_insert(f64::NEG_INFINITY);
            assert!(ev.ts_secs >= *ts, "ts went backwards on tid {}", ev.tid);
            *ts = ev.ts_secs;
            let stack = stacks.entry(ev.tid).or_default();
            if ev.begin {
                stack.push(ev.node);
            } else {
                assert_eq!(stack.pop(), Some(ev.node), "E without matching B");
            }
        }
        assert!(stacks.values().all(|s| s.is_empty()), "unclosed B events");
        assert_eq!(t.events().len(), 8);
        assert_eq!(t.dropped_events(), 0);
    }

    #[test]
    fn summary_reports_phase_exclusive_and_shard_lanes() {
        let mut t = SpanTree::new();
        let p = t.open("phase.x");
        t.record_leaf("child", 0.25);
        let t0 = t.now_secs();
        t.attach_workers(
            "aas.x.apply.shard",
            t0,
            &[
                WorkerSpan { lane: 0, start_secs: 0.0, end_secs: 0.25 },
                WorkerSpan { lane: 1, start_secs: 0.0, end_secs: 0.25 },
            ],
        );
        t.close(p);
        let s = t.summary();
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].name, "phase.x");
        assert_eq!(s.shard_lanes, 2);
        assert_eq!(s.worker_lanes, 2);
        // Exclusive subtracts the leaf and the region *wall* (0.25s), not
        // the 0.5s of summed lane busy time.
        let n = &s.phases[0];
        assert!(n.inclusive_secs >= n.exclusive_secs);
        assert_eq!(s.span_instances, 1 + 1 + 2);
        assert!(s.structure_digest.starts_with("0x"));
    }

    #[test]
    fn flame_report_lists_hot_spans_and_overhead() {
        let mut t = SpanTree::new();
        let p = t.open("phase.y");
        t.record_leaf("hot", 2.0);
        t.close(p);
        let report = t.flame_report(3);
        assert!(report.contains("span tree"), "{report}");
        assert!(report.contains("hot"), "{report}");
        assert!(report.contains("top "), "{report}");
        assert!(report.contains("obs overhead:"), "{report}");
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a("a") per the published test vectors.
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }
}
