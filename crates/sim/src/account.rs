//! Accounts, profiles, and media.
//!
//! Accounts live in a dense arena ([`AccountStore`]) indexed by
//! [`AccountId`]. The simulation distinguishes profile *kinds* (organic
//! users vs the three honeypot flavours from §4.1) and models each user's
//! propensity to reciprocate inbound actions — the organic behaviour that
//! reciprocity-abuse services exploit (§3.1).

use crate::country::Country;
use crate::ids::{AccountId, AsnId, MediaId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// What kind of profile an account presents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProfileKind {
    /// A normal platform user.
    Organic,
    /// Honeypot with the minimum viable profile: ≥10 photos of a single
    /// theme, no bio/name/profile picture, follows nobody (§4.1.1).
    HoneypotEmpty,
    /// Honeypot with a fully populated profile: photos plus unique profile
    /// picture, biography and name, following 10–20 high-profile accounts
    /// (§4.1.1).
    HoneypotLivedIn,
    /// Honeypot never registered with any service; used to establish the
    /// baseline of background activity (§4.1.3).
    HoneypotInactive,
}

impl ProfileKind {
    /// True for any of the three honeypot flavours.
    pub fn is_honeypot(self) -> bool {
        !matches!(self, ProfileKind::Organic)
    }

    /// The *perceived profile quality* multiplier applied when other users
    /// decide whether to reciprocate an action from this account. Lived-in
    /// accounts look like real people and draw roughly 1.6–2.6× the
    /// reciprocal likes of empty shells (§4.3, Table 5); organic customers
    /// of the services are real accounts and get the same benefit.
    pub fn perceived_quality(self) -> f64 {
        match self {
            ProfileKind::Organic => 1.0,
            ProfileKind::HoneypotLivedIn => 1.0,
            ProfileKind::HoneypotEmpty | ProfileKind::HoneypotInactive => 0.52,
        }
    }
}

/// Per-user propensity to respond to an inbound action notification.
///
/// The paper's Table 5 shows users overwhelmingly reciprocate *in kind*
/// (like→like, follow→follow), occasionally follow back after a like, and
/// never like back after a follow. We encode those three channels; the
/// fourth (follow→like) is structurally zero.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReciprocityProfile {
    /// P(send a like back | received a like), before quality scaling.
    pub like_for_like: f64,
    /// P(follow the liker | received a like), before quality scaling.
    pub follow_for_like: f64,
    /// P(follow back | received a follow), before quality scaling.
    pub follow_for_follow: f64,
}

impl ReciprocityProfile {
    /// A profile that never reciprocates (honeypots and baseline accounts:
    /// "we do not use them to perform actions on Instagram", §4.1.1).
    pub const SILENT: ReciprocityProfile = ReciprocityProfile {
        like_for_like: 0.0,
        follow_for_like: 0.0,
        follow_for_follow: 0.0,
    };

    /// Validate that all probabilities are in `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        [self.like_for_like, self.follow_for_like, self.follow_for_follow]
            .iter()
            .all(|p| (0.0..=1.0).contains(p))
    }
}

/// One platform account.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Account {
    /// Arena id.
    pub id: AccountId,
    /// Creation instant.
    pub created_at: SimTime,
    /// Deletion instant, if the account was deleted (honeypots are deleted
    /// at the end of the measurement, which removes their actions, §4.1.2).
    pub deleted_at: Option<SimTime>,
    /// Profile kind.
    pub kind: ProfileKind,
    /// Home country (where the user's logins geolocate to).
    pub country: Country,
    /// The residential ASN the user typically logs in from.
    pub home_asn: AsnId,
    /// Number of accounts this account follows (out-degree).
    pub following: u32,
    /// Number of accounts following this account (in-degree).
    pub followers: u32,
    /// Media posted by this account.
    pub media: Vec<MediaId>,
    /// Reciprocation behaviour.
    pub reciprocity: ReciprocityProfile,
}

impl Account {
    /// Whether the account is live (created and not deleted) at instant `t`.
    pub fn is_live_at(&self, t: SimTime) -> bool {
        self.created_at <= t && self.deleted_at.is_none_or(|d| t < d)
    }
}

/// A photo or video posted by an account.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Media {
    /// Arena id.
    pub id: MediaId,
    /// Posting account.
    pub owner: AccountId,
    /// When it was posted.
    pub posted_at: SimTime,
    /// Lifetime likes received (standing; removed likes are subtracted).
    pub likes: u64,
    /// Lifetime comments received.
    pub comments: u64,
}

/// Dense arena of accounts plus a media store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccountStore {
    accounts: Vec<Account>,
    media: Vec<Media>,
}

impl AccountStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of accounts ever created (including deleted ones).
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True if no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Create an account and return its id.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        created_at: SimTime,
        kind: ProfileKind,
        country: Country,
        home_asn: AsnId,
        following: u32,
        followers: u32,
        reciprocity: ReciprocityProfile,
    ) -> AccountId {
        debug_assert!(reciprocity.is_valid(), "invalid reciprocity profile");
        let id = AccountId(self.accounts.len() as u32);
        self.accounts.push(Account {
            id,
            created_at,
            deleted_at: None,
            kind,
            country,
            home_asn,
            following,
            followers,
            media: Vec::new(),
            reciprocity,
        });
        id
    }

    /// Borrow an account.
    pub fn get(&self, id: AccountId) -> &Account {
        &self.accounts[id.index()]
    }

    /// Mutably borrow an account.
    pub fn get_mut(&mut self, id: AccountId) -> &mut Account {
        &mut self.accounts[id.index()]
    }

    /// Iterate all accounts (including deleted).
    pub fn iter(&self) -> impl Iterator<Item = &Account> {
        self.accounts.iter()
    }

    /// Mark an account deleted at `t`. Idempotent.
    pub fn delete(&mut self, id: AccountId, t: SimTime) {
        let a = self.get_mut(id);
        if a.deleted_at.is_none() {
            a.deleted_at = Some(t);
        }
    }

    /// Post a new piece of media on `owner`'s account.
    pub fn post_media(&mut self, owner: AccountId, at: SimTime) -> MediaId {
        let id = MediaId(self.media.len() as u32);
        self.media.push(Media {
            id,
            owner,
            posted_at: at,
            likes: 0,
            comments: 0,
        });
        self.accounts[owner.index()].media.push(id);
        id
    }

    /// Borrow a media item.
    pub fn media(&self, id: MediaId) -> &Media {
        &self.media[id.index()]
    }

    /// Mutably borrow a media item.
    pub fn media_mut(&mut self, id: MediaId) -> &mut Media {
        &mut self.media[id.index()]
    }

    /// Number of media items ever posted.
    pub fn media_len(&self) -> usize {
        self.media.len()
    }

    /// The most recently posted media of an account, if any.
    pub fn latest_media_of(&self, owner: AccountId) -> Option<MediaId> {
        self.get(owner).media.last().copied()
    }

    /// Split the dense arena into disjoint mutable ranges at `bounds`
    /// (`bounds[s]..bounds[s+1]` becomes slice `s`). The sharded apply phase
    /// hands each worker exactly one range, so shard ownership of account
    /// state is enforced by the borrow checker rather than by convention.
    ///
    /// `bounds` must be ascending, start at 0 and end at [`Self::len`].
    pub fn split_ranges_mut(&mut self, bounds: &[usize]) -> Vec<&mut [Account]> {
        assert!(bounds.first() == Some(&0) && bounds.last() == Some(&self.accounts.len()));
        let mut out = Vec::with_capacity(bounds.len().saturating_sub(1));
        let mut rest: &mut [Account] = &mut self.accounts;
        for w in bounds.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            out.push(head);
            rest = tail;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Day;

    fn any_profile() -> ReciprocityProfile {
        ReciprocityProfile {
            like_for_like: 0.02,
            follow_for_like: 0.002,
            follow_for_follow: 0.12,
        }
    }

    #[test]
    fn create_and_lookup() {
        let mut s = AccountStore::new();
        let id = s.create(
            SimTime::EPOCH,
            ProfileKind::Organic,
            Country::Us,
            AsnId(0),
            465,
            796,
            any_profile(),
        );
        assert_eq!(s.len(), 1);
        let a = s.get(id);
        assert_eq!(a.following, 465);
        assert_eq!(a.followers, 796);
        assert!(a.is_live_at(SimTime::EPOCH));
    }

    #[test]
    fn deletion_is_idempotent_and_affects_liveness() {
        let mut s = AccountStore::new();
        let id = s.create(
            SimTime::EPOCH,
            ProfileKind::HoneypotEmpty,
            Country::Us,
            AsnId(0),
            0,
            0,
            ReciprocityProfile::SILENT,
        );
        let t = Day(10).start();
        s.delete(id, t);
        s.delete(id, Day(20).start()); // idempotent: keeps the first time
        assert_eq!(s.get(id).deleted_at, Some(t));
        assert!(s.get(id).is_live_at(Day(5).start()));
        assert!(!s.get(id).is_live_at(Day(10).start()));
    }

    #[test]
    fn liveness_before_creation_is_false() {
        let mut s = AccountStore::new();
        let id = s.create(
            Day(5).start(),
            ProfileKind::Organic,
            Country::Id,
            AsnId(1),
            10,
            10,
            any_profile(),
        );
        assert!(!s.get(id).is_live_at(Day(4).start()));
        assert!(s.get(id).is_live_at(Day(5).start()));
    }

    #[test]
    fn media_posting_links_to_owner() {
        let mut s = AccountStore::new();
        let id = s.create(
            SimTime::EPOCH,
            ProfileKind::Organic,
            Country::Br,
            AsnId(0),
            1,
            1,
            any_profile(),
        );
        let m1 = s.post_media(id, Day(1).start());
        let m2 = s.post_media(id, Day(2).start());
        assert_eq!(s.get(id).media, vec![m1, m2]);
        assert_eq!(s.latest_media_of(id), Some(m2));
        assert_eq!(s.media(m1).owner, id);
        assert_eq!(s.media_len(), 2);
    }

    #[test]
    fn empty_profiles_are_perceived_worse_than_lived_in() {
        assert!(
            ProfileKind::HoneypotEmpty.perceived_quality()
                < ProfileKind::HoneypotLivedIn.perceived_quality()
        );
        assert_eq!(ProfileKind::Organic.perceived_quality(), 1.0);
    }

    #[test]
    fn silent_profile_is_valid_and_never_responds() {
        assert!(ReciprocityProfile::SILENT.is_valid());
        assert_eq!(ReciprocityProfile::SILENT.like_for_like, 0.0);
    }

    #[test]
    fn honeypot_kinds() {
        assert!(ProfileKind::HoneypotEmpty.is_honeypot());
        assert!(ProfileKind::HoneypotLivedIn.is_honeypot());
        assert!(ProfileKind::HoneypotInactive.is_honeypot());
        assert!(!ProfileKind::Organic.is_honeypot());
    }
}
