//! Social actions and their outcomes.
//!
//! The unit of measurement in the paper is the *action*: a like, follow,
//! comment, post, or unfollow performed by one account, optionally directed
//! at another account or a piece of media. Countermeasures attach to actions
//! (a blocked action never lands; a delay-removed follow lands and is undone
//! a day later), so outcomes carry the full lifecycle.

use crate::fingerprint::ClientFingerprint;
use crate::ids::{AccountId, AsnId, MediaId};
use crate::net::IpAddr4;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// The social action types the studied services trade in (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ActionType {
    /// Like a photo/video.
    Like,
    /// Follow an account.
    Follow,
    /// Comment on a photo/video.
    Comment,
    /// Post new media on the actor's own account.
    Post,
    /// Unfollow an account (reciprocity AASs use this to shed the outbound
    /// follows they created, keeping only inbound ones).
    Unfollow,
}

impl ActionType {
    /// All action types, in a stable order used for array indexing.
    pub const ALL: [ActionType; 5] = [
        ActionType::Like,
        ActionType::Follow,
        ActionType::Comment,
        ActionType::Post,
        ActionType::Unfollow,
    ];

    /// Number of distinct action types.
    pub const COUNT: usize = 5;

    /// Stable dense index (0..COUNT).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ActionType::Like => 0,
            ActionType::Follow => 1,
            ActionType::Comment => 2,
            ActionType::Post => 3,
            ActionType::Unfollow => 4,
        }
    }

    /// Lower-case name as used in running text ("likes", "follows").
    pub fn name(self) -> &'static str {
        match self {
            ActionType::Like => "like",
            ActionType::Follow => "follow",
            ActionType::Comment => "comment",
            ActionType::Post => "post",
            ActionType::Unfollow => "unfollow",
        }
    }

    /// Whether the action targets another account's presence (and therefore
    /// generates a notification that can be reciprocated). `Post` targets
    /// the actor's own account; `Unfollow` notifies nobody.
    pub fn notifies_target(self) -> bool {
        matches!(
            self,
            ActionType::Like | ActionType::Follow | ActionType::Comment
        )
    }
}

impl std::fmt::Display for ActionType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an action is directed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionTarget {
    /// Directed at an account (follow/unfollow).
    Account(AccountId),
    /// Directed at a piece of media (like/comment).
    Media(MediaId),
    /// No external target (post on own account).
    SelfContent,
}

impl ActionTarget {
    /// The account targeted, if the target resolves to one directly.
    /// (Media targets resolve via the media store, not here.)
    pub fn account(self) -> Option<AccountId> {
        match self {
            ActionTarget::Account(a) => Some(a),
            _ => None,
        }
    }
}

/// The terminal state of a submitted action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionOutcome {
    /// The action landed and is visible to other users.
    Delivered,
    /// The action was synchronously blocked by a countermeasure: it never
    /// landed, and the submitting client can observe the failure (§6.1).
    Blocked,
    /// The action landed, but the platform scheduled its silent removal for
    /// the next day (the "delayed removal" countermeasure, §6.1). The
    /// submitting client observes success.
    DeferredRemoval,
    /// Rejected by public-API rate limiting (the reason AASs spoof the
    /// private API rather than use OAuth, §2).
    RateLimited,
}

impl ActionOutcome {
    /// What the *submitting client* observes: deferred removal looks like
    /// success, which is the entire point of that countermeasure.
    pub fn visible_success(self) -> bool {
        matches!(
            self,
            ActionOutcome::Delivered | ActionOutcome::DeferredRemoval
        )
    }

    /// Whether the action (at least initially) landed on the platform.
    pub fn landed(self) -> bool {
        self.visible_success()
    }
}

/// A fully-attributed single action event.
///
/// Event-level records are only retained for *tracked* accounts (honeypots
/// and analysis samples); bulk activity is aggregated daily (see
/// [`crate::log`]). This split is the "two-speed engine" design decision in
/// DESIGN.md §4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionEvent {
    /// When the action was submitted.
    pub at: SimTime,
    /// Account performing the action.
    pub actor: AccountId,
    /// What the action was.
    pub action: ActionType,
    /// What it was directed at.
    pub target: ActionTarget,
    /// Source address the request came from.
    pub ip: IpAddr4,
    /// ASN of the source address.
    pub asn: AsnId,
    /// Client fingerprint of the submitting software.
    pub fingerprint: ClientFingerprint,
    /// Terminal outcome.
    pub outcome: ActionOutcome,
}

/// Per-action-type counters, one lifecycle stage per field.
///
/// This is the daily aggregation record: `attempted = delivered + blocked +
/// deferred + rate_limited` holds per type (enforced by the recording API).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeCounts {
    /// Actions submitted, per [`ActionType::index`].
    pub attempted: [u32; ActionType::COUNT],
    /// Actions delivered and still standing.
    pub delivered: [u32; ActionType::COUNT],
    /// Actions synchronously blocked.
    pub blocked: [u32; ActionType::COUNT],
    /// Actions delivered but scheduled for deferred removal.
    pub deferred: [u32; ActionType::COUNT],
    /// Actions rejected by rate limiting.
    pub rate_limited: [u32; ActionType::COUNT],
}

impl TypeCounts {
    /// Record `n` actions of type `ty` with outcome `outcome`.
    pub fn record(&mut self, ty: ActionType, outcome: ActionOutcome, n: u32) {
        let i = ty.index();
        self.attempted[i] += n;
        match outcome {
            ActionOutcome::Delivered => self.delivered[i] += n,
            ActionOutcome::Blocked => self.blocked[i] += n,
            ActionOutcome::DeferredRemoval => self.deferred[i] += n,
            ActionOutcome::RateLimited => self.rate_limited[i] += n,
        }
    }

    /// Total attempted actions across all types.
    pub fn total_attempted(&self) -> u32 {
        self.attempted.iter().sum()
    }

    /// Attempted actions of one type.
    pub fn attempted_of(&self, ty: ActionType) -> u32 {
        self.attempted[ty.index()]
    }

    /// Actions of one type that visibly succeeded (delivered or deferred —
    /// the client cannot tell them apart).
    pub fn visible_success_of(&self, ty: ActionType) -> u32 {
        let i = ty.index();
        self.delivered[i] + self.deferred[i]
    }

    /// Actions of one type that were synchronously blocked.
    pub fn blocked_of(&self, ty: ActionType) -> u32 {
        self.blocked[ty.index()]
    }

    /// Actions of one type scheduled for deferred removal.
    pub fn deferred_of(&self, ty: ActionType) -> u32 {
        self.deferred[ty.index()]
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &TypeCounts) {
        for i in 0..ActionType::COUNT {
            self.attempted[i] += other.attempted[i];
            self.delivered[i] += other.delivered[i];
            self.blocked[i] += other.blocked[i];
            self.deferred[i] += other.deferred[i];
            self.rate_limited[i] += other.rate_limited[i];
        }
    }

    /// Internal consistency: every attempt is accounted for by exactly one
    /// outcome bucket.
    pub fn is_consistent(&self) -> bool {
        (0..ActionType::COUNT).all(|i| {
            self.attempted[i]
                == self.delivered[i] + self.blocked[i] + self.deferred[i] + self.rate_limited[i]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_type_indexes_are_dense_and_unique() {
        let mut seen = [false; ActionType::COUNT];
        for t in ActionType::ALL {
            assert!(!seen[t.index()]);
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn notification_semantics() {
        assert!(ActionType::Like.notifies_target());
        assert!(ActionType::Follow.notifies_target());
        assert!(ActionType::Comment.notifies_target());
        assert!(!ActionType::Post.notifies_target());
        assert!(!ActionType::Unfollow.notifies_target());
    }

    #[test]
    fn deferred_removal_looks_like_success_to_client() {
        assert!(ActionOutcome::DeferredRemoval.visible_success());
        assert!(ActionOutcome::Delivered.visible_success());
        assert!(!ActionOutcome::Blocked.visible_success());
        assert!(!ActionOutcome::RateLimited.visible_success());
    }

    #[test]
    fn type_counts_accounting() {
        let mut c = TypeCounts::default();
        c.record(ActionType::Like, ActionOutcome::Delivered, 10);
        c.record(ActionType::Like, ActionOutcome::Blocked, 3);
        c.record(ActionType::Follow, ActionOutcome::DeferredRemoval, 5);
        c.record(ActionType::Follow, ActionOutcome::RateLimited, 2);
        assert!(c.is_consistent());
        assert_eq!(c.attempted_of(ActionType::Like), 13);
        assert_eq!(c.visible_success_of(ActionType::Like), 10);
        assert_eq!(c.blocked_of(ActionType::Like), 3);
        assert_eq!(c.visible_success_of(ActionType::Follow), 5);
        assert_eq!(c.deferred_of(ActionType::Follow), 5);
        assert_eq!(c.total_attempted(), 20);
    }

    #[test]
    fn type_counts_merge() {
        let mut a = TypeCounts::default();
        a.record(ActionType::Like, ActionOutcome::Delivered, 1);
        let mut b = TypeCounts::default();
        b.record(ActionType::Like, ActionOutcome::Blocked, 2);
        b.record(ActionType::Post, ActionOutcome::Delivered, 4);
        a.merge(&b);
        assert!(a.is_consistent());
        assert_eq!(a.attempted_of(ActionType::Like), 3);
        assert_eq!(a.attempted_of(ActionType::Post), 4);
    }

    #[test]
    fn target_account_extraction() {
        assert_eq!(
            ActionTarget::Account(AccountId(5)).account(),
            Some(AccountId(5))
        );
        assert_eq!(ActionTarget::Media(MediaId(1)).account(), None);
        assert_eq!(ActionTarget::SelfContent.account(), None);
    }
}
