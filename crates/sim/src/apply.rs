//! Sharded apply phase for inbound deposit batches (DESIGN.md §4).
//!
//! The three-phase daily engine splits a collusion service-day into **plan**
//! (parallel, per-customer decisions), **route** (serial, deterministic: the
//! plans are walked in roster order and flattened into a sequence of
//! [`DepositOp`]s), and **apply** (parallel again: the ops are partitioned by
//! *target account* into dense-ID range shards and executed concurrently).
//!
//! Determinism argument, in brief:
//!
//! * every op carries its routing sequence number `seq` (its position in the
//!   serial reference order), and ops for one target always land in the same
//!   shard, in ascending `seq` order — so the per-key `prior_today`
//!   accumulation the enforcement policy observes is identical to the serial
//!   ladder's;
//! * shards touch only state they own: a disjoint range of the account
//!   arena, plus shard-local log/counter/media deltas returned in
//!   [`ShardApply`];
//! * the serial merge sweep replays those deltas in a canonical order
//!   (global `first_seq` sort for log records, shard-index order for
//!   counters) that reproduces the serial ladder's first-touch insertion
//!   order exactly, for **any** shard count;
//! * shard workers draw no randomness at all — every quantity they need was
//!   fixed by the plan/route phases — so RNG streams cannot be perturbed by
//!   scheduling.
//!
//! This module is deliberately free of observability types: workers
//! accumulate plain [`ShardCounters`], and the serial merge half (in
//! [`crate::platform::Platform::apply_deposits_sharded`]) folds them into
//! the recorder. `footsteps-lint`'s `parallel-metrics` rule scans
//! [`apply_shard`] to keep it that way.

use crate::account::Account;
use crate::actions::{ActionOutcome, ActionType, TypeCounts};
use crate::enforcement::{
    Countermeasure, Direction, EnforcementContext, EnforcementDecision, EnforcementPolicy,
};
use crate::ids::{AccountId, AsnId, MediaId, ServiceId};
use crate::log::{DayLog, InboundSource};
use crate::time::Day;
use std::collections::BTreeMap;

/// One routed inbound delivery: the unit of work of the apply phase.
///
/// A `DepositOp` captures exactly the arguments of one serial
/// [`crate::platform::Platform::deposit_inbound_enforced`] call; the route
/// phase emits them in the order the serial ladder would have made those
/// calls (including zero-quantity ops, which still contribute ground-truth
/// attribution and client-visible zero results).
#[derive(Debug, Clone, Copy)]
pub struct DepositOp {
    /// Account receiving the actions (also the shard key).
    pub target: AccountId,
    /// Action type delivered.
    pub ty: ActionType,
    /// Actions requested (post-cap; zero is legal and means "attempted
    /// nothing, but the service still drove this account").
    pub requested: u32,
    /// Delivery network of the collusion service.
    pub asn: AsnId,
    /// Ground-truth attribution.
    pub service: Option<ServiceId>,
    /// For likes/comments: the media hit, and the peak hourly like rate for
    /// the photo-burst bookkeeping.
    pub media: Option<(MediaId, u32)>,
}

/// Plain counter deltas accumulated inside one shard, merged into the
/// metrics registry by the serial sweep. Fixed fields rather than a keyed
/// map: the apply hot path must not pay a string-keyed insert per op.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardCounters {
    /// Inbound actions delivered (standing).
    pub delivered: u64,
    /// Inbound actions synchronously blocked.
    pub blocked: u64,
    /// Inbound actions scheduled for deferred removal.
    pub deferred: u64,
    /// Per-experiment-bin outcome rows: bins 0–9, then the shared overflow
    /// bin at index 10. Columns are `[delivered, blocked, deferred]`.
    pub bins: [[u64; 3]; 11],
}

impl ShardCounters {
    /// Row index for a policy-assigned bin (overflow folds into row 10,
    /// mirroring the registry's `enforce.bin_other.*` keys).
    pub fn bin_row(bin: u32) -> usize {
        (bin as usize).min(10)
    }
}

/// What one op produced, as observed by the submitting service. `seq` ties
/// the outcome back to its op for the merge sweep's trace/removal replay.
#[derive(Debug, Clone, Copy)]
pub struct DepositOutcome {
    /// Routing sequence number of the op.
    pub seq: u32,
    /// Actions delivered and standing.
    pub delivered: u32,
    /// Actions visibly blocked.
    pub blocked: u32,
    /// Actions landed but scheduled for silent removal.
    pub deferred: u32,
    /// Experiment bin the policy attributed this verdict to.
    pub bin: Option<u32>,
}

/// Everything a shard worker produced, to be folded back serially.
#[derive(Debug, Default)]
pub struct ShardApply {
    /// Per-op outcomes, in ascending `seq` order (only ops with
    /// `requested > 0`; zero ops have a fixed all-zero outcome).
    pub outcomes: Vec<DepositOutcome>,
    /// Inbound log records in first-touch order: `(first_seq, key, counts)`
    /// where `first_seq` is the seq of the op that first wrote a nonzero
    /// count for `key`. Sorting all shards' records by `first_seq` at merge
    /// reproduces the serial open-day insertion order.
    pub records: Vec<(u32, (AccountId, InboundSource), TypeCounts)>,
    /// Per-photo like-burst deltas: media → (total, peak hourly).
    pub photo: BTreeMap<MediaId, (u32, u32)>,
    /// Lifetime like-count deltas per media.
    pub media_likes: BTreeMap<MediaId, u64>,
    /// Lifetime comment-count deltas per media.
    pub media_comments: BTreeMap<MediaId, u64>,
    /// Summed counter deltas.
    pub counters: ShardCounters,
}

/// Resolve a policy decision into `(pass, excess, effective_cm)`, taking
/// into account that delayed removal only exists for follows.
pub(crate) fn split_decision(
    decision: EnforcementDecision,
    requested: u32,
    action: ActionType,
) -> (u32, u32, Countermeasure) {
    let pass = decision.pass.min(requested);
    let excess = requested - pass;
    let cm = match decision.excess {
        // "It was not possible to apply a delayed countermeasure on likes":
        // delay degrades to no-op for anything but follows.
        Countermeasure::DelayRemoval if action != ActionType::Follow => Countermeasure::None,
        other => other,
    };
    (pass, excess, cm)
}

/// Upsert a nonzero count into the shard-local record list, preserving
/// first-touch order (the record is created at the first nonzero write).
fn upsert_record(
    records: &mut Vec<(u32, (AccountId, InboundSource), TypeCounts)>,
    index: &mut BTreeMap<(AccountId, InboundSource), usize>,
    seq: u32,
    key: (AccountId, InboundSource),
    ty: ActionType,
    outcome: ActionOutcome,
    n: u32,
) {
    if n == 0 {
        return;
    }
    let i = *index.entry(key).or_insert_with(|| {
        records.push((seq, key, TypeCounts::default()));
        records.len() - 1
    });
    records[i].2.record(ty, outcome, n);
}

/// Execute one shard of the apply phase.
///
/// `seqs` lists this shard's op indices in ascending order; `accounts` is
/// the shard's dense arena range starting at account index `base`; `frozen`
/// is the day's log state as of the end of the route phase (shared read-only
/// across shards). The worker mutates nothing outside its arena range and
/// its returned [`ShardApply`].
pub fn apply_shard(
    ops: &[DepositOp],
    seqs: &[u32],
    day: Day,
    frozen: Option<&DayLog>,
    policy: &dyn EnforcementPolicy,
    accounts: &mut [Account],
    base: usize,
) -> ShardApply {
    let mut out = ShardApply::default();
    let mut index: BTreeMap<(AccountId, InboundSource), usize> = BTreeMap::new();
    for &seq in seqs {
        let op = ops[seq as usize];
        if op.requested == 0 {
            // Serial parity: a zero-quantity deposit attributes ground truth
            // (handled serially by the caller) and does nothing else.
            continue;
        }
        let key = (op.target, Some(op.asn));
        let ti = op.ty.index();
        // prior_today = what the frozen log already held for this key plus
        // what earlier ops of this shard delivered to it — exactly the
        // running total the serial ladder would have observed.
        let local = index
            .get(&key)
            .map(|&i| out.records[i].2.delivered[ti])
            .unwrap_or(0);
        let prior = frozen
            .and_then(|d| d.inbound_from(op.target, op.asn))
            .map(|c| c.delivered[ti])
            .unwrap_or(0)
            + local;
        let decision = policy.evaluate(&EnforcementContext {
            actor: op.target,
            asn: op.asn,
            action: op.ty,
            direction: Direction::Inbound,
            day,
            prior_today: prior,
            requested: op.requested,
        });
        let (pass, excess, cm) = split_decision(decision, op.requested, op.ty);
        let (standing, blocked, deferred) = match cm {
            Countermeasure::None => (pass + excess, 0, 0),
            Countermeasure::Block => (pass, excess, 0),
            Countermeasure::DelayRemoval => (pass, 0, excess),
        };
        out.counters.delivered += u64::from(standing);
        out.counters.blocked += u64::from(blocked);
        out.counters.deferred += u64::from(deferred);
        if let Some(b) = decision.bin {
            let row = &mut out.counters.bins[ShardCounters::bin_row(b)];
            row[0] += u64::from(standing);
            row[1] += u64::from(blocked);
            row[2] += u64::from(deferred);
        }
        // Column order mirrors the serial ladder: blocked first, then the
        // standing/deferred halves of the deposit.
        upsert_record(&mut out.records, &mut index, seq, key, op.ty, ActionOutcome::Blocked, blocked);
        upsert_record(
            &mut out.records,
            &mut index,
            seq,
            key,
            op.ty,
            ActionOutcome::Delivered,
            standing,
        );
        upsert_record(
            &mut out.records,
            &mut index,
            seq,
            key,
            op.ty,
            ActionOutcome::DeferredRemoval,
            deferred,
        );
        let total = standing + deferred;
        if total > 0 {
            match op.ty {
                ActionType::Follow => {
                    accounts[op.target.index() - base].followers += total;
                }
                ActionType::Like => {
                    if let Some((media_id, max_hourly)) = op.media {
                        *out.media_likes.entry(media_id).or_default() += u64::from(total);
                        let burst = out.photo.entry(media_id).or_default();
                        burst.0 += total;
                        burst.1 = burst.1.max(max_hourly);
                    }
                }
                ActionType::Comment => {
                    if let Some((media_id, _)) = op.media {
                        *out.media_comments.entry(media_id).or_default() += u64::from(total);
                    }
                }
                _ => {}
            }
        }
        out.outcomes.push(DepositOutcome {
            seq,
            delivered: standing,
            blocked,
            deferred,
            bin: decision.bin,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforcement::NoEnforcement;

    fn op(target: u32, ty: ActionType, requested: u32) -> DepositOp {
        DepositOp {
            target: AccountId(target),
            ty,
            requested,
            asn: AsnId(1),
            service: Some(ServiceId::Hublaagram),
            media: None,
        }
    }

    #[test]
    fn zero_requested_ops_leave_no_shard_state() {
        let ops = vec![op(0, ActionType::Like, 0), op(0, ActionType::Follow, 0)];
        let mut accounts: Vec<Account> = Vec::new();
        let r = apply_shard(
            &ops,
            &[0, 1],
            Day(0),
            None,
            &NoEnforcement,
            &mut accounts,
            0,
        );
        assert!(r.outcomes.is_empty());
        assert!(r.records.is_empty());
        assert_eq!(r.counters.delivered, 0);
    }

    #[test]
    fn prior_today_accumulates_across_same_key_ops() {
        // A policy thresholding at 10 should pass 10 on the first op and 0
        // on the second — the shard-local delivered total must feed back
        // into prior_today exactly as the serial ladder would.
        #[derive(Debug)]
        struct Cap10;
        impl EnforcementPolicy for Cap10 {
            fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
                EnforcementDecision::threshold(
                    ctx.requested,
                    ctx.prior_today,
                    10,
                    Countermeasure::Block,
                )
            }
        }
        let ops = vec![op(0, ActionType::Like, 8), op(0, ActionType::Like, 8)];
        let mut accounts: Vec<Account> = Vec::new();
        let r = apply_shard(&ops, &[0, 1], Day(0), None, &Cap10, &mut accounts, 0);
        assert_eq!(r.outcomes.len(), 2);
        assert_eq!((r.outcomes[0].delivered, r.outcomes[0].blocked), (8, 0));
        assert_eq!((r.outcomes[1].delivered, r.outcomes[1].blocked), (2, 6));
        // One record (one key), created at the first op's seq.
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].0, 0);
        assert_eq!(r.records[0].2.delivered[ActionType::Like.index()], 10);
        assert_eq!(r.records[0].2.blocked[ActionType::Like.index()], 6);
    }
}
