//! Organic background traffic.
//!
//! Thresholds in §6.2 are computed against *legitimate* activity: "for ASNs
//! with both AAS and benign traffic, we measure the daily 99th percentile of
//! likes and follows produced by Instagram accounts that are not
//! participating in AASs". That requires benign traffic to exist — both on
//! residential networks and *blended into* some of the hosting ASNs the
//! services use (VPN exits, cloud-hosted apps).
//!
//! The generator samples a subset of organic users each day and submits
//! their activity as official-app batches; a configurable slice of actors
//! routes through designated "blend" ASNs.

use crate::ids::AsnId;
use crate::platform::{BatchRequest, Platform, PoolStats};
use crate::population::{sample_lognormal, Population};
use crate::prelude::{ActionType, ClientFingerprint};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Background-traffic configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackgroundConfig {
    /// Organic users acting per day (sampled from the population).
    pub daily_actors: u32,
    /// Hosting/VPN ASNs with benign traffic blended in, and the number of
    /// background actors routed through each per day.
    pub blend: Vec<(AsnId, u32)>,
    /// Median likes per actor-day (log-normal).
    pub likes_median: f64,
    /// Median follows per actor-day (log-normal).
    pub follows_median: f64,
    /// Log-normal σ for daily volumes. Heavy enough that the 99th
    /// percentile sits an order of magnitude above the median, like real
    /// user activity distributions.
    pub sigma: f64,
    /// Probability an actor also posts a comment batch.
    pub comment_prob: f64,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        Self {
            daily_actors: 1_500,
            blend: Vec::new(),
            likes_median: 8.0,
            follows_median: 3.0,
            sigma: 1.0,
            comment_prob: 0.2,
        }
    }
}

/// Drive one day of organic background activity.
pub fn run_background_day(
    platform: &mut Platform,
    population: &Population,
    config: &BackgroundConfig,
    rng: &mut impl Rng,
) {
    let mut blend_plan: Vec<AsnId> = Vec::new();
    for &(asn, n) in &config.blend {
        blend_plan.extend(std::iter::repeat_n(asn, n as usize));
    }
    for i in 0..config.daily_actors {
        let actor = population.sample_uniform(rng.gen());
        // Route the first `blend_plan.len()` actors through blend ASNs, the
        // rest through their home network.
        let asn = blend_plan
            .get(i as usize)
            .copied()
            .unwrap_or_else(|| platform.accounts.get(actor).home_asn);
        let ip = platform.asns.ip_in(asn, rng.gen::<u32>());
        platform.record_login(actor);
        for (ty, median) in [
            (ActionType::Like, config.likes_median),
            (ActionType::Follow, config.follows_median),
        ] {
            let count = sample_lognormal(rng, median, config.sigma).round() as u32;
            if count == 0 {
                continue;
            }
            platform.submit_batch(BatchRequest {
                actor,
                action: ty,
                count,
                asn,
                ip,
                fingerprint: ClientFingerprint::OfficialApp,
                pool: PoolStats::INERT,
                service: None,
            });
        }
        if rng.gen::<f64>() < config.comment_prob {
            platform.submit_batch(BatchRequest {
                actor,
                action: ActionType::Comment,
                count: 1 + (rng.gen::<f64>() * 3.0) as u32,
                asn,
                ip,
                fingerprint: ClientFingerprint::OfficialApp,
                pool: PoolStats::INERT,
                service: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    
    use crate::country::Country;
    use crate::net::{AsnKind, AsnRegistry};
    use crate::platform::PlatformConfig;
    use crate::population::{synthesize, PopulationConfig, ResidentialIndex};
    use crate::time::Day;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn world() -> (Platform, Population, AsnId) {
        let mut reg = AsnRegistry::new();
        for c in Country::ALL {
            reg.register(&format!("res-{}", c.code()), c, AsnKind::Residential, 50_000);
        }
        let mixed = reg.register("mixed-host", Country::Us, AsnKind::Hosting, 10_000);
        let residential = ResidentialIndex::build(&reg);
        let mut platform =
            Platform::new(reg, PlatformConfig::default(), SmallRng::seed_from_u64(40));
        let mut rng = SmallRng::seed_from_u64(41);
        let pop = synthesize(
            &mut platform.accounts,
            &residential,
            &PopulationConfig { size: 5_000, ..PopulationConfig::default() },
            &mut rng,
        );
        (platform, pop, mixed)
    }

    #[test]
    fn background_traffic_lands_on_home_and_blend_asns() {
        let (mut platform, pop, mixed) = world();
        let cfg = BackgroundConfig {
            daily_actors: 300,
            blend: vec![(mixed, 40)],
            ..BackgroundConfig::default()
        };
        platform.begin_day(Day(0));
        let mut rng = SmallRng::seed_from_u64(42);
        run_background_day(&mut platform, &pop, &cfg, &mut rng);
        let day = platform.log.day(Day(0)).expect("traffic recorded");
        let blend_actors: std::collections::HashSet<_> = day
            .outbound()
            .filter(|(k, _)| k.asn == mixed)
            .map(|(k, _)| k.account)
            .collect();
        assert!(
            (30..=40).contains(&blend_actors.len()),
            "~40 actors on the blend ASN, got {}",
            blend_actors.len()
        );
        let home_records = day.outbound().filter(|(k, _)| k.asn != mixed).count();
        assert!(home_records > 200, "most actors act from home");
        // All background traffic is official-app.
        assert!(day
            .outbound()
            .all(|(k, _)| k.fingerprint == ClientFingerprint::OfficialApp));
    }

    #[test]
    fn background_volumes_are_heavy_tailed() {
        let (mut platform, pop, _) = world();
        let cfg = BackgroundConfig {
            daily_actors: 2_000,
            ..BackgroundConfig::default()
        };
        platform.begin_day(Day(0));
        let mut rng = SmallRng::seed_from_u64(43);
        run_background_day(&mut platform, &pop, &cfg, &mut rng);
        let day = platform.log.day(Day(0)).unwrap();
        let mut likes: Vec<u32> = day
            .outbound()
            .map(|(_, c)| c.attempted_of(ActionType::Like))
            .filter(|&n| n > 0)
            .collect();
        likes.sort_unstable();
        let median = likes[likes.len() / 2];
        let p99 = likes[(likes.len() as f64 * 0.99) as usize];
        assert!((4..=16).contains(&median), "median {median}");
        assert!(p99 > 5 * median, "p99 {p99} vs median {median}");
    }

    #[test]
    fn background_traffic_has_no_service_attribution() {
        let (mut platform, pop, _) = world();
        platform.begin_day(Day(0));
        let mut rng = SmallRng::seed_from_u64(44);
        run_background_day(
            &mut platform,
            &pop,
            &BackgroundConfig { daily_actors: 100, ..BackgroundConfig::default() },
            &mut rng,
        );
        let day = platform.log.day(Day(0)).unwrap();
        for (k, _) in day.outbound() {
            assert!(!platform.is_ground_truth_abusive(k.account));
        }
    }
}
