//! Organic reciprocation behaviour.
//!
//! Reciprocity-abuse services work *only* because some fraction of real
//! users return an unsolicited action in kind (§3.1). This module is the
//! behavioural heart of the substrate: it decides, for an inbound action
//! notification, whether the receiving user responds and how.
//!
//! Empirical anchors from the paper (§4.3, Table 5):
//!
//! * users overwhelmingly reciprocate **in kind** (like→like, follow→follow);
//! * a like occasionally earns a follow-back; a follow **never** earns a like;
//! * follow→follow reciprocation is high (~10–16%), like→like modest (~2–4%);
//! * "lived-in" actors draw 1.6–2.6× the reciprocal *likes* of empty shells,
//!   but only ~1.1–1.2× the reciprocal *follows* — profile quality matters
//!   much more when deciding to engage with content than when following back;
//! * services bias their targeting toward users with high out-degree and low
//!   in-degree (Figures 3/4), i.e. users already inclined to follow others.
//!
//! The model: each account carries a personal [`ReciprocityProfile`] derived
//! at synthesis time from its *followback tendency* (a function of its
//! degree imbalance). The effective response probability to a specific actor
//! scales that personal propensity by the actor's perceived profile quality,
//! with a channel-specific exponent.

use crate::account::{ProfileKind, ReciprocityProfile};
use crate::actions::ActionType;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The three live reciprocation channels. (Follow→like is structurally zero:
/// "users never reciprocate with likes when followed", §4.3.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResponseChannel {
    /// Inbound like → outbound like.
    LikeForLike,
    /// Inbound like → outbound follow.
    FollowForLike,
    /// Inbound follow → outbound follow.
    FollowForFollow,
}

impl ResponseChannel {
    /// The channels triggered by an inbound action of type `ty`, with the
    /// response action each produces.
    pub fn triggered_by(ty: ActionType) -> &'static [(ResponseChannel, ActionType)] {
        match ty {
            ActionType::Like => &[
                (ResponseChannel::LikeForLike, ActionType::Like),
                (ResponseChannel::FollowForLike, ActionType::Follow),
            ],
            ActionType::Follow => &[(ResponseChannel::FollowForFollow, ActionType::Follow)],
            // Comments could plausibly earn engagement too, but the paper
            // does not measure comment reciprocation; we conservatively
            // model none.
            _ => &[],
        }
    }
}

/// Global behaviour constants.
///
/// `*_base` values are the population-scale propensities for a user of
/// *average* followback tendency; per-user values span roughly
/// `0.4×..1.6×` base depending on tendency (see [`synthesize_profile`]).
/// The defaults are calibrated so the full pipeline (targeting bias →
/// notification → response) measures out to Table 5's rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorParams {
    /// Mean P(like back | inbound like).
    pub like_for_like_base: f64,
    /// Mean P(follow | inbound like).
    pub follow_for_like_base: f64,
    /// Mean P(follow back | inbound follow).
    pub follow_for_follow_base: f64,
    /// Exponent applied to actor profile quality on the like channels.
    /// Quality 0.52 with exponent 1.0 halves response rates for empty
    /// profiles, matching the ~2× lived-in/empty gap for likes.
    pub like_quality_exponent: f64,
    /// Exponent applied on the follow channel. Small (0.25): follow-back
    /// decisions barely look at the actor's profile, matching the ~1.1–1.2×
    /// gap for follows.
    pub follow_quality_exponent: f64,
    /// How strongly a user's followback tendency modulates their personal
    /// propensities (0 = everyone identical, 1 = full 0.4×–1.6× spread).
    pub tendency_spread: f64,
    /// Fraction of users who are "follow-from-like enthusiasts": a small
    /// population segment that frequently follows accounts whose likes they
    /// receive. Independent of followback tendency; this is the trait the
    /// Instalex targeting quirk selects on (Table 5's like→follow anomaly).
    pub follow_like_enthusiast_rate: f64,
    /// Multiplier on `follow_for_like_base` for enthusiasts. Non-enthusiasts
    /// are scaled down so the population mean stays at base.
    pub follow_like_enthusiast_boost: f64,
}

impl Default for BehaviorParams {
    fn default() -> Self {
        Self {
            // Targets of the services are biased toward high-tendency users
            // (~1.3× base on average); with empty-profile quality 0.52 the
            // honeypot-measured like→like rate lands near 2%, lived-in near
            // 3.6% — Table 5's range.
            like_for_like_base: 0.030,
            follow_for_like_base: 0.0035,
            follow_for_follow_base: 0.105,
            like_quality_exponent: 1.0,
            follow_quality_exponent: 0.25,
            tendency_spread: 1.0,
            follow_like_enthusiast_rate: 0.12,
            follow_like_enthusiast_boost: 6.0,
        }
    }
}

impl BehaviorParams {
    /// Validate ranges (probabilities in (0,1), exponents non-negative).
    pub fn is_valid(&self) -> bool {
        let probs = [
            self.like_for_like_base,
            self.follow_for_like_base,
            self.follow_for_follow_base,
        ];
        probs.iter().all(|p| (0.0..1.0).contains(p))
            && self.like_quality_exponent >= 0.0
            && self.follow_quality_exponent >= 0.0
            && (0.0..=1.0).contains(&self.tendency_spread)
            && (0.0..1.0).contains(&self.follow_like_enthusiast_rate)
            && self.follow_like_enthusiast_boost >= 1.0
            && self.follow_like_enthusiast_rate * self.follow_like_enthusiast_boost < 1.0
    }
}

/// A user's *followback tendency* in `[0, 1]`, derived from degree
/// imbalance: users who follow many accounts but are followed by few are the
/// ones who tend to return unsolicited actions. This is the latent trait the
/// services' targeting engines select for (§5.3).
pub fn followback_tendency(following: u32, followers: u32, noise: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&noise), "noise must be a U[0,1) draw");
    let ratio = (f64::from(following) + 1.0) / (f64::from(followers) + 1.0);
    // Logistic squash of the log-ratio: ratio 1 → 0.5, ratio 4 → ~0.8.
    let x = ratio.ln();
    let logistic = 1.0 / (1.0 + (-x).exp());
    // Blend with uniform noise so degree imbalance is predictive but not
    // deterministic (real users vary).
    0.65 * logistic + 0.35 * noise
}

/// Derive a personal reciprocity profile from global params, a user's
/// followback tendency, and an independent `quirk` draw in `[0,1)` deciding
/// whether the user is a follow-from-like enthusiast.
pub fn synthesize_profile(
    params: &BehaviorParams,
    tendency: f64,
    quirk: f64,
) -> ReciprocityProfile {
    debug_assert!((0.0..=1.0).contains(&tendency));
    debug_assert!((0.0..1.0).contains(&quirk));
    // Map tendency in [0,1] to a multiplier in [1-0.6s, 1+0.6s] around base.
    let m = 1.0 + params.tendency_spread * 1.2 * (tendency - 0.5);
    // Enthusiast scaling keeps the population mean at base: the boosted
    // segment is balanced by scaling everyone else down.
    let rate = params.follow_like_enthusiast_rate;
    let boost = params.follow_like_enthusiast_boost;
    let w = if quirk < rate {
        boost
    } else {
        (1.0 - rate * boost) / (1.0 - rate)
    };
    ReciprocityProfile {
        like_for_like: (params.like_for_like_base * m).clamp(0.0, 1.0),
        follow_for_like: (params.follow_for_like_base * m * w).clamp(0.0, 1.0),
        follow_for_follow: (params.follow_for_follow_base * m).clamp(0.0, 1.0),
    }
}

/// Effective probability that `target_profile` responds on `channel` to an
/// action performed by an account of kind `actor_kind`.
pub fn response_probability(
    params: &BehaviorParams,
    channel: ResponseChannel,
    target_profile: &ReciprocityProfile,
    actor_kind: ProfileKind,
) -> f64 {
    let q = actor_kind.perceived_quality();
    match channel {
        ResponseChannel::LikeForLike => {
            target_profile.like_for_like * q.powf(params.like_quality_exponent)
        }
        ResponseChannel::FollowForLike => {
            target_profile.follow_for_like * q.powf(params.like_quality_exponent)
        }
        ResponseChannel::FollowForFollow => {
            target_profile.follow_for_follow * q.powf(params.follow_quality_exponent)
        }
    }
}

/// Draw from Binomial(n, p) deterministically from `rng`.
///
/// Exact Bernoulli summation for small `n`; for large `n` a clamped normal
/// approximation — the aggregate daily engine samples reciprocation for
/// thousands of outbound actions per customer and the approximation error is
/// far below the behavioural noise being modelled.
pub fn sample_binomial(rng: &mut impl Rng, n: u32, p: f64) -> u32 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        let mut k = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        k
    } else {
        let mean = f64::from(n) * p;
        let sd = (f64::from(n) * p * (1.0 - p)).sqrt();
        // Box–Muller from two uniforms; cheap and dependency-free.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = (mean + sd * z).round();
        x.clamp(0.0, f64::from(n)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_are_valid() {
        assert!(BehaviorParams::default().is_valid());
    }

    #[test]
    fn channels_match_paper_semantics() {
        let like = ResponseChannel::triggered_by(ActionType::Like);
        assert_eq!(like.len(), 2);
        let follow = ResponseChannel::triggered_by(ActionType::Follow);
        assert_eq!(follow, &[(ResponseChannel::FollowForFollow, ActionType::Follow)]);
        // Follow never earns a like: no LikeForFollow channel exists.
        assert!(ResponseChannel::triggered_by(ActionType::Unfollow).is_empty());
        assert!(ResponseChannel::triggered_by(ActionType::Post).is_empty());
    }

    #[test]
    fn tendency_rises_with_degree_imbalance() {
        // Follows many, followed by few → high tendency.
        let eager = followback_tendency(2_000, 100, 0.5);
        // Influencer shape: followed by many, follows few → low tendency.
        let influencer = followback_tendency(100, 2_000, 0.5);
        assert!(eager > 0.6, "eager={eager}");
        assert!(influencer < 0.4, "influencer={influencer}");
        assert!(eager > influencer);
    }

    #[test]
    fn tendency_is_bounded() {
        for (f, g, n) in [(0, 0, 0.0), (u32::MAX, 0, 0.999), (0, u32::MAX, 0.0)] {
            let t = followback_tendency(f, g, n);
            assert!((0.0..=1.0).contains(&t), "t={t}");
        }
    }

    #[test]
    fn profile_synthesis_scales_with_tendency() {
        let params = BehaviorParams::default();
        let lo = synthesize_profile(&params, 0.0, 0.5);
        let mid = synthesize_profile(&params, 0.5, 0.5);
        let hi = synthesize_profile(&params, 1.0, 0.5);
        assert!(lo.follow_for_follow < mid.follow_for_follow);
        assert!(mid.follow_for_follow < hi.follow_for_follow);
        assert!((mid.like_for_like - params.like_for_like_base).abs() < 1e-12);
        assert!(lo.is_valid() && mid.is_valid() && hi.is_valid());
    }

    #[test]
    fn empty_profiles_suppress_likes_more_than_follows() {
        let params = BehaviorParams::default();
        let profile = synthesize_profile(&params, 0.5, 0.5);
        let like_e = response_probability(
            &params,
            ResponseChannel::LikeForLike,
            &profile,
            ProfileKind::HoneypotEmpty,
        );
        let like_l = response_probability(
            &params,
            ResponseChannel::LikeForLike,
            &profile,
            ProfileKind::HoneypotLivedIn,
        );
        let fol_e = response_probability(
            &params,
            ResponseChannel::FollowForFollow,
            &profile,
            ProfileKind::HoneypotEmpty,
        );
        let fol_l = response_probability(
            &params,
            ResponseChannel::FollowForFollow,
            &profile,
            ProfileKind::HoneypotLivedIn,
        );
        let like_ratio = like_l / like_e;
        let fol_ratio = fol_l / fol_e;
        assert!(like_ratio > 1.5, "likes gap should be large: {like_ratio}");
        assert!(fol_ratio < 1.3, "follows gap should be small: {fol_ratio}");
        assert!(like_ratio > fol_ratio);
    }

    #[test]
    fn enthusiasts_have_boosted_follow_for_like_and_mean_is_preserved() {
        let params = BehaviorParams::default();
        let enthusiast = synthesize_profile(&params, 0.5, 0.0);
        let plain = synthesize_profile(&params, 0.5, 0.5);
        assert!(enthusiast.follow_for_like > 4.0 * plain.follow_for_like);
        // Population mean stays at base.
        let rate = params.follow_like_enthusiast_rate;
        let mean = rate * enthusiast.follow_for_like + (1.0 - rate) * plain.follow_for_like;
        assert!((mean - params.follow_for_like_base).abs() / params.follow_for_like_base < 1e-9);
    }

    #[test]
    fn binomial_small_n_exact_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let k = sample_binomial(&mut rng, 10, 0.3);
            assert!(k <= 10);
        }
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 1.0), 10);
    }

    #[test]
    fn binomial_large_n_matches_mean() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 10_000u32;
        let p = 0.12;
        let trials = 200;
        let mut total = 0u64;
        for _ in 0..trials {
            total += u64::from(sample_binomial(&mut rng, n, p));
        }
        let mean = total as f64 / f64::from(trials);
        let expect = f64::from(n) * p;
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn binomial_is_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(
                sample_binomial(&mut a, 1_000, 0.1),
                sample_binomial(&mut b, 1_000, 0.1)
            );
        }
    }
}
