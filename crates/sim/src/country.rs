//! Country model for geolocation-based analyses.
//!
//! The paper (Table 7, Figure 2) geolocates both the services (from their
//! websites and the ASNs their traffic originates from) and their customers
//! (from the most frequent login country, per the platform's IP geolocation
//! system). We model a compact set of countries that covers every country
//! named by the paper plus a long tail bucket.

use serde::{Deserialize, Serialize};

/// Countries distinguished by the synthetic geolocation system.
///
/// The set covers the countries the paper names (operating countries in
/// Table 7, Indonesian like-sellers in Table 4, the ≥5% buckets implied by
/// Figure 2) plus representative high-population Instagram markets; anything
/// else is `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Country {
    /// United States.
    Us,
    /// Russia.
    Ru,
    /// Indonesia.
    Id,
    /// United Kingdom.
    Gb,
    /// Brazil.
    Br,
    /// India.
    In,
    /// Turkey.
    Tr,
    /// Iran.
    Ir,
    /// Germany.
    De,
    /// Italy.
    It,
    /// Long-tail bucket for every other country.
    Other,
}

impl Country {
    /// All modelled countries (including the `Other` bucket).
    pub const ALL: [Country; 11] = [
        Country::Us,
        Country::Ru,
        Country::Id,
        Country::Gb,
        Country::Br,
        Country::In,
        Country::Tr,
        Country::Ir,
        Country::De,
        Country::It,
        Country::Other,
    ];

    /// ISO-3166-ish alpha-2 code (upper case), `"OTHER"` for the bucket.
    pub fn code(self) -> &'static str {
        match self {
            Country::Us => "US",
            Country::Ru => "RU",
            Country::Id => "ID",
            Country::Gb => "GB",
            Country::Br => "BR",
            Country::In => "IN",
            Country::Tr => "TR",
            Country::Ir => "IR",
            Country::De => "DE",
            Country::It => "IT",
            Country::Other => "OTHER",
        }
    }

    /// Full English name.
    pub fn name(self) -> &'static str {
        match self {
            Country::Us => "United States",
            Country::Ru => "Russia",
            Country::Id => "Indonesia",
            Country::Gb => "United Kingdom",
            Country::Br => "Brazil",
            Country::In => "India",
            Country::Tr => "Turkey",
            Country::Ir => "Iran",
            Country::De => "Germany",
            Country::It => "Italy",
            Country::Other => "Other",
        }
    }

    /// Stable index for array-backed per-country accumulators.
    pub fn index(self) -> usize {
        match self {
            Country::Us => 0,
            Country::Ru => 1,
            Country::Id => 2,
            Country::Gb => 3,
            Country::Br => 4,
            Country::In => 5,
            Country::Tr => 6,
            Country::Ir => 7,
            Country::De => 8,
            Country::It => 9,
            Country::Other => 10,
        }
    }
}

impl std::fmt::Display for Country {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// A discrete distribution over countries, used when synthesising user
/// populations and per-service customer mixes.
///
/// Weights need not sum to one; sampling normalises internally.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountryMix {
    weights: Vec<(Country, f64)>,
    total: f64,
}

impl CountryMix {
    /// Build a mix from `(country, weight)` pairs. Weights must be finite
    /// and non-negative, and at least one must be positive.
    pub fn new(weights: Vec<(Country, f64)>) -> Self {
        assert!(!weights.is_empty(), "country mix must be non-empty");
        let mut total = 0.0;
        for &(c, w) in &weights {
            assert!(w.is_finite() && w >= 0.0, "bad weight {w} for {c}");
            total += w;
        }
        assert!(total > 0.0, "country mix must have positive total weight");
        Self { weights, total }
    }

    /// Sample a country using a uniform draw in `[0,1)`.
    ///
    /// Taking the uniform value (instead of an `&mut Rng`) keeps this type
    /// trivially testable and lets callers batch their RNG usage.
    pub fn sample(&self, u: f64) -> Country {
        debug_assert!((0.0..1.0).contains(&u), "u must be in [0,1)");
        let target = u * self.total;
        let mut acc = 0.0;
        for &(c, w) in &self.weights {
            acc += w;
            if target < acc {
                return c;
            }
        }
        // Floating-point slop: fall back to the last entry.
        self.weights.last().expect("non-empty").0
    }

    /// The normalised probability of a given country under this mix.
    pub fn probability(&self, country: Country) -> f64 {
        self.weights
            .iter()
            .filter(|(c, _)| *c == country)
            .map(|(_, w)| w / self.total)
            .sum()
    }

    /// The platform-wide organic mix: a plausible global Instagram-user
    /// distribution (US-heavy with large BR/IN/ID populations).
    pub fn global_organic() -> Self {
        Self::new(vec![
            (Country::Us, 0.21),
            (Country::Br, 0.11),
            (Country::In, 0.10),
            (Country::Id, 0.08),
            (Country::Ru, 0.05),
            (Country::Tr, 0.05),
            (Country::Gb, 0.04),
            (Country::De, 0.03),
            (Country::It, 0.03),
            (Country::Ir, 0.03),
            (Country::Other, 0.27),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_indexes_are_unique() {
        let mut codes = std::collections::HashSet::new();
        let mut idx = std::collections::HashSet::new();
        for c in Country::ALL {
            assert!(codes.insert(c.code()));
            assert!(idx.insert(c.index()));
        }
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = CountryMix::new(vec![(Country::Us, 3.0), (Country::Ru, 1.0)]);
        // Deterministic grid sampling: 75% of the grid should be US.
        let n = 10_000;
        let us = (0..n)
            .map(|i| mix.sample(i as f64 / n as f64))
            .filter(|&c| c == Country::Us)
            .count();
        let frac = us as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn probability_is_normalised() {
        let mix = CountryMix::global_organic();
        let total: f64 = Country::ALL.iter().map(|&c| mix.probability(c)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_edge_values() {
        let mix = CountryMix::new(vec![(Country::Us, 1.0), (Country::Id, 1.0)]);
        assert_eq!(mix.sample(0.0), Country::Us);
        assert_eq!(mix.sample(0.999_999), Country::Id);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_mix_rejected() {
        CountryMix::new(vec![(Country::Us, 0.0)]);
    }
}
