//! Enforcement hooks: how countermeasures attach to the platform.
//!
//! The platform exposes a single extension point, [`EnforcementPolicy`]. On
//! every submission it asks the installed policy how many of the requested
//! actions pass untouched and what happens to the excess. The two concrete
//! countermeasures from §6.1 — synchronous block and delayed removal — are
//! expressed as [`Countermeasure`] variants; the *policy logic* (thresholds,
//! bins, experiment windows) lives in `footsteps-detect`/`footsteps-intervene`
//! and is injected, keeping the substrate mechanism/policy-separated.

use crate::actions::ActionType;
use crate::ids::{AccountId, AsnId};
use crate::time::Day;
use serde::{Deserialize, Serialize};

/// What happens to actions above a policy's threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Countermeasure {
    /// Nothing: deliver normally (control bins).
    None,
    /// Synchronous block: the action fails visibly (§6.1 "Synchronous
    /// Block"). The submitting client can observe the failure, which gives
    /// the service an oracle to adapt against.
    Block,
    /// Delayed removal: the action succeeds now and is silently removed one
    /// day later (§6.1 "Delayed Removal of Follows"). Only meaningful for
    /// follows; the platform ignores it for other types ("it was not
    /// possible to apply a delayed countermeasure on likes").
    DelayRemoval,
}

/// Which side of an action a threshold is being applied to.
///
/// §6.2: "we track the number of **outbound** actions from Instagram
/// accounts used by the Reciprocity Abuse AASs, and we track the number of
/// **inbound** actions from accounts used by the Collusion Network AAS."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// The account in `EnforcementContext::actor` is *performing* actions.
    Outbound,
    /// The account in `EnforcementContext::actor` is *receiving* actions
    /// (collusion-network deliveries).
    Inbound,
}

/// Context handed to the policy for each submission.
#[derive(Debug, Clone, Copy)]
pub struct EnforcementContext {
    /// The account performing (outbound) or receiving (inbound) the actions.
    pub actor: AccountId,
    /// ASN the traffic originates from.
    pub asn: AsnId,
    /// Action type being performed.
    pub action: ActionType,
    /// Whether the threshold side is outbound or inbound.
    pub direction: Direction,
    /// Day of submission.
    pub day: Day,
    /// Actions of this type already counted against this actor on this side
    /// earlier today (the policy compares `prior + requested` against its
    /// daily threshold).
    pub prior_today: u32,
    /// Actions requested in this submission.
    pub requested: u32,
}

/// Policy verdict for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnforcementDecision {
    /// How many of the requested actions pass with no countermeasure.
    pub pass: u32,
    /// What happens to the remaining `requested - pass`.
    pub excess: Countermeasure,
    /// Intervention bin that produced this verdict, when the policy assigns
    /// accounts to experiment bins (§6.3). Observability-only: the platform
    /// attributes enforcement outcomes per bin but never branches on it.
    pub bin: Option<u32>,
}

impl EnforcementDecision {
    /// Let everything through.
    pub fn allow_all(requested: u32) -> Self {
        Self {
            pass: requested,
            excess: Countermeasure::None,
            bin: None,
        }
    }

    /// Apply `cm` to everything above a daily threshold, given what was
    /// already attempted today.
    pub fn threshold(requested: u32, prior_today: u32, threshold: u32, cm: Countermeasure) -> Self {
        let room = threshold.saturating_sub(prior_today);
        Self {
            pass: requested.min(room),
            excess: cm,
            bin: None,
        }
    }

    /// Tag the verdict with the experiment bin that produced it.
    pub fn with_bin(mut self, bin: u32) -> Self {
        self.bin = Some(bin);
        self
    }
}

/// A platform with no experimental countermeasures installed (the state of
/// the world during the 90-day characterisation period of §5).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoEnforcement;

/// The policy trait. Implementations must be deterministic functions of the
/// context (plus their own configuration): the experiment in §6.3 fixed its
/// thresholds at the start "to prevent an adversary from affecting the false
/// positive rate".
/// `Debug` is a supertrait so containers holding a `Box<dyn
/// EnforcementPolicy>` (the [`crate::platform::Platform`]) can derive it.
/// `Send + Sync` are supertraits so the sharded apply phase can evaluate
/// the installed policy from scoped worker threads; policies are plain
/// configuration data (thresholds, bins, windows) fixed before the day
/// runs, so shared immutable access is safe by construction.
pub trait EnforcementPolicy: std::fmt::Debug + Send + Sync {
    /// Decide what happens to a submission.
    fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision;
}

impl EnforcementPolicy for NoEnforcement {
    fn evaluate(&self, ctx: &EnforcementContext) -> EnforcementDecision {
        EnforcementDecision::allow_all(ctx.requested)
    }
}

/// The default installed policy is "no countermeasures". Checkpoints skip
/// the boxed policy (it is not data: every study phase installs its own at
/// entry), and deserialization refills the field with this default.
impl Default for Box<dyn EnforcementPolicy> {
    fn default() -> Self {
        Box::new(NoEnforcement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(prior: u32, requested: u32) -> EnforcementContext {
        EnforcementContext {
            actor: AccountId(1),
            asn: AsnId(0),
            action: ActionType::Follow,
            direction: Direction::Outbound,
            day: Day(0),
            prior_today: prior,
            requested,
        }
    }

    #[test]
    fn no_enforcement_allows_everything() {
        let d = NoEnforcement.evaluate(&ctx(1_000, 500));
        assert_eq!(d.pass, 500);
        assert_eq!(d.excess, Countermeasure::None);
    }

    #[test]
    fn threshold_decision_splits_at_boundary() {
        // Threshold 100, 80 already done, 50 requested: 20 pass, 30 excess.
        let d = EnforcementDecision::threshold(50, 80, 100, Countermeasure::Block);
        assert_eq!(d.pass, 20);
        assert_eq!(d.excess, Countermeasure::Block);
    }

    #[test]
    fn threshold_decision_all_above() {
        let d = EnforcementDecision::threshold(10, 200, 100, Countermeasure::DelayRemoval);
        assert_eq!(d.pass, 0);
    }

    #[test]
    fn threshold_decision_all_below() {
        let d = EnforcementDecision::threshold(10, 0, 100, Countermeasure::Block);
        assert_eq!(d.pass, 10);
    }

    #[test]
    fn bin_tag_is_carried_without_changing_the_verdict() {
        let plain = EnforcementDecision::threshold(50, 80, 100, Countermeasure::Block);
        let tagged = EnforcementDecision::threshold(50, 80, 100, Countermeasure::Block).with_bin(3);
        assert_eq!(tagged.bin, Some(3));
        assert_eq!((tagged.pass, tagged.excess), (plain.pass, plain.excess));
        assert_eq!(plain.bin, None);
    }
}
