//! Client fingerprints.
//!
//! The paper notes (§2) that commercial account-automation services bypass
//! the rate-limited public OAuth API by reverse engineering the private API
//! used by the official mobile client and issuing *spoofed* requests. The
//! platform, in turn, fingerprints clients (request shape, header ordering,
//! TLS quirks — abstracted here into an opaque variant) and those
//! fingerprints are among the "additional signals produced within Instagram"
//! used to attribute activity to services (§5).

use serde::{Deserialize, Serialize};

/// How a request presented itself to the platform edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ClientFingerprint {
    /// The genuine official mobile app. Organic user traffic.
    OfficialApp,
    /// The genuine web client. Organic user traffic.
    WebClient,
    /// The public OAuth API used by legitimate third-party integrations;
    /// heavily rate limited, which is why AASs avoid it.
    PublicApi,
    /// A spoofed private-API client. The `variant` distinguishes distinct
    /// automation stacks: each AAS's homegrown client emulation has its own
    /// stable quirks, which is what makes fingerprinting useful for
    /// attribution. Variants are opaque small integers assigned per service
    /// implementation.
    SpoofedMobile {
        /// Stable identifier of the automation stack producing the traffic.
        variant: u16,
    },
}

impl ClientFingerprint {
    /// True if this fingerprint corresponds to bona-fide first-party client
    /// software (as opposed to API or emulated traffic).
    pub fn is_organic_client(self) -> bool {
        matches!(
            self,
            ClientFingerprint::OfficialApp | ClientFingerprint::WebClient
        )
    }

    /// True if this is emulated/spoofed mobile traffic.
    pub fn is_spoofed(self) -> bool {
        matches!(self, ClientFingerprint::SpoofedMobile { .. })
    }

    /// Short label for logs and reports.
    pub fn label(self) -> String {
        match self {
            ClientFingerprint::OfficialApp => "app".to_owned(),
            ClientFingerprint::WebClient => "web".to_owned(),
            ClientFingerprint::PublicApi => "oauth-api".to_owned(),
            ClientFingerprint::SpoofedMobile { variant } => format!("spoofed:{variant}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organic_vs_spoofed_partition() {
        assert!(ClientFingerprint::OfficialApp.is_organic_client());
        assert!(ClientFingerprint::WebClient.is_organic_client());
        assert!(!ClientFingerprint::PublicApi.is_organic_client());
        let sp = ClientFingerprint::SpoofedMobile { variant: 3 };
        assert!(sp.is_spoofed());
        assert!(!sp.is_organic_client());
        assert!(!ClientFingerprint::OfficialApp.is_spoofed());
    }

    #[test]
    fn labels_are_distinct_per_variant() {
        let a = ClientFingerprint::SpoofedMobile { variant: 1 }.label();
        let b = ClientFingerprint::SpoofedMobile { variant: 2 }.label();
        assert_ne!(a, b);
        assert_eq!(ClientFingerprint::PublicApi.label(), "oauth-api");
    }
}
