//! The follow graph.
//!
//! A full edge store for hundreds of thousands of simulated users would be
//! wasteful: the measurement pipeline only ever inspects *degrees* of
//! organic accounts (Figures 3/4 compare follower/following counts), while
//! exact edge sets matter only for *tracked* accounts — honeypots (whose
//! inbound follow events are the ground truth of §4) and countermeasure
//! bookkeeping (delayed removal must undo specific follows).
//!
//! The graph therefore stores:
//! * degree counters on every account (owned by [`crate::account::Account`]);
//! * exact follower/following sets for accounts explicitly marked *tracked*.
//!
//! This is the scalability design documented in DESIGN.md; it mirrors how
//! production measurement systems aggregate.

use crate::account::AccountStore;
use crate::ids::AccountId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Outcome of attempting to add a follow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowResult {
    /// A new edge was created.
    Created,
    /// The edge already existed (tracked endpoints only; untracked edges are
    /// approximated as always-new, which is accurate because services
    /// deduplicate their own target lists).
    AlreadyFollowing,
    /// Self-follows are rejected.
    SelfFollow,
}

/// The follow graph with tracked-edge refinement.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SocialGraph {
    /// Accounts whose exact edges are maintained.
    tracked: HashSet<AccountId>,
    /// Exact follower sets (who follows the key) for tracked accounts.
    followers_of: HashMap<AccountId, HashSet<AccountId>>,
    /// Exact following sets (whom the key follows) for tracked accounts.
    following_of: HashMap<AccountId, HashSet<AccountId>>,
}

impl SocialGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark an account as tracked, so its exact edges are maintained from
    /// now on. (Pre-existing untracked edges are not reconstructed; track
    /// accounts at creation time.)
    pub fn track(&mut self, id: AccountId) {
        self.tracked.insert(id);
        self.followers_of.entry(id).or_default();
        self.following_of.entry(id).or_default();
    }

    /// Whether an account's exact edges are maintained.
    pub fn is_tracked(&self, id: AccountId) -> bool {
        self.tracked.contains(&id)
    }

    /// Add a follow edge `from -> to`, updating degree counters and (for
    /// tracked endpoints) exact sets.
    pub fn follow(
        &mut self,
        accounts: &mut AccountStore,
        from: AccountId,
        to: AccountId,
    ) -> FollowResult {
        if from == to {
            return FollowResult::SelfFollow;
        }
        let from_tracked = self.is_tracked(from);
        let to_tracked = self.is_tracked(to);
        if from_tracked || to_tracked {
            // Check duplicates on whichever exact set we have.
            let dup = if from_tracked {
                self.following_of.get(&from).is_some_and(|s| s.contains(&to))
            } else {
                self.followers_of.get(&to).is_some_and(|s| s.contains(&from))
            };
            if dup {
                return FollowResult::AlreadyFollowing;
            }
            if from_tracked {
                self.following_of.entry(from).or_default().insert(to);
            }
            if to_tracked {
                self.followers_of.entry(to).or_default().insert(from);
            }
        }
        accounts.get_mut(from).following += 1;
        accounts.get_mut(to).followers += 1;
        FollowResult::Created
    }

    /// Remove a follow edge `from -> to`. Returns `true` if (as far as the
    /// graph can tell) an edge was removed. For untracked pairs this is
    /// approximate: counters are decremented saturating at zero.
    pub fn unfollow(
        &mut self,
        accounts: &mut AccountStore,
        from: AccountId,
        to: AccountId,
    ) -> bool {
        if from == to {
            return false;
        }
        let from_tracked = self.is_tracked(from);
        let to_tracked = self.is_tracked(to);
        if from_tracked || to_tracked {
            let existed_from = if from_tracked {
                self.following_of
                    .get_mut(&from)
                    .is_some_and(|s| s.remove(&to))
            } else {
                false
            };
            let existed_to = if to_tracked {
                self.followers_of
                    .get_mut(&to)
                    .is_some_and(|s| s.remove(&from))
            } else {
                false
            };
            let existed = existed_from || existed_to;
            if !existed {
                return false;
            }
        }
        let f = accounts.get_mut(from);
        f.following = f.following.saturating_sub(1);
        let t = accounts.get_mut(to);
        t.followers = t.followers.saturating_sub(1);
        true
    }

    /// Exact follower set of a tracked account.
    ///
    /// # Panics
    /// Panics if the account is not tracked — callers must not confuse the
    /// approximate and exact worlds.
    pub fn followers_of(&self, id: AccountId) -> &HashSet<AccountId> {
        self.followers_of
            .get(&id)
            .unwrap_or_else(|| panic!("{id} is not tracked"))
    }

    /// Exact following set of a tracked account.
    ///
    /// # Panics
    /// Panics if the account is not tracked.
    pub fn following_of(&self, id: AccountId) -> &HashSet<AccountId> {
        self.following_of
            .get(&id)
            .unwrap_or_else(|| panic!("{id} is not tracked"))
    }

    /// Drop all edges touching a tracked account (used when a honeypot is
    /// deleted: "all actions to or from the account are eventually removed",
    /// §4.1.1). Degree counters of the counterparties are restored.
    pub fn purge_account(&mut self, accounts: &mut AccountStore, id: AccountId) {
        let followers: Vec<AccountId> = self
            .followers_of
            .get(&id)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for f in followers {
            self.unfollow(accounts, f, id);
        }
        let following: Vec<AccountId> = self
            .following_of
            .get(&id)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for t in following {
            self.unfollow(accounts, id, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{ProfileKind, ReciprocityProfile};
    use crate::country::Country;
    use crate::ids::AsnId;
    use crate::time::SimTime;

    fn store_with(n: usize) -> AccountStore {
        let mut s = AccountStore::new();
        for _ in 0..n {
            s.create(
                SimTime::EPOCH,
                ProfileKind::Organic,
                Country::Us,
                AsnId(0),
                0,
                0,
                ReciprocityProfile::SILENT,
            );
        }
        s
    }

    #[test]
    fn follow_updates_degrees() {
        let mut accounts = store_with(3);
        let mut g = SocialGraph::new();
        assert_eq!(
            g.follow(&mut accounts, AccountId(0), AccountId(1)),
            FollowResult::Created
        );
        assert_eq!(accounts.get(AccountId(0)).following, 1);
        assert_eq!(accounts.get(AccountId(1)).followers, 1);
    }

    #[test]
    fn self_follow_rejected() {
        let mut accounts = store_with(1);
        let mut g = SocialGraph::new();
        assert_eq!(
            g.follow(&mut accounts, AccountId(0), AccountId(0)),
            FollowResult::SelfFollow
        );
        assert_eq!(accounts.get(AccountId(0)).following, 0);
    }

    #[test]
    fn tracked_accounts_deduplicate_edges() {
        let mut accounts = store_with(2);
        let mut g = SocialGraph::new();
        g.track(AccountId(1));
        assert_eq!(
            g.follow(&mut accounts, AccountId(0), AccountId(1)),
            FollowResult::Created
        );
        assert_eq!(
            g.follow(&mut accounts, AccountId(0), AccountId(1)),
            FollowResult::AlreadyFollowing
        );
        assert_eq!(accounts.get(AccountId(1)).followers, 1);
        assert!(g.followers_of(AccountId(1)).contains(&AccountId(0)));
    }

    #[test]
    fn unfollow_tracked_edge() {
        let mut accounts = store_with(2);
        let mut g = SocialGraph::new();
        g.track(AccountId(0));
        g.follow(&mut accounts, AccountId(0), AccountId(1));
        assert!(g.unfollow(&mut accounts, AccountId(0), AccountId(1)));
        assert_eq!(accounts.get(AccountId(0)).following, 0);
        assert_eq!(accounts.get(AccountId(1)).followers, 0);
        // Second removal reports no edge.
        assert!(!g.unfollow(&mut accounts, AccountId(0), AccountId(1)));
        assert_eq!(accounts.get(AccountId(1)).followers, 0, "no underflow");
    }

    #[test]
    fn untracked_unfollow_is_approximate_but_saturating() {
        let mut accounts = store_with(2);
        let mut g = SocialGraph::new();
        g.follow(&mut accounts, AccountId(0), AccountId(1));
        assert!(g.unfollow(&mut accounts, AccountId(0), AccountId(1)));
        // Approximate world: a second unfollow still "succeeds" but degrees
        // saturate at zero rather than underflowing.
        assert!(g.unfollow(&mut accounts, AccountId(0), AccountId(1)));
        assert_eq!(accounts.get(AccountId(0)).following, 0);
        assert_eq!(accounts.get(AccountId(1)).followers, 0);
    }

    #[test]
    fn purge_restores_counterparty_degrees() {
        let mut accounts = store_with(4);
        let mut g = SocialGraph::new();
        let hp = AccountId(0);
        g.track(hp);
        // Two inbound, one outbound edge.
        g.follow(&mut accounts, AccountId(1), hp);
        g.follow(&mut accounts, AccountId(2), hp);
        g.follow(&mut accounts, hp, AccountId(3));
        g.purge_account(&mut accounts, hp);
        assert_eq!(accounts.get(hp).followers, 0);
        assert_eq!(accounts.get(hp).following, 0);
        assert_eq!(accounts.get(AccountId(1)).following, 0);
        assert_eq!(accounts.get(AccountId(2)).following, 0);
        assert_eq!(accounts.get(AccountId(3)).followers, 0);
        assert!(g.followers_of(hp).is_empty());
        assert!(g.following_of(hp).is_empty());
    }

    #[test]
    #[should_panic(expected = "not tracked")]
    fn exact_sets_of_untracked_panic() {
        let g = SocialGraph::new();
        g.followers_of(AccountId(0));
    }
}
