//! The follow graph.
//!
//! A full edge store for hundreds of thousands of simulated users would be
//! wasteful: the measurement pipeline only ever inspects *degrees* of
//! organic accounts (Figures 3/4 compare follower/following counts), while
//! exact edge sets matter only for *tracked* accounts — honeypots (whose
//! inbound follow events are the ground truth of §4) and countermeasure
//! bookkeeping (delayed removal must undo specific follows).
//!
//! The graph therefore stores:
//! * degree counters on every account (owned by [`crate::account::Account`]);
//! * exact follower/following lists for accounts explicitly marked *tracked*.
//!
//! Tracked membership is a dense `Vec<u32>` slot map indexed by account id,
//! and each tracked account's edges are sorted `Vec<AccountId>` lists, so
//! the per-action path (dup check, insert, remove) is hash-free and
//! iteration order is deterministic by construction.
//!
//! This is the scalability design documented in DESIGN.md; it mirrors how
//! production measurement systems aggregate.

use crate::account::AccountStore;
use crate::ids::AccountId;
use serde::{Deserialize, Serialize};

/// Sentinel slot for untracked accounts.
const NONE: u32 = u32::MAX;

/// Outcome of attempting to add a follow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowResult {
    /// A new edge was created.
    Created,
    /// The edge already existed (tracked endpoints only; untracked edges are
    /// approximated as always-new, which is accurate because services
    /// deduplicate their own target lists).
    AlreadyFollowing,
    /// Self-follows are rejected.
    SelfFollow,
}

/// The follow graph with tracked-edge refinement.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SocialGraph {
    /// Account id → tracked slot; `NONE` marks untracked accounts.
    tracked_slot: Vec<u32>,
    /// Slot-indexed sorted follower lists (who follows the slot's account).
    followers: Vec<Vec<AccountId>>,
    /// Slot-indexed sorted following lists (whom the slot's account follows).
    following: Vec<Vec<AccountId>>,
}

impl SocialGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot_of(&self, id: AccountId) -> Option<usize> {
        match self.tracked_slot.get(id.index()).copied() {
            Some(s) if s != NONE => Some(s as usize),
            _ => None,
        }
    }

    /// Mark an account as tracked, so its exact edges are maintained from
    /// now on. (Pre-existing untracked edges are not reconstructed; track
    /// accounts at creation time.)
    pub fn track(&mut self, id: AccountId) {
        if id.index() >= self.tracked_slot.len() {
            self.tracked_slot.resize(id.index() + 1, NONE);
        }
        if self.tracked_slot[id.index()] == NONE {
            self.tracked_slot[id.index()] = u32::try_from(self.followers.len())
                .expect("tracked-account count fits in u32");
            self.followers.push(Vec::new());
            self.following.push(Vec::new());
        }
    }

    /// Whether an account's exact edges are maintained.
    pub fn is_tracked(&self, id: AccountId) -> bool {
        self.slot_of(id).is_some()
    }

    /// Add a follow edge `from -> to`, updating degree counters and (for
    /// tracked endpoints) exact lists.
    pub fn follow(
        &mut self,
        accounts: &mut AccountStore,
        from: AccountId,
        to: AccountId,
    ) -> FollowResult {
        if from == to {
            return FollowResult::SelfFollow;
        }
        let from_slot = self.slot_of(from);
        let to_slot = self.slot_of(to);
        if from_slot.is_some() || to_slot.is_some() {
            // Check duplicates on whichever exact list we have.
            let dup = if let Some(s) = from_slot {
                self.following[s].binary_search(&to).is_ok()
            } else {
                // to_slot is Some here.
                self.followers[to_slot.unwrap()].binary_search(&from).is_ok()
            };
            if dup {
                return FollowResult::AlreadyFollowing;
            }
            if let Some(s) = from_slot {
                let pos = self.following[s].binary_search(&to).unwrap_err();
                self.following[s].insert(pos, to);
            }
            if let Some(s) = to_slot {
                let pos = self.followers[s].binary_search(&from).unwrap_err();
                self.followers[s].insert(pos, from);
            }
        }
        accounts.get_mut(from).following += 1;
        accounts.get_mut(to).followers += 1;
        FollowResult::Created
    }

    /// Remove a follow edge `from -> to`. Returns `true` if (as far as the
    /// graph can tell) an edge was removed. For untracked pairs this is
    /// approximate: counters are decremented saturating at zero.
    pub fn unfollow(
        &mut self,
        accounts: &mut AccountStore,
        from: AccountId,
        to: AccountId,
    ) -> bool {
        if from == to {
            return false;
        }
        let from_slot = self.slot_of(from);
        let to_slot = self.slot_of(to);
        if from_slot.is_some() || to_slot.is_some() {
            let existed_from = from_slot.is_some_and(|s| {
                match self.following[s].binary_search(&to) {
                    Ok(pos) => {
                        self.following[s].remove(pos);
                        true
                    }
                    Err(_) => false,
                }
            });
            let existed_to = to_slot.is_some_and(|s| {
                match self.followers[s].binary_search(&from) {
                    Ok(pos) => {
                        self.followers[s].remove(pos);
                        true
                    }
                    Err(_) => false,
                }
            });
            if !existed_from && !existed_to {
                return false;
            }
        }
        let f = accounts.get_mut(from);
        f.following = f.following.saturating_sub(1);
        let t = accounts.get_mut(to);
        t.followers = t.followers.saturating_sub(1);
        true
    }

    /// Exact follower list of a tracked account, sorted by id.
    ///
    /// # Panics
    /// Panics if the account is not tracked — callers must not confuse the
    /// approximate and exact worlds.
    pub fn followers_of(&self, id: AccountId) -> &[AccountId] {
        let slot = self
            .slot_of(id)
            .unwrap_or_else(|| panic!("{id} is not tracked"));
        &self.followers[slot]
    }

    /// Exact following list of a tracked account, sorted by id.
    ///
    /// # Panics
    /// Panics if the account is not tracked.
    pub fn following_of(&self, id: AccountId) -> &[AccountId] {
        let slot = self
            .slot_of(id)
            .unwrap_or_else(|| panic!("{id} is not tracked"));
        &self.following[slot]
    }

    /// Drop all edges touching a tracked account (used when a honeypot is
    /// deleted: "all actions to or from the account are eventually removed",
    /// §4.1.1). Degree counters of the counterparties are restored.
    pub fn purge_account(&mut self, accounts: &mut AccountStore, id: AccountId) {
        let Some(slot) = self.slot_of(id) else { return };
        let followers = std::mem::take(&mut self.followers[slot]);
        for f in followers {
            // The victim's own list was already taken; fix up the
            // counterparty's list and both degree counters directly.
            if let Some(fs) = self.slot_of(f) {
                if let Ok(pos) = self.following[fs].binary_search(&id) {
                    self.following[fs].remove(pos);
                }
            }
            let a = accounts.get_mut(f);
            a.following = a.following.saturating_sub(1);
            let v = accounts.get_mut(id);
            v.followers = v.followers.saturating_sub(1);
        }
        let following = std::mem::take(&mut self.following[slot]);
        for t in following {
            if let Some(ts) = self.slot_of(t) {
                if let Ok(pos) = self.followers[ts].binary_search(&id) {
                    self.followers[ts].remove(pos);
                }
            }
            let a = accounts.get_mut(t);
            a.followers = a.followers.saturating_sub(1);
            let v = accounts.get_mut(id);
            v.following = v.following.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{ProfileKind, ReciprocityProfile};
    use crate::country::Country;
    use crate::ids::AsnId;
    use crate::time::SimTime;

    fn store_with(n: usize) -> AccountStore {
        let mut s = AccountStore::new();
        for _ in 0..n {
            s.create(
                SimTime::EPOCH,
                ProfileKind::Organic,
                Country::Us,
                AsnId(0),
                0,
                0,
                ReciprocityProfile::SILENT,
            );
        }
        s
    }

    #[test]
    fn follow_updates_degrees() {
        let mut accounts = store_with(3);
        let mut g = SocialGraph::new();
        assert_eq!(
            g.follow(&mut accounts, AccountId(0), AccountId(1)),
            FollowResult::Created
        );
        assert_eq!(accounts.get(AccountId(0)).following, 1);
        assert_eq!(accounts.get(AccountId(1)).followers, 1);
    }

    #[test]
    fn self_follow_rejected() {
        let mut accounts = store_with(1);
        let mut g = SocialGraph::new();
        assert_eq!(
            g.follow(&mut accounts, AccountId(0), AccountId(0)),
            FollowResult::SelfFollow
        );
        assert_eq!(accounts.get(AccountId(0)).following, 0);
    }

    #[test]
    fn tracked_accounts_deduplicate_edges() {
        let mut accounts = store_with(2);
        let mut g = SocialGraph::new();
        g.track(AccountId(1));
        assert_eq!(
            g.follow(&mut accounts, AccountId(0), AccountId(1)),
            FollowResult::Created
        );
        assert_eq!(
            g.follow(&mut accounts, AccountId(0), AccountId(1)),
            FollowResult::AlreadyFollowing
        );
        assert_eq!(accounts.get(AccountId(1)).followers, 1);
        assert!(g.followers_of(AccountId(1)).contains(&AccountId(0)));
    }

    #[test]
    fn unfollow_tracked_edge() {
        let mut accounts = store_with(2);
        let mut g = SocialGraph::new();
        g.track(AccountId(0));
        g.follow(&mut accounts, AccountId(0), AccountId(1));
        assert!(g.unfollow(&mut accounts, AccountId(0), AccountId(1)));
        assert_eq!(accounts.get(AccountId(0)).following, 0);
        assert_eq!(accounts.get(AccountId(1)).followers, 0);
        // Second removal reports no edge.
        assert!(!g.unfollow(&mut accounts, AccountId(0), AccountId(1)));
        assert_eq!(accounts.get(AccountId(1)).followers, 0, "no underflow");
    }

    #[test]
    fn untracked_unfollow_is_approximate_but_saturating() {
        let mut accounts = store_with(2);
        let mut g = SocialGraph::new();
        g.follow(&mut accounts, AccountId(0), AccountId(1));
        assert!(g.unfollow(&mut accounts, AccountId(0), AccountId(1)));
        // Approximate world: a second unfollow still "succeeds" but degrees
        // saturate at zero rather than underflowing.
        assert!(g.unfollow(&mut accounts, AccountId(0), AccountId(1)));
        assert_eq!(accounts.get(AccountId(0)).following, 0);
        assert_eq!(accounts.get(AccountId(1)).followers, 0);
    }

    #[test]
    fn purge_restores_counterparty_degrees() {
        let mut accounts = store_with(4);
        let mut g = SocialGraph::new();
        let hp = AccountId(0);
        g.track(hp);
        // Two inbound, one outbound edge.
        g.follow(&mut accounts, AccountId(1), hp);
        g.follow(&mut accounts, AccountId(2), hp);
        g.follow(&mut accounts, hp, AccountId(3));
        g.purge_account(&mut accounts, hp);
        assert_eq!(accounts.get(hp).followers, 0);
        assert_eq!(accounts.get(hp).following, 0);
        assert_eq!(accounts.get(AccountId(1)).following, 0);
        assert_eq!(accounts.get(AccountId(2)).following, 0);
        assert_eq!(accounts.get(AccountId(3)).followers, 0);
        assert!(g.followers_of(hp).is_empty());
        assert!(g.following_of(hp).is_empty());
    }

    #[test]
    fn adjacency_lists_stay_sorted() {
        let mut accounts = store_with(6);
        let mut g = SocialGraph::new();
        let hp = AccountId(2);
        g.track(hp);
        for from in [5u32, 1, 4, 0, 3] {
            g.follow(&mut accounts, AccountId(from), hp);
        }
        let followers = g.followers_of(hp);
        assert!(followers.windows(2).all(|w| w[0] < w[1]), "{followers:?}");
        assert_eq!(followers.len(), 5);
    }

    #[test]
    fn tracking_twice_is_idempotent() {
        let mut accounts = store_with(2);
        let mut g = SocialGraph::new();
        g.track(AccountId(1));
        g.follow(&mut accounts, AccountId(0), AccountId(1));
        g.track(AccountId(1));
        assert_eq!(g.followers_of(AccountId(1)).len(), 1, "edges survive re-track");
    }

    #[test]
    #[should_panic(expected = "not tracked")]
    fn exact_sets_of_untracked_panic() {
        let g = SocialGraph::new();
        g.followers_of(AccountId(0));
    }
}
